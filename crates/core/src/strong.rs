//! Strong correctness (Definition 1).
//!
//! *"A schedule S is strongly correct iff (i) for all consistent
//! database states DS₁, if `[DS₁] S [DS₂]` then DS₂ is consistent, and
//! (ii) for all transactions T_i ∈ τ_S, read(T_i) is consistent."*
//!
//! A *recorded* schedule bakes in the values of one particular execution
//! — so this module checks strong correctness **of that execution**:
//! from the provided (consistent) initial state, is the final state
//! consistent and does every transaction read a consistent restriction?
//! The universally-quantified form is obtained by re-running transaction
//! programs from many initial states, which the `pwsr-tplang` /
//! `pwsr-gen` crates drive through this checker.

use crate::ids::TxnId;
use crate::schedule::Schedule;
use crate::solver::Solver;
use crate::state::DbState;

/// Outcome of the strong-correctness check for one execution.
#[derive(Clone, Debug)]
pub struct StrongReport {
    /// Was the supplied initial state consistent? (A precondition —
    /// Definition 1 quantifies over consistent initial states only.)
    pub initial_consistent: bool,
    /// Did every read in the schedule return the value actually current
    /// at its position (i.e. is this a real execution from `initial`)?
    pub read_coherent: bool,
    /// Is the final state `DS₂` consistent?
    pub final_consistent: bool,
    /// Per transaction: is `read(T_i)` consistent (as a restriction,
    /// i.e. extensible to a consistent total state)?
    pub txn_reads: Vec<(TxnId, bool)>,
}

impl StrongReport {
    /// Definition 1's conjunction: consistent final state and all
    /// transaction reads consistent. Only meaningful when the inputs
    /// were valid (`initial_consistent && read_coherent`).
    pub fn ok(&self) -> bool {
        self.initial_consistent
            && self.read_coherent
            && self.final_consistent
            && self.txn_reads.iter().all(|(_, ok)| *ok)
    }

    /// The transactions that read inconsistent data, if any.
    pub fn inconsistent_readers(&self) -> Vec<TxnId> {
        self.txn_reads
            .iter()
            .filter(|(_, ok)| !ok)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Did the check fail *because* of the execution (rather than a bad
    /// input)? True when inputs were valid but correctness failed.
    pub fn violation(&self) -> bool {
        self.initial_consistent && self.read_coherent && !self.ok()
    }
}

/// Check strong correctness of the execution recorded in `schedule`,
/// starting from `initial`.
pub fn check_strong_correctness(
    schedule: &Schedule,
    solver: &Solver<'_>,
    initial: &DbState,
) -> StrongReport {
    let initial_consistent = solver.is_consistent(initial);
    let read_coherent = schedule.check_read_coherence(initial).is_ok();
    let final_state = schedule.apply(initial);
    let final_consistent = solver.is_consistent(&final_state);
    let txn_reads = schedule
        .txn_ids()
        .iter()
        .map(|&t| {
            let reads = schedule.transaction(t).read_state();
            (t, solver.is_consistent(&reads))
        })
        .collect();
    StrongReport {
        initial_consistent,
        read_coherent,
        final_consistent,
        txn_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
    use crate::ids::ItemId;
    use crate::op::Operation;
    use crate::value::{Domain, Value};

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    /// Example 2 setup: D = {a,b,c}, IC = (a>0 → b>0) ∧ (c>0),
    /// initial state (−1, −1, 1).
    fn example2() -> (Catalog, IntegrityConstraint, DbState) {
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(-10, 10));
        let b = cat.add_item("b", Domain::int_range(-10, 10));
        let c = cat.add_item("c", Domain::int_range(-10, 10));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap();
        let initial =
            DbState::from_pairs([(a, Value::Int(-1)), (b, Value::Int(-1)), (c, Value::Int(1))]);
        (cat, ic, initial)
    }

    #[test]
    fn example2_violates_strong_correctness() {
        // The paper's flagship counterexample: the schedule is PWSR but
        // drives the database to {(a,1),(b,−1),(c,−1)} — inconsistent.
        let (cat, ic, initial) = example2();
        let solver = Solver::new(&cat, &ic);
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ])
        .unwrap();
        let report = check_strong_correctness(&s, &solver, &initial);
        assert!(report.initial_consistent);
        assert!(report.read_coherent);
        assert!(!report.final_consistent);
        assert!(report.violation());
        assert!(!report.ok());
        // T2 read {(a,1),(b,−1)} — inconsistent (a>0 forces b>0).
        assert!(report.inconsistent_readers().contains(&TxnId(2)));
    }

    #[test]
    fn serial_execution_is_strongly_correct() {
        // Run the same two programs serially (T1 then T2): now T1 sees
        // c>0, sets b := |b|+1 = 2, and T2 copies b into c.
        let (cat, ic, initial) = example2();
        let solver = Solver::new(&cat, &ic);
        let s = Schedule::new(vec![
            // T1 from (−1,−1,1): a:=1; c>0 so b:=|−1|+1=2… but wait,
            // T1 must read c before writing b, and reads b to compute.
            wr(1, 0, 1),
            rd(1, 2, 1),
            rd(1, 1, -1),
            wr(1, 1, 2),
            // T2 from (1,2,1): a>0, so c:=b=2.
            rd(2, 0, 1),
            rd(2, 1, 2),
            wr(2, 2, 2),
        ])
        .unwrap();
        let report = check_strong_correctness(&s, &solver, &initial);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn inconsistent_initial_state_flagged() {
        let (cat, ic, _) = example2();
        let solver = Solver::new(&cat, &ic);
        let a = cat.lookup("a").unwrap();
        let b = cat.lookup("b").unwrap();
        let c = cat.lookup("c").unwrap();
        let bad = DbState::from_pairs([
            (a, Value::Int(1)),
            (b, Value::Int(-1)), // a>0 but b<0
            (c, Value::Int(1)),
        ]);
        let s = Schedule::new(vec![]).unwrap();
        let report = check_strong_correctness(&s, &solver, &bad);
        assert!(!report.initial_consistent);
        assert!(!report.ok());
        assert!(
            !report.violation(),
            "bad input is not an execution violation"
        );
    }

    #[test]
    fn incoherent_reads_flagged() {
        let (cat, ic, initial) = example2();
        let solver = Solver::new(&cat, &ic);
        // Read of a returns 42, but a is −1 initially: not an execution.
        let s = Schedule::new(vec![rd(1, 0, 42)]).unwrap();
        let report = check_strong_correctness(&s, &solver, &initial);
        assert!(!report.read_coherent);
        assert!(!report.ok());
    }

    #[test]
    fn empty_schedule_is_strongly_correct() {
        let (cat, ic, initial) = example2();
        let solver = Solver::new(&cat, &ic);
        let s = Schedule::new(vec![]).unwrap();
        let report = check_strong_correctness(&s, &solver, &initial);
        assert!(report.ok());
        assert!(report.txn_reads.is_empty());
    }

    #[test]
    fn read_only_transaction_reading_consistent_snapshot() {
        let (cat, ic, initial) = example2();
        let solver = Solver::new(&cat, &ic);
        // Reads the initial (consistent) values only.
        let s = Schedule::new(vec![rd(1, 0, -1), rd(1, 1, -1), rd(1, 2, 1)]).unwrap();
        let report = check_strong_correctness(&s, &solver, &initial);
        assert!(report.ok());
        assert_eq!(report.txn_reads, vec![(TxnId(1), true)]);
    }
}
