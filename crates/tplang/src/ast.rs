//! Abstract syntax of transaction programs.
//!
//! Variables are plain names; whether a name denotes a **data item**
//! (present in the [`Catalog`](pwsr_core::catalog::Catalog)) or a
//! **local** (like the paper's `temp` in Example 5) is resolved at
//! execution time. Only data-item accesses produce operations.

use pwsr_core::constraint::Cmp;
use pwsr_core::value::Value;
use std::fmt;

/// Arithmetic binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `min(·,·)`
    Min,
    /// `max(·,·)`
    Max,
}

/// Arithmetic unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// `abs(·)` — the paper's `|b|`.
    Abs,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(Value),
    /// A variable: data item or local, by name.
    Var(String),
    /// A unary application.
    Unary(UnOp, Box<Expr>),
    /// A binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer constant shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Variable shorthand.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self − rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self × rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `abs(self)`.
    pub fn abs(self) -> Expr {
        Expr::Unary(UnOp::Abs, Box::new(self))
    }

    /// Variable names referenced, in evaluation order (with duplicates).
    pub fn var_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(name) => out.push(name.clone()),
            Expr::Unary(_, e) => e.var_names(out),
            Expr::Binary(_, l, r) => {
                l.var_names(out);
                r.var_names(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Abs, e) => write!(f, "abs({e})"),
            Expr::Binary(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Min => return write!(f, "min({l}, {r})"),
                    BinOp::Max => return write!(f, "max({l}, {r})"),
                };
                write!(f, "({l} {sym} {r})")
            }
        }
    }
}

/// A boolean condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// A comparison `e1 ⋈ e2` (operators from `pwsr-core`).
    Cmp(Cmp, Expr, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// `e1 > e2` shorthand.
    pub fn gt(l: Expr, r: Expr) -> Cond {
        Cond::Cmp(Cmp::Gt, l, r)
    }

    /// `e1 ≥ e2` shorthand.
    pub fn ge(l: Expr, r: Expr) -> Cond {
        Cond::Cmp(Cmp::Ge, l, r)
    }

    /// `e1 = e2` shorthand.
    pub fn eq(l: Expr, r: Expr) -> Cond {
        Cond::Cmp(Cmp::Eq, l, r)
    }

    /// `e1 < e2` shorthand.
    pub fn lt(l: Expr, r: Expr) -> Cond {
        Cond::Cmp(Cmp::Lt, l, r)
    }

    /// Variable names referenced, in evaluation order.
    pub fn var_names(&self, out: &mut Vec<String>) {
        match self {
            Cond::True | Cond::False => {}
            Cond::Cmp(_, l, r) => {
                l.var_names(out);
                r.var_names(out);
            }
            Cond::And(l, r) | Cond::Or(l, r) => {
                l.var_names(out);
                r.var_names(out);
            }
            Cond::Not(c) => c.var_names(out),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::False => write!(f, "false"),
            Cond::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
            Cond::And(l, r) => write!(f, "({l} && {r})"),
            Cond::Or(l, r) => write!(f, "({l} || {r})"),
            Cond::Not(c) => write!(f, "!({c})"),
        }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `target := expr` — a DB write if `target` is a data item,
    /// otherwise a local binding.
    Assign {
        /// Assigned variable name.
        target: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `touch x` — read `x` and discard the value. Emits a read
    /// operation (unless cached); used to pad structures.
    Touch(String),
    /// `if cond then { … } else { … }` (else may be empty).
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when the condition holds.
        then_branch: Vec<Stmt>,
        /// Taken otherwise.
        else_branch: Vec<Stmt>,
    },
    /// `while cond do { … }` — iteration capped at `limit` to keep
    /// every program terminating (exceeding it is a runtime error).
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
        /// Maximum number of iterations.
        limit: u32,
    },
}

impl Stmt {
    /// `target := expr` shorthand.
    pub fn assign(target: &str, expr: Expr) -> Stmt {
        Stmt::Assign {
            target: target.to_owned(),
            expr,
        }
    }

    /// `if cond then { … }` with an empty else.
    pub fn if_then(cond: Cond, then_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch: Vec::new(),
        }
    }

    /// `if cond then { … } else { … }`.
    pub fn if_then_else(cond: Cond, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        }
    }
}

fn fmt_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        s.fmt_indented(f, indent)?;
    }
    Ok(())
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::Assign { target, expr } => writeln!(f, "{pad}{target} := {expr};"),
            Stmt::Touch(name) => writeln!(f, "{pad}touch {name};"),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                writeln!(f, "{pad}if ({cond}) then {{")?;
                fmt_block(f, then_branch, indent + 1)?;
                if else_branch.is_empty() {
                    writeln!(f, "{pad}}}")
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    fmt_block(f, else_branch, indent + 1)?;
                    writeln!(f, "{pad}}}")
                }
            }
            Stmt::While { cond, body, .. } => {
                writeln!(f, "{pad}while ({cond}) do {{")?;
                fmt_block(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
        }
    }
}

/// A transaction program: a named statement sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Human-readable name (`TP1`, `TP2′`, …).
    pub name: String,
    /// The body.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Build a program.
    pub fn new(name: &str, body: Vec<Stmt>) -> Program {
        Program {
            name: name.to_owned(),
            body,
        }
    }

    /// Does any statement (recursively) use `if` or `while`? If not,
    /// the program is *straight-line* in the sense of Sha et al. \[14\].
    pub fn has_control_flow(&self) -> bool {
        fn check(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Assign { .. } | Stmt::Touch(_) => false,
                Stmt::If { .. } | Stmt::While { .. } => true,
            })
        }
        check(&self.body)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        fmt_block(f, &self.body, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_and_display() {
        let e = Expr::var("b").abs().add(Expr::int(1));
        assert_eq!(e.to_string(), "(abs(b) + 1)");
        let mut names = Vec::new();
        e.var_names(&mut names);
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn cond_var_order_is_evaluation_order() {
        let c = Cond::And(
            Box::new(Cond::gt(Expr::var("a"), Expr::int(0))),
            Box::new(Cond::lt(Expr::var("b"), Expr::var("c"))),
        );
        let mut names = Vec::new();
        c.var_names(&mut names);
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn control_flow_detection() {
        let straight = Program::new("P", vec![Stmt::assign("a", Expr::int(1))]);
        assert!(!straight.has_control_flow());
        let branching = Program::new(
            "Q",
            vec![Stmt::if_then(
                Cond::True,
                vec![Stmt::assign("a", Expr::int(1))],
            )],
        );
        assert!(branching.has_control_flow());
    }

    #[test]
    fn display_round_trip_shape() {
        let p = Program::new(
            "TP1",
            vec![
                Stmt::assign("a", Expr::int(1)),
                Stmt::if_then_else(
                    Cond::gt(Expr::var("c"), Expr::int(0)),
                    vec![Stmt::assign("b", Expr::var("b").abs().add(Expr::int(1)))],
                    vec![Stmt::assign("b", Expr::var("b"))],
                ),
            ],
        );
        let text = p.to_string();
        assert!(text.contains("a := 1;"));
        assert!(text.contains("if (c > 0) then {"));
        assert!(text.contains("} else {"));
    }
}
