//! Concurrency-control policy specifications.
//!
//! A [`PolicySpec`] tells the executor (a) which lock space each data
//! item belongs to, (b) whether a transaction's locks in a space may be
//! released as soon as its access plan shows no further accesses there
//! (*early release* — the long-transaction benefit §1 motivates), and
//! (c) whether reads of items last written by an unfinished transaction
//! must block (*DR blocking*, the operational form of Theorem 2).
//!
//! | constructor | spaces | guarantees on the committed schedule |
//! |---|---|---|
//! | [`PolicySpec::global_2pl`] | one | conflict-serializable |
//! | [`PolicySpec::predicate_wise_2pl`] | per conjunct | PWSR |
//! | [`PolicySpec::predicate_wise_2pl_early`] | per conjunct | PWSR, more interleaving |
//! | [`PolicySpec::dr_blocking`] (wrapper) | unchanged | + delayed-read |

use crate::lock::SpaceId;
use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::IntegrityConstraint;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::monitor::{AdmissionLevel, CompactStats, OnlineMonitor, Verdict};
use pwsr_core::op::Operation;
use pwsr_core::state::ItemSet;
use pwsr_durability::wal::{SharedWal, Wal, WalRecord, WalStats};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Does holding verdict level `a` on a schedule imply level `b`?
/// `Serializable ⇒ Pwsr` (an acyclic global conflict graph keeps every
/// projection acyclic) and `PwsrDr ⇒ Pwsr`; `Serializable` and
/// `PwsrDr` are incomparable (serializability says nothing about
/// delayed reads).
pub fn level_implies(a: AdmissionLevel, b: AdmissionLevel) -> bool {
    a == b
        || matches!(
            (a, b),
            (AdmissionLevel::Serializable, AdmissionLevel::Pwsr)
                | (AdmissionLevel::PwsrDr, AdmissionLevel::Pwsr)
        )
}

/// A pre-computed workload-safety certificate: the transactions in
/// `certified` are drawn from a program mix proven (by
/// `pwsr_analysis`) to satisfy `level` under **every** interleaving,
/// with no conflicts against any program outside the set. Admission
/// can therefore skip runtime certification for them entirely — the
/// zero-cost fast path.
///
/// The scheduler trusts the certificate; soundness is the analyzer's
/// contract (its `Safe` verdicts are proven, and certified sets are
/// conflict-closed components, so they compose with any monitored
/// remainder).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticCertificate {
    level: AdmissionLevel,
    certified: BTreeSet<TxnId>,
}

impl StaticCertificate {
    /// Certificate for an explicit transaction set.
    pub fn new(level: AdmissionLevel, certified: BTreeSet<TxnId>) -> StaticCertificate {
        StaticCertificate { level, certified }
    }

    /// Certificate covering transactions `1..=n` (program `k` runs as
    /// transaction `k+1` in the executors).
    pub fn full(level: AdmissionLevel, n: usize) -> StaticCertificate {
        StaticCertificate {
            level,
            certified: (1..=n as u32).map(TxnId).collect(),
        }
    }

    /// The level every interleaving of the certified set is proven to
    /// hold.
    pub fn level(&self) -> AdmissionLevel {
        self.level
    }

    /// Is `txn` in the certified set?
    pub fn covers(&self, txn: TxnId) -> bool {
        self.certified.contains(&txn)
    }

    /// Is the certificate strong enough to stand in for runtime
    /// certification at `floor`?
    pub fn satisfies(&self, floor: AdmissionLevel) -> bool {
        level_implies(self.level, floor)
    }

    /// Number of certified transactions.
    pub fn len(&self) -> usize {
        self.certified.len()
    }

    /// Is the certified set empty?
    pub fn is_empty(&self) -> bool {
        self.certified.is_empty()
    }

    /// The certified transactions, ascending.
    pub fn txns(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.certified.iter().copied()
    }
}

/// Monitor-backed admission control: an [`OnlineMonitor`] tracking the
/// executor's trace, consulted before every operation. An operation
/// whose admission would sink the verdict below the configured
/// [`AdmissionLevel`] is rejected — the paper's verdicts driving
/// scheduling decisions instead of describing finished histories.
///
/// The speculative test ([`MonitorAdmission::would_admit`]) never
/// mutates; after an abort rewrites the trace,
/// [`MonitorAdmission::sync`] walks the monitor's undo-log back to the
/// longest surviving prefix and re-pushes the filtered tail —
/// `O(ops undone + ops re-pushed)` graph work instead of the old
/// `O(n)` full rebuild (every per-operation step stays on the
/// incremental path either way).
#[derive(Clone, Debug)]
pub struct MonitorAdmission {
    monitor: OnlineMonitor,
    scopes: Vec<ItemSet>,
    level: AdmissionLevel,
    /// Statically-certified fast path: transactions the certificate
    /// covers bypass the monitor entirely (admitted unconditionally,
    /// their operations never pushed).
    certificate: Option<StaticCertificate>,
    /// Trace operations observed, *including* certified skips — the
    /// steady-state `sync` check compares against this, so the hot
    /// path stays `O(1)` even when the monitor records only a
    /// sub-trace.
    seen: usize,
    /// Operations skipped via the certificate.
    skipped_ops: u64,
    /// Re-syncs that found the trace rewritten.
    resyncs: u64,
    /// Operations retracted via the undo-log across all re-syncs.
    undone_ops: u64,
    /// Optional write-ahead log: every monitored state transition
    /// (push / truncate / floor raise / rebuild) is appended as a
    /// checksummed record, so a crash recovers to exactly this
    /// admission's monitor state (see `pwsr_durability::recover`).
    /// Clones share the log, so clone-and-diverge admissions should
    /// not both stay journaled.
    wal: Option<SharedWal>,
    /// Set when a journaling call site observed a sticky (unhealed)
    /// WAL I/O error — the run's durable history is incomplete and
    /// the executor must surface [`SchedError::WalFailed`] instead of
    /// reporting success (the log used to drop records silently).
    ///
    /// [`SchedError::WalFailed`]: crate::error::SchedError::WalFailed
    wal_failed: bool,
}

/// What one [`MonitorAdmission::sync`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Operations retracted through the undo-log.
    pub undone: u64,
    /// Surviving operations re-pushed after the divergence point.
    pub repushed: u64,
}

impl MonitorAdmission {
    /// Admission over explicit projection scopes.
    pub fn new(scopes: Vec<ItemSet>, level: AdmissionLevel) -> MonitorAdmission {
        MonitorAdmission {
            monitor: OnlineMonitor::new(scopes.clone()),
            scopes,
            level,
            certificate: None,
            seen: 0,
            skipped_ops: 0,
            resyncs: 0,
            undone_ops: 0,
            wal: None,
            wal_failed: false,
        }
    }

    /// Journal one WAL transition, checking the log's health at the
    /// call site: a sticky error after the append (fail-stop, or an
    /// exhausted retry policy) marks this admission failed so the
    /// executor refuses to report success. Self-healing policies
    /// (retry, degrade-to-memory) leave no sticky error and the run
    /// proceeds — the incident stays visible in `WalStats::io_errors`.
    fn journal(&mut self, f: impl FnOnce(&mut Wal)) {
        if let Some(wal) = &self.wal {
            let healthy = wal.with(|w| {
                f(w);
                w.last_error().is_none()
            });
            if !healthy {
                self.wal_failed = true;
            }
        }
    }

    /// Attach a write-ahead log. Every subsequent monitored
    /// transition is journaled *before* it is applied (write-ahead
    /// discipline); certified skips are not journaled — replay
    /// reconstructs the monitored sub-trace, which is the whole
    /// monitor state.
    pub fn with_wal(mut self, wal: SharedWal) -> MonitorAdmission {
        debug_assert!(
            self.is_empty(),
            "attach the WAL before recording operations"
        );
        self.wal = Some(wal);
        self
    }

    /// Attach a static safety certificate: covered transactions are
    /// admitted without consulting the monitor and their operations
    /// are never certified at run time. A certificate weaker than the
    /// admission floor (see [`StaticCertificate::satisfies`]) is
    /// rejected and admission falls back to full monitoring.
    pub fn with_certificate(mut self, certificate: StaticCertificate) -> MonitorAdmission {
        debug_assert!(
            self.is_empty(),
            "attach certificates before recording operations"
        );
        if certificate.satisfies(self.level) {
            self.certificate = Some(certificate);
        }
        self
    }

    /// Admission over an integrity constraint's conjunct scopes.
    pub fn for_constraint(ic: &IntegrityConstraint, level: AdmissionLevel) -> MonitorAdmission {
        MonitorAdmission::new(
            ic.conjuncts().iter().map(|c| c.items().clone()).collect(),
            level,
        )
    }

    /// Admission over a policy's lock-space partition of `catalog` —
    /// one scope per space, so per-space SGT certification and the
    /// monitor agree on what "serializable per unit" means.
    pub fn for_spaces(
        catalog: &Catalog,
        policy: &PolicySpec,
        level: AdmissionLevel,
    ) -> MonitorAdmission {
        let mut by_space: HashMap<u32, ItemSet> = HashMap::new();
        for item in catalog.items() {
            by_space
                .entry(policy.space_of(item).0)
                .or_default()
                .insert(item);
        }
        let mut spaces: Vec<(u32, ItemSet)> = by_space.into_iter().collect();
        spaces.sort_by_key(|(s, _)| *s);
        MonitorAdmission::new(spaces.into_iter().map(|(_, d)| d).collect(), level)
    }

    /// The configured verdict floor.
    pub fn level(&self) -> AdmissionLevel {
        self.level
    }

    /// Operations recorded so far.
    pub fn len(&self) -> usize {
        self.monitor.len()
    }

    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.monitor.is_empty()
    }

    /// Would this access keep the configured verdict level? Read-only.
    /// Statically-certified transactions are admitted without touching
    /// the monitor — the zero-cost fast path.
    pub fn would_admit(&self, txn: TxnId, item: ItemId, is_write: bool) -> bool {
        if self.covers(txn) {
            return true;
        }
        self.monitor.admits(txn, item, is_write, self.level)
    }

    /// Is `txn` on the certified fast path?
    pub fn covers(&self, txn: TxnId) -> bool {
        self.certificate.as_ref().is_some_and(|c| c.covers(txn))
    }

    /// Record an admitted (or already-committed) operation. Logged, so
    /// an abort can retract it through the undo-log.
    pub fn push(&mut self, op: &Operation) -> Verdict {
        self.seen += 1;
        self.journal(|w| w.append_op(op));
        self.monitor
            .push_logged(op.clone())
            .expect("executor traces satisfy the §2.2 transaction rules")
    }

    /// Record a contiguous single-transaction run of admitted
    /// operations: one framed WAL record, one atomically-validated
    /// monitor batch. Per-op verdicts come back in program order —
    /// identical to pushing the run op-by-op.
    pub fn push_batch(&mut self, ops: &[Operation]) -> Vec<Verdict> {
        if ops.is_empty() {
            return Vec::new();
        }
        self.seen += ops.len();
        self.journal(|w| w.append_batch(ops));
        self.monitor
            .push_batch_logged(ops)
            .expect("executor traces satisfy the §2.2 transaction rules")
    }

    /// Record one trace operation, routing it past the monitor when
    /// its transaction is certified. Returns `true` if the operation
    /// was actually pushed (monitored), `false` if skipped.
    pub fn observe(&mut self, op: &Operation) -> bool {
        if self.covers(op.txn) {
            self.seen += 1;
            self.skipped_ops += 1;
            false
        } else {
            self.push(op);
            true
        }
    }

    /// The current verdict over the recorded trace.
    pub fn verdict(&self) -> Verdict {
        self.monitor.verdict()
    }

    /// The underlying monitor (orders, certificates, index queries).
    pub fn monitor(&self) -> &OnlineMonitor {
        &self.monitor
    }

    /// Rebuild from scratch over `trace` — the old `O(n)` abort path,
    /// kept as the fallback oracle (tests pin `sync` against it).
    /// Certified transactions' operations are skipped, as on the
    /// incremental path.
    pub fn rebuild(&mut self, trace: &[Operation]) {
        self.journal(|w| w.append(&WalRecord::Reset));
        self.monitor = OnlineMonitor::new(self.scopes.clone());
        self.seen = 0;
        for op in trace {
            self.observe(op);
        }
    }

    /// Cheap re-sync: in the steady state (`len` unchanged) the
    /// incremental monitor is already exactly `trace` and this is
    /// `O(1)`. After an abort *filtered* the trace, retract through
    /// the undo-log to the longest common prefix and re-push the
    /// surviving tail — `O(ops undone + ops re-pushed)`, not `O(n)`:
    /// an abort of a late-starting transaction leaves the long head
    /// untouched. If a checkpoint raised the log floor above the
    /// divergence point (possible only when the caller's "live" set
    /// under-approximated the removable transactions), the rare
    /// fallback is the old full rebuild.
    pub fn sync(&mut self, trace: &[Operation]) -> SyncStats {
        if self.seen == trace.len() {
            return SyncStats::default();
        }
        self.resyncs += 1;
        // With a certificate attached the monitor records only the
        // uncertified sub-trace; compare against the filtered view.
        // This allocation happens only on the (rare) abort path — the
        // steady state returned above.
        let filtered: Vec<Operation>;
        let target: &[Operation] = match &self.certificate {
            Some(cert) => {
                filtered = trace
                    .iter()
                    .filter(|o| !cert.covers(o.txn))
                    .cloned()
                    .collect();
                &filtered
            }
            None => trace,
        };
        // Longest common prefix of the recorded schedule and the
        // rewritten trace (an abort removes operations, so divergence
        // starts at the first removed position). The monitor stores
        // only the tail above its compaction base — the summarized
        // prefix is permanent (the frontier never exceeds the undo
        // floor, which aborts cannot reach below), so positions below
        // the base cannot have diverged and the comparison starts
        // there.
        let base = self.monitor.schedule().base();
        if target.len() < base {
            // The trace was rewritten below the permanent prefix — a
            // caller bug mirroring an under-approximated checkpoint
            // live set; the rebuild fallback stays observably correct.
            self.rebuild(trace);
            return SyncStats {
                undone: 0,
                repushed: target.len() as u64,
            };
        }
        let recorded = self.monitor.schedule().ops();
        let common = base
            + recorded
                .iter()
                .zip(target[base..].iter())
                .take_while(|(a, b)| a == b)
                .count();
        if common < self.monitor.log_floor() {
            self.rebuild(trace);
            return SyncStats {
                undone: 0,
                repushed: target.len() as u64,
            };
        }
        if common < self.monitor.len() {
            self.journal(|w| w.append(&WalRecord::Truncate(common as u64)));
        }
        let undone = self.monitor.truncate_to(common) as u64;
        self.undone_ops += undone;
        let mut repushed = 0u64;
        for op in &target[common..] {
            self.push(op);
            repushed += 1;
        }
        self.seen = trace.len();
        debug_assert_eq!(self.monitor.len(), target.len());
        SyncStats { undone, repushed }
    }

    /// Raise the undo-log floor to the oldest *live* transaction's
    /// first operation (or the whole trace when none are live):
    /// everything before that point can never be rewritten by an
    /// abort, so its per-push deltas are dropped — the long-run
    /// memory bound for the admission log ([`OnlineMonitor`] keeps
    /// one delta per logged push otherwise). Returns the new floor.
    pub fn checkpoint<I: IntoIterator<Item = TxnId>>(&mut self, live: I) -> usize {
        let index = self.monitor.online_index().index();
        let floor = live
            .into_iter()
            .filter_map(|t| index.positions_of(t).first().map(|&p| p as usize))
            .min()
            .unwrap_or(self.monitor.len());
        let before = self.monitor.log_floor();
        let after = self.monitor.checkpoint(floor);
        // Journal only actual raises: the executor checkpoints every
        // step, and a no-op raise would bloat the log.
        if after > before {
            self.journal(|w| w.append(&WalRecord::Floor(after as u64)));
        }
        after
    }

    /// The monitor undo-log's current retraction floor.
    pub fn log_floor(&self) -> usize {
        self.monitor.log_floor()
    }

    /// Declare `txn` finished (it will issue no further operations),
    /// making its operations eligible for committed-prefix compaction.
    /// Certified transactions are never monitored, so there is nothing
    /// to finish for them.
    pub fn finish_txn(&mut self, txn: TxnId) {
        self.monitor.finish_txn(txn);
    }

    /// Committed-prefix compaction passthrough
    /// ([`OnlineMonitor::compact`]): collapse the finished,
    /// below-floor prefix into a summary and reclaim its memory. The
    /// WAL (if attached) is untouched — it still replays the full
    /// monitored sub-trace, and recovery may re-compact once replay
    /// finishes; pairing WAL truncation with the frontier lives in
    /// `pwsr_durability` ([`Checkpoint`]-then-restart), not here.
    ///
    /// [`Checkpoint`]: pwsr_durability::checkpoint::Checkpoint
    pub fn compact(&mut self) -> CompactStats {
        self.monitor.compact()
    }

    /// The compaction frontier the next [`MonitorAdmission::compact`]
    /// would collapse to.
    pub fn compaction_frontier(&self) -> usize {
        self.monitor.compaction_frontier()
    }

    /// Structural resident-memory estimate of the underlying monitor
    /// (the `compact` experiment's plateau metric).
    pub fn resident_bytes_estimate(&self) -> usize {
        self.monitor.resident_bytes_estimate()
    }

    /// Undo-log entries currently held (bounded by
    /// `len() - log_floor()` — the checkpoint test pins this).
    pub fn log_len(&self) -> usize {
        self.monitor.logged_len()
    }

    /// Re-syncs that found the trace rewritten by an abort.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Operations retracted through the undo-log across all re-syncs.
    pub fn undone_ops(&self) -> u64 {
        self.undone_ops
    }

    /// Operations skipped via the static certificate.
    pub fn skipped_ops(&self) -> u64 {
        self.skipped_ops
    }

    /// The attached certificate, if any survived validation.
    pub fn certificate(&self) -> Option<&StaticCertificate> {
        self.certificate.as_ref()
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&SharedWal> {
        self.wal.as_ref()
    }

    /// False once any journaling call site observed a sticky WAL I/O
    /// error (fail-stop, or a retry policy that ran out of attempts).
    pub fn wal_healthy(&self) -> bool {
        !self.wal_failed && self.wal.as_ref().is_none_or(SharedWal::healthy)
    }

    /// Take the WAL's sticky I/O error, if any, clearing it — the
    /// executor's final sync turns `Some` into
    /// [`SchedError::WalFailed`](crate::error::SchedError::WalFailed).
    pub fn take_wal_error(&mut self) -> Option<std::io::Error> {
        let err = self.wal.as_ref().and_then(SharedWal::take_error);
        if err.is_some() {
            self.wal_failed = true;
        }
        err
    }

    /// WAL counters (append/byte/fsync), when a WAL is attached.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(SharedWal::stats)
    }
}

/// The monitor-admission half of a policy: which projection scopes to
/// certify and the verdict floor to hold.
#[derive(Clone, Debug)]
pub struct MonitorSpec {
    /// Projection scopes (conjunct data sets).
    pub scopes: Vec<ItemSet>,
    /// The verdict floor admitted operations must preserve.
    pub level: AdmissionLevel,
    /// Optional static fast path: certified transactions skip runtime
    /// certification (see [`StaticCertificate`]).
    pub certificate: Option<StaticCertificate>,
    /// Optional durability: a shared write-ahead log the admission
    /// journals every monitored transition into (the handle is shared,
    /// so the caller keeps recovery access to the same log).
    pub wal: Option<SharedWal>,
    /// Committed-prefix compaction cadence for the certified threaded
    /// executors: `0` (the default) disables compaction; `n > 0` makes
    /// the executor declare each transaction finished at commit and,
    /// after every `n` commits, checkpoint past the finished prefix
    /// and [`compact`] the monitor. The verdict is unaffected (the
    /// twin-harness property), but the returned schedule then retains
    /// only the live tail — its [`base`] reports how many operations
    /// were summarized away.
    ///
    /// [`compact`]: pwsr_core::monitor::sharded::ShardedMonitor::compact
    /// [`base`]: pwsr_core::schedule::Schedule::base
    pub compact_every: u64,
}

impl MonitorSpec {
    /// Build the admission state this spec describes, certificate and
    /// WAL attached.
    pub fn admission(&self) -> MonitorAdmission {
        let mut adm = MonitorAdmission::new(self.scopes.clone(), self.level);
        if let Some(cert) = &self.certificate {
            adm = adm.with_certificate(cert.clone());
        }
        if let Some(wal) = &self.wal {
            adm = adm.with_wal(wal.clone());
        }
        adm
    }
}

/// A policy: item→space map plus behavioural flags.
#[derive(Clone)]
pub struct PolicySpec {
    /// Display name (appears in metrics and experiment tables).
    pub name: String,
    space_of: Arc<dyn Fn(ItemId) -> SpaceId + Send + Sync>,
    /// Release a space's locks once the access plan shows no further
    /// accesses there (requires plans; without a plan the executor
    /// holds to end).
    pub early_release: bool,
    /// Block reads of items whose latest writer has not finished.
    pub dr_block: bool,
    /// When `Some(l)`, spaces `0..l` are conjuncts and the executor
    /// enforces Theorem 3 at run time: a transaction whose accesses
    /// would make `DAG(S, IC)` cyclic is rejected (§3.3's data-access
    /// ordering as runtime admission). Only meaningful for
    /// conjunct-aligned policies.
    pub dag_guard: Option<u32>,
    /// When set, the executor keeps a [`MonitorAdmission`] over its
    /// trace and aborts (for restart) any transaction whose next
    /// operation would sink the verdict below `level`.
    pub monitor: Option<MonitorSpec>,
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicySpec")
            .field("name", &self.name)
            .field("early_release", &self.early_release)
            .field("dr_block", &self.dr_block)
            .finish()
    }
}

impl PolicySpec {
    /// The lock space of `item`.
    pub fn space_of(&self, item: ItemId) -> SpaceId {
        (self.space_of)(item)
    }

    /// Global strict two-phase locking: a single lock space, locks held
    /// to transaction end. The serializability baseline.
    pub fn global_2pl() -> PolicySpec {
        PolicySpec {
            name: "2PL".to_owned(),
            space_of: Arc::new(|_| SpaceId(0)),
            early_release: false,
            dr_block: false,
            dag_guard: None,
            monitor: None,
        }
    }

    /// Predicate-wise strict 2PL: one lock space per conjunct of `ic`
    /// (items outside every conjunct get their own private space).
    /// Locks held to end ⇒ committed schedules are PWSR *and* DR.
    pub fn predicate_wise_2pl(ic: &IntegrityConstraint) -> PolicySpec {
        PolicySpec {
            name: "PW-2PL".to_owned(),
            space_of: conjunct_spaces(ic),
            early_release: false,
            dr_block: false,
            dag_guard: None,
            monitor: None,
        }
    }

    /// Predicate-wise 2PL with early per-conjunct release: once a
    /// transaction's access plan shows no further accesses in a
    /// conjunct, that conjunct's locks drop immediately. Committed
    /// schedules remain PWSR (per-space 2PL is still two-phase), but
    /// are generally *not* DR — this is the policy whose anomalies
    /// Theorems 1–3 adjudicate.
    pub fn predicate_wise_2pl_early(ic: &IntegrityConstraint) -> PolicySpec {
        PolicySpec {
            name: "PW-2PL-early".to_owned(),
            space_of: conjunct_spaces(ic),
            early_release: true,
            dr_block: false,
            dag_guard: None,
            monitor: None,
        }
    }

    /// Enable the runtime Theorem-3 guard (requires conjunct-aligned
    /// spaces, i.e. one of the predicate-wise constructors).
    pub fn dag_guarded(mut self, ic: &IntegrityConstraint) -> PolicySpec {
        self.dag_guard = Some(ic.len() as u32);
        self.name = format!("{}+DAG", self.name);
        self
    }

    /// Wrap a policy with delayed-read blocking (Theorem 2's condition,
    /// enforced at run time).
    pub fn dr_blocking(mut self) -> PolicySpec {
        self.dr_block = true;
        self.name = format!("{}+DR", self.name);
        self
    }

    /// Wrap a policy with online verdict-monitor admission over `ic`'s
    /// conjunct scopes: before every operation the executor consults a
    /// live [`MonitorAdmission`] and aborts (for restart) a transaction
    /// whose next access would sink the verdict below `level`. This is
    /// certification, not blocking — it composes with any lock layout,
    /// and is the only guard when the lock layout itself is too weak
    /// (e.g. per-item spaces with early release).
    pub fn monitor_admission(
        mut self,
        ic: &IntegrityConstraint,
        level: AdmissionLevel,
    ) -> PolicySpec {
        self.monitor = Some(MonitorSpec {
            scopes: ic.conjuncts().iter().map(|c| c.items().clone()).collect(),
            level,
            certificate: None,
            wal: None,
            compact_every: 0,
        });
        self.name = format!(
            "{}+MON({})",
            self.name,
            match level {
                AdmissionLevel::Serializable => "CSR",
                AdmissionLevel::Pwsr => "PWSR",
                AdmissionLevel::PwsrDr => "PWSR+DR",
            }
        );
        self
    }

    /// Attach a static safety certificate to the monitor-admission
    /// half of the policy ([`PolicySpec::monitor_admission`] must come
    /// first): transactions the certificate covers skip runtime
    /// certification entirely. A certificate weaker than the
    /// admission floor is ignored (the name is only tagged when the
    /// fast path is actually active).
    pub fn certified(mut self, certificate: StaticCertificate) -> PolicySpec {
        if let Some(spec) = &mut self.monitor {
            if certificate.satisfies(spec.level) {
                self.name = format!("{}+CERT({})", self.name, certificate.len());
                spec.certificate = Some(certificate);
            }
        }
        self
    }

    /// Attach a write-ahead log to the monitor-admission half of the
    /// policy ([`PolicySpec::monitor_admission`] must come first):
    /// every admitted operation and every retraction is journaled
    /// into `wal`, making the run crash-recoverable. The caller keeps
    /// a clone of the handle for recovery.
    pub fn durable(mut self, wal: SharedWal) -> PolicySpec {
        if let Some(spec) = &mut self.monitor {
            self.name = format!("{}+WAL", self.name);
            spec.wal = Some(wal);
        }
        self
    }

    /// Enable committed-prefix compaction in the certified threaded
    /// executors ([`PolicySpec::monitor_admission`] must come first):
    /// after every `every` commits the monitor checkpoints past the
    /// finished prefix and compacts it, bounding resident memory for
    /// long streams. See [`MonitorSpec::compact_every`] for the
    /// schedule-tail caveat. `every == 0` leaves compaction off.
    pub fn compacting(mut self, every: u64) -> PolicySpec {
        if let Some(spec) = &mut self.monitor {
            if every > 0 {
                self.name = format!("{}+COMPACT({every})", self.name);
            }
            spec.compact_every = every;
        }
        self
    }

    /// A policy with an explicit item→space table (used by the MDBS
    /// simulation, where spaces are *sites*).
    pub fn from_table(
        name: &str,
        table: HashMap<ItemId, SpaceId>,
        fallback_base: u32,
    ) -> PolicySpec {
        PolicySpec {
            name: name.to_owned(),
            space_of: Arc::new(move |item: ItemId| {
                table
                    .get(&item)
                    .copied()
                    .unwrap_or(SpaceId(fallback_base + item.0))
            }),
            early_release: false,
            dr_block: false,
            dag_guard: None,
            monitor: None,
        }
    }
}

/// Item→space map assigning conjunct `k` the space `k`; unconstrained
/// items get private spaces above the conjunct range (they constrain
/// nothing, so serializing them per item is harmless and maximally
/// permissive).
fn conjunct_spaces(ic: &IntegrityConstraint) -> Arc<dyn Fn(ItemId) -> SpaceId + Send + Sync> {
    let l = ic.len() as u32;
    let mut table: HashMap<ItemId, SpaceId> = HashMap::new();
    for (k, c) in ic.conjuncts().iter().enumerate() {
        for item in c.items().iter() {
            // First conjunct wins for overlapping ICs.
            table.entry(item).or_insert(SpaceId(k as u32));
        }
    }
    Arc::new(move |item: ItemId| table.get(&item).copied().unwrap_or(SpaceId(l + item.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::constraint::{Conjunct, Formula, Term};

    fn two_conjunct_ic() -> IntegrityConstraint {
        IntegrityConstraint::new(vec![
            Conjunct::new(0, Formula::gt(Term::var(ItemId(0)), Term::var(ItemId(1)))),
            Conjunct::new(1, Formula::gt(Term::var(ItemId(2)), Term::int(0))),
        ])
        .unwrap()
    }

    #[test]
    fn global_maps_everything_to_space_zero() {
        let p = PolicySpec::global_2pl();
        assert_eq!(p.space_of(ItemId(0)), SpaceId(0));
        assert_eq!(p.space_of(ItemId(99)), SpaceId(0));
        assert!(!p.early_release && !p.dr_block);
    }

    #[test]
    fn predicate_wise_maps_by_conjunct() {
        let ic = two_conjunct_ic();
        let p = PolicySpec::predicate_wise_2pl(&ic);
        assert_eq!(p.space_of(ItemId(0)), SpaceId(0));
        assert_eq!(p.space_of(ItemId(1)), SpaceId(0));
        assert_eq!(p.space_of(ItemId(2)), SpaceId(1));
        // Unconstrained item 7 → private space 2 + 7.
        assert_eq!(p.space_of(ItemId(7)), SpaceId(9));
    }

    #[test]
    fn early_and_dr_flags() {
        let ic = two_conjunct_ic();
        let p = PolicySpec::predicate_wise_2pl_early(&ic);
        assert!(p.early_release);
        let p = p.dr_blocking();
        assert!(p.dr_block);
        assert_eq!(p.name, "PW-2PL-early+DR");
    }

    #[test]
    fn monitor_builder_sets_spec_and_name() {
        let ic = two_conjunct_ic();
        let p = PolicySpec::predicate_wise_2pl_early(&ic)
            .monitor_admission(&ic, AdmissionLevel::PwsrDr);
        let spec = p.monitor.as_ref().unwrap();
        assert_eq!(spec.scopes.len(), 2);
        assert_eq!(spec.level, AdmissionLevel::PwsrDr);
        assert_eq!(p.name, "PW-2PL-early+MON(PWSR+DR)");
    }

    #[test]
    fn for_spaces_partitions_the_catalog() {
        use pwsr_core::value::Domain;
        let ic = two_conjunct_ic();
        let mut cat = pwsr_core::catalog::Catalog::new();
        for name in ["a", "b", "c", "z"] {
            cat.add_item(name, Domain::int_range(0, 1));
        }
        let adm = MonitorAdmission::for_spaces(
            &cat,
            &PolicySpec::predicate_wise_2pl(&ic),
            AdmissionLevel::Pwsr,
        );
        // Conjunct spaces {a,b} and {c}, plus z's private space.
        assert_eq!(adm.monitor().scopes().len(), 3);
        assert!(adm.is_empty());
        assert_eq!(adm.level(), AdmissionLevel::Pwsr);
    }

    #[test]
    fn admission_rejects_then_syncs_after_rollback() {
        use pwsr_core::value::Value;
        let ic = two_conjunct_ic();
        let mut adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        let ops = [
            Operation::write(TxnId(1), ItemId(0), Value::Int(1)),
            Operation::read(TxnId(2), ItemId(0), Value::Int(1)),
            Operation::write(TxnId(2), ItemId(1), Value::Int(2)),
        ];
        for op in &ops {
            assert!(adm.would_admit(op.txn, op.item, op.is_write()));
            adm.push(op);
        }
        // r1(b) closes the {a,b} cycle: rejected.
        assert!(!adm.would_admit(TxnId(1), ItemId(1), false));
        // Roll T2 back: the trace shrinks; sync rebuilds, and the
        // previously rejected access becomes admissible.
        let trace = vec![ops[0].clone()];
        adm.sync(&trace);
        assert_eq!(adm.len(), 1);
        assert!(adm.would_admit(TxnId(1), ItemId(1), false));
    }

    /// The undo-log sync equals a from-scratch rebuild on every
    /// observable, and its cost is proportional to the rewritten
    /// suffix, not the trace: aborting the last-arriving transaction
    /// of a long trace undoes only the ops at/after its first op.
    #[test]
    fn sync_touches_only_the_rewritten_suffix() {
        use pwsr_core::value::Value;
        let ic = two_conjunct_ic();
        // A long head of committed single-op transactions, then a
        // late transaction interleaved near the end.
        let mut trace: Vec<Operation> = Vec::new();
        for k in 0..200u32 {
            let txn = TxnId(k + 10);
            let item = ItemId(k % 3);
            trace.push(Operation::read(txn, item, Value::Int(0)));
            trace.push(Operation::write(txn, item, Value::Int(1)));
        }
        let victim = TxnId(1);
        trace.push(Operation::write(victim, ItemId(0), Value::Int(7)));
        trace.push(Operation::read(TxnId(500), ItemId(1), Value::Int(1)));
        trace.push(Operation::write(victim, ItemId(2), Value::Int(7)));
        let n = trace.len();

        let mut adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        for op in &trace {
            adm.push(op);
        }
        // Abort the victim: filter its ops out, as the executor does.
        let filtered: Vec<Operation> = trace.iter().filter(|o| o.txn != victim).cloned().collect();
        let stats = adm.sync(&filtered);
        // Only the suffix from the victim's first op was touched.
        assert_eq!(
            stats.undone, 3,
            "undone must be the rewritten suffix, not O(n)"
        );
        assert_eq!(stats.repushed, 1);
        assert!((stats.undone + stats.repushed) as usize * 10 < n);
        assert_eq!(adm.resyncs(), 1);
        assert_eq!(adm.undone_ops(), 3);
        // Observable parity with the O(n) rebuild oracle.
        let mut oracle = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        oracle.rebuild(&filtered);
        assert_eq!(adm.verdict(), oracle.verdict());
        assert_eq!(adm.monitor().schedule(), oracle.monitor().schedule());
        // Steady state: same-length sync is a no-op.
        assert_eq!(adm.sync(&filtered), SyncStats::default());
        assert_eq!(adm.resyncs(), 1);
    }

    #[test]
    fn sync_equals_rebuild_across_random_abort_points() {
        use pwsr_core::value::Value;
        let ic = two_conjunct_ic();
        let ops: Vec<Operation> = vec![
            Operation::write(TxnId(1), ItemId(0), Value::Int(1)),
            Operation::read(TxnId(2), ItemId(0), Value::Int(1)),
            Operation::write(TxnId(3), ItemId(2), Value::Int(2)),
            Operation::write(TxnId(2), ItemId(1), Value::Int(2)),
            Operation::read(TxnId(3), ItemId(1), Value::Int(2)),
            Operation::read(TxnId(1), ItemId(2), Value::Int(2)),
        ];
        for victim in 1..=3u32 {
            let mut adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::PwsrDr);
            for op in &ops {
                adm.push(op);
            }
            let filtered: Vec<Operation> =
                ops.iter().filter(|o| o.txn.0 != victim).cloned().collect();
            adm.sync(&filtered);
            let mut oracle = MonitorAdmission::for_constraint(&ic, AdmissionLevel::PwsrDr);
            oracle.rebuild(&filtered);
            assert_eq!(adm.verdict(), oracle.verdict(), "victim {victim}");
            assert_eq!(adm.len(), filtered.len());
            // The synced monitor keeps certifying correctly.
            assert!(adm.monitor().certify_prefix());
        }
    }

    /// §3.1's canonical non-PWSR interleaving: Example 2's schedule
    /// with fixed-structure TP1′ writing `b` on the else branch. The
    /// projection on d1 = {a, b} becomes w1(a), r2(a), r2(b), w1(b) —
    /// a cycle that closes exactly at the final write. Admission at
    /// level Pwsr must accept everything before it and reject it.
    #[test]
    fn admission_rejects_canonical_non_pwsr_at_first_offending_op() {
        use pwsr_core::constraint::{Conjunct, Formula, Term};
        use pwsr_core::value::Value;
        let (a, b, c) = (ItemId(0), ItemId(1), ItemId(2));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap();
        let ops = [
            Operation::write(TxnId(1), a, Value::Int(1)),
            Operation::read(TxnId(2), a, Value::Int(1)),
            Operation::read(TxnId(2), b, Value::Int(-1)),
            Operation::write(TxnId(2), c, Value::Int(-1)),
            Operation::read(TxnId(1), c, Value::Int(-1)),
            Operation::write(TxnId(1), b, Value::Int(-1)), // TP1′'s else-branch write
        ];
        let mut adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        for (k, op) in ops.iter().enumerate() {
            let admitted = adm.would_admit(op.txn, op.item, op.is_write());
            if k < 5 {
                assert!(admitted, "op {k} is still PWSR-safe");
                adm.push(op);
            } else {
                assert!(!admitted, "w1(b) closes the d1 cycle and must be rejected");
            }
        }
        assert_eq!(adm.len(), 5);
        assert!(adm.verdict().pwsr());
    }

    /// `checkpoint` raises the undo-log floor to the oldest live
    /// transaction's first operation, bounding the log's memory to the
    /// live suffix; syncing below a raised floor falls back to the
    /// rebuild and stays observably correct.
    #[test]
    fn checkpoint_bounds_the_log_to_the_live_suffix() {
        use pwsr_core::value::Value;
        let ic = two_conjunct_ic();
        let mut adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        // 100 settled single-op transactions, then one live straggler.
        let mut trace: Vec<Operation> = Vec::new();
        for k in 0..100u32 {
            trace.push(Operation::write(
                TxnId(k + 10),
                ItemId(k % 3),
                Value::Int(1),
            ));
        }
        let live = TxnId(500);
        trace.push(Operation::read(live, ItemId(0), Value::Int(1)));
        for op in &trace {
            adm.push(op);
        }
        // Unbounded log: one delta per push.
        assert_eq!(adm.log_len(), trace.len());
        assert_eq!(adm.log_floor(), 0);
        // Checkpoint at the live set {500}: the floor jumps to its
        // first operation and the log shrinks to the live suffix.
        let floor = adm.checkpoint([live]);
        assert_eq!(floor, 100, "oldest live txn's first op");
        assert_eq!(adm.log_floor(), 100);
        assert_eq!(adm.log_len(), 1);
        assert_eq!(adm.len(), trace.len(), "checkpoint retracts nothing");
        // The live suffix still aborts incrementally.
        let filtered: Vec<Operation> = trace.iter().filter(|o| o.txn != live).cloned().collect();
        let stats = adm.sync(&filtered);
        assert_eq!((stats.undone, stats.repushed), (1, 0));
        // A checkpoint with nothing live drains the whole log.
        let floor = adm.checkpoint([]);
        assert_eq!(floor, adm.len());
        assert_eq!(adm.log_len(), 0);
        // Syncing below the floor (a cascade aborted a "settled"
        // transaction) takes the rebuild fallback — same observables
        // as the oracle.
        let rewritten: Vec<Operation> = filtered[1..].to_vec();
        let stats = adm.sync(&rewritten);
        assert_eq!(stats.repushed, rewritten.len() as u64);
        let mut oracle = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        oracle.rebuild(&rewritten);
        assert_eq!(adm.verdict(), oracle.verdict());
        assert_eq!(adm.monitor().schedule(), oracle.monitor().schedule());
    }

    /// Compaction composes with sync: settle a long head, checkpoint,
    /// compact it away, then abort the one live transaction — the
    /// incremental sync touches only the live suffix and every
    /// observable matches a rebuild oracle over the filtered trace.
    #[test]
    fn sync_after_compaction_touches_only_the_live_suffix() {
        use pwsr_core::value::Value;
        let ic = two_conjunct_ic();
        let mut adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        let mut trace: Vec<Operation> = Vec::new();
        for k in 0..100u32 {
            trace.push(Operation::write(
                TxnId(k + 10),
                ItemId(k % 3),
                Value::Int(1),
            ));
        }
        let live = TxnId(500);
        trace.push(Operation::read(live, ItemId(0), Value::Int(1)));
        for op in &trace {
            adm.push(op);
            if op.txn != live {
                adm.finish_txn(op.txn);
            }
        }
        assert_eq!(adm.checkpoint([live]), 100);
        assert_eq!(adm.compaction_frontier(), 100);
        let stats = adm.compact();
        assert_eq!((stats.frontier, stats.txns_summarized), (100, 100));
        assert_eq!(adm.len(), trace.len(), "compaction drops no positions");
        // Summarized transactions are flatly refused.
        assert!(!adm.would_admit(TxnId(10), ItemId(5), true));
        // Abort the live straggler: the incremental path retracts only
        // its operation — the compacted head is never revisited.
        let filtered: Vec<Operation> = trace.iter().filter(|o| o.txn != live).cloned().collect();
        let s = adm.sync(&filtered);
        assert_eq!((s.undone, s.repushed), (1, 0));
        let mut oracle = MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr);
        oracle.rebuild(&filtered);
        assert_eq!(adm.verdict(), oracle.verdict());
        assert!(
            adm.resident_bytes_estimate() < oracle.resident_bytes_estimate(),
            "the compacted admission must be smaller than the uncompacted oracle"
        );
    }

    #[test]
    fn table_policy_with_fallback() {
        let mut table = HashMap::new();
        table.insert(ItemId(0), SpaceId(5));
        let p = PolicySpec::from_table("sites", table, 100);
        assert_eq!(p.space_of(ItemId(0)), SpaceId(5));
        assert_eq!(p.space_of(ItemId(3)), SpaceId(103));
    }

    /// The level-implication partial order: `Serializable ⇒ Pwsr`,
    /// `PwsrDr ⇒ Pwsr`, reflexive, and nothing else.
    #[test]
    fn level_implication_table() {
        use AdmissionLevel::*;
        for l in [Serializable, Pwsr, PwsrDr] {
            assert!(level_implies(l, l));
        }
        assert!(level_implies(Serializable, Pwsr));
        assert!(level_implies(PwsrDr, Pwsr));
        assert!(!level_implies(Pwsr, Serializable));
        assert!(!level_implies(Pwsr, PwsrDr));
        assert!(!level_implies(Serializable, PwsrDr));
        assert!(!level_implies(PwsrDr, Serializable));
    }

    #[test]
    fn certificate_covers_and_satisfies() {
        let cert = StaticCertificate::full(AdmissionLevel::Serializable, 3);
        assert_eq!(cert.len(), 3);
        assert!(!cert.is_empty());
        assert!(cert.covers(TxnId(1)) && cert.covers(TxnId(3)));
        assert!(!cert.covers(TxnId(4)));
        assert!(cert.satisfies(AdmissionLevel::Pwsr));
        assert!(cert.satisfies(AdmissionLevel::Serializable));
        assert!(!cert.satisfies(AdmissionLevel::PwsrDr));
        assert_eq!(
            cert.txns().collect::<Vec<_>>(),
            [TxnId(1), TxnId(2), TxnId(3)]
        );
        let explicit =
            StaticCertificate::new(AdmissionLevel::Pwsr, [TxnId(7)].into_iter().collect());
        assert!(explicit.covers(TxnId(7)) && !explicit.covers(TxnId(1)));
    }

    /// A certificate weaker than the admission floor must not attach —
    /// neither via `with_certificate` nor the policy builder.
    #[test]
    fn weak_certificate_is_rejected() {
        let ic = two_conjunct_ic();
        let weak = StaticCertificate::full(AdmissionLevel::Pwsr, 2);
        let adm = MonitorAdmission::for_constraint(&ic, AdmissionLevel::PwsrDr)
            .with_certificate(weak.clone());
        assert!(adm.certificate().is_none());
        assert!(!adm.covers(TxnId(1)));
        let p = PolicySpec::predicate_wise_2pl(&ic)
            .monitor_admission(&ic, AdmissionLevel::PwsrDr)
            .certified(weak);
        assert!(p.monitor.as_ref().unwrap().certificate.is_none());
        assert!(!p.name.contains("CERT"));
        // A strong-enough one attaches and tags the name.
        let strong = StaticCertificate::full(AdmissionLevel::PwsrDr, 2);
        let p = PolicySpec::predicate_wise_2pl(&ic)
            .monitor_admission(&ic, AdmissionLevel::Pwsr)
            .certified(strong);
        let spec = p.monitor.as_ref().unwrap();
        assert!(spec.certificate.is_some());
        assert!(p.name.ends_with("+CERT(2)"));
        assert!(spec.admission().covers(TxnId(2)));
    }

    /// Certified transactions are admitted unconditionally and their
    /// operations never reach the monitor; uncertified ones still get
    /// full certification over the *filtered* sub-trace, and `sync`
    /// (both the incremental path and the rebuild fallback) agrees
    /// with a from-scratch oracle on that sub-trace.
    #[test]
    fn certificate_fast_path_skips_and_syncs_filtered() {
        use pwsr_core::value::Value;
        let ic = two_conjunct_ic();
        // T1 is certified (touching only item 2, disjoint from the
        // others — a conflict-closed singleton component); T2/T3
        // tangle on items 0/1 and stay monitored.
        let cert = StaticCertificate::new(AdmissionLevel::Pwsr, [TxnId(1)].into_iter().collect());
        let mut adm =
            MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr).with_certificate(cert);
        let trace = [
            Operation::write(TxnId(1), ItemId(2), Value::Int(1)),
            Operation::write(TxnId(2), ItemId(0), Value::Int(1)),
            Operation::read(TxnId(1), ItemId(2), Value::Int(1)),
            Operation::read(TxnId(3), ItemId(0), Value::Int(1)),
            Operation::write(TxnId(3), ItemId(1), Value::Int(2)),
        ];
        // Certified accesses admit without consulting the monitor.
        assert!(adm.would_admit(TxnId(1), ItemId(2), true));
        let mut pushed = 0;
        for op in &trace {
            assert!(adm.would_admit(op.txn, op.item, op.is_write()));
            pushed += usize::from(adm.observe(op));
        }
        assert_eq!(pushed, 3, "only uncertified ops reach the monitor");
        assert_eq!(adm.len(), 3);
        assert_eq!(adm.skipped_ops(), 2);
        // Steady state: sync against the full trace is a no-op even
        // though the monitor holds only the filtered sub-trace.
        assert_eq!(adm.sync(&trace), SyncStats::default());
        // Abort T3: the monitor retracts only its ops; parity with a
        // rebuild oracle over the filtered trace.
        let filtered: Vec<Operation> = trace
            .iter()
            .filter(|o| o.txn != TxnId(3))
            .cloned()
            .collect();
        let stats = adm.sync(&filtered);
        assert_eq!((stats.undone, stats.repushed), (2, 0));
        assert_eq!(adm.len(), 1);
        let mut oracle =
            MonitorAdmission::for_constraint(&ic, AdmissionLevel::Pwsr).with_certificate(
                StaticCertificate::new(AdmissionLevel::Pwsr, [TxnId(1)].into_iter().collect()),
            );
        oracle.rebuild(&filtered);
        assert_eq!(adm.verdict(), oracle.verdict());
        assert_eq!(adm.monitor().schedule(), oracle.monitor().schedule());
        assert_eq!(
            oracle.skipped_ops(),
            2,
            "T1's ops skipped in the rebuild too"
        );
        assert_eq!(adm.skipped_ops(), 2);
    }
}
