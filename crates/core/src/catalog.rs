//! The catalog: the finite set `D` of data items with names and domains.
//!
//! §2.1: *"A database consists of a finite set, D, of data items."* The
//! catalog interns item names to dense [`ItemId`]s and owns each item's
//! [`Domain`]; everything downstream works with ids only.

use crate::error::{CoreError, Result};
use crate::ids::ItemId;
use crate::value::{Domain, Value};
use std::collections::HashMap;

/// The set `D` of data items: name ↔ id interning plus per-item domains.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    names: Vec<String>,
    domains: Vec<Domain>,
    by_name: HashMap<String, ItemId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a data item with its domain, returning its id.
    ///
    /// Re-registering an existing name replaces its domain and returns
    /// the existing id (useful when refining domains for experiments).
    pub fn add_item(&mut self, name: &str, domain: Domain) -> ItemId {
        if let Some(&id) = self.by_name.get(name) {
            self.domains[id.index()] = domain;
            return id;
        }
        let id = ItemId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.domains.push(domain);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Register `n` items named `prefix0 … prefix{n-1}` sharing a domain.
    pub fn add_items(&mut self, prefix: &str, n: usize, domain: Domain) -> Vec<ItemId> {
        (0..n)
            .map(|i| self.add_item(&format!("{prefix}{i}"), domain.clone()))
            .collect()
    }

    /// Look up an item by name.
    pub fn lookup(&self, name: &str) -> Result<ItemId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownItem(name.to_owned()))
    }

    /// The item's name.
    pub fn name(&self, id: ItemId) -> &str {
        &self.names[id.index()]
    }

    /// The item's domain.
    pub fn domain(&self, id: ItemId) -> &Domain {
        &self.domains[id.index()]
    }

    /// Does `value` belong to `id`'s domain?
    pub fn in_domain(&self, id: ItemId, value: &Value) -> bool {
        self.domain(id).contains(value)
    }

    /// Validate that a value is in the item's domain.
    pub fn check_domain(&self, id: ItemId, value: &Value) -> Result<()> {
        if self.in_domain(id, value) {
            Ok(())
        } else {
            Err(CoreError::OutOfDomain {
                item: id,
                value: value.clone(),
            })
        }
    }

    /// Number of registered items (`|D|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate all item ids in registration order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.names.len() as u32).map(ItemId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(0, 3));
        let b = cat.add_item("b", Domain::bools());
        assert_ne!(a, b);
        assert_eq!(cat.lookup("a").unwrap(), a);
        assert_eq!(cat.name(b), "b");
        assert_eq!(cat.len(), 2);
        assert!(cat.lookup("zzz").is_err());
    }

    #[test]
    fn reregister_replaces_domain() {
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(0, 1));
        let a2 = cat.add_item("a", Domain::int_range(0, 9));
        assert_eq!(a, a2);
        assert_eq!(cat.domain(a).size(), 10);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn bulk_items() {
        let mut cat = Catalog::new();
        let ids = cat.add_items("x", 4, Domain::int_range(-1, 1));
        assert_eq!(ids.len(), 4);
        assert_eq!(cat.name(ids[2]), "x2");
        assert_eq!(cat.items().count(), 4);
    }

    #[test]
    fn domain_checks() {
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(0, 3));
        assert!(cat.check_domain(a, &Value::Int(2)).is_ok());
        let err = cat.check_domain(a, &Value::Int(9)).unwrap_err();
        assert!(matches!(err, CoreError::OutOfDomain { .. }));
    }
}
