//! # pwsr-core — the formal model of *predicate-wise serializability*
//!
//! This crate implements, as an executable library, the full formalism of
//! Rastogi, Mehrotra, Breitbart, Korth and Silberschatz,
//! *"On Correctness of Nonserializable Executions"* (PODS 1993; JCSS 56,
//! 68–82, 1998):
//!
//! * **Database model** (§2.1): data items with finite domains, partial
//!   database states as variable assignments, the conflict-detecting union
//!   `⊔`, restrictions `DS^d`, and consistency of restrictions defined by
//!   extension-existence ([`state`], [`solver`]).
//! * **Integrity constraints** (§2.1): quantifier-free first-order
//!   formulae over data items, kept as a conjunction `C_1 ∧ … ∧ C_l` of
//!   conjuncts over (ideally disjoint) data sets ([`constraint`]).
//! * **Transactions and schedules** (§2.2): operations carry the *value*
//!   attribute the paper adds to the classical model, plus the derived
//!   notions `RS`, `WS`, `read`, `write`, projections `S^d`,
//!   `before`/`after`, and `depth` ([`op`], [`txn`], [`schedule`]).
//! * **Correctness criteria**: conflict/view serializability
//!   ([`serializability`]), PWSR (Definition 2, [`pwsr`]), strong
//!   correctness (Definition 1, [`strong`]), delayed-read and ACA
//!   schedules (Definition 5, [`dr`]), and the data access graph of §3.3
//!   ([`dag`]).
//! * **Proof artifacts as values**: the view sets of Lemmas 2 and 6
//!   ([`viewset`]) and the per-transaction states of Definition 4
//!   ([`txstate`]) are first-class, so the paper's operation-indexed
//!   induction can be *checked* on any schedule.
//! * **Theorems 1–3** as a verdict engine ([`theorems`]).
//! * **Online certification** ([`monitor`]): a growing indexed schedule
//!   whose serializability / PWSR / delayed-read verdicts and Lemma 2/6
//!   certificates are maintained incrementally per appended operation,
//!   with admission-time rejection of verdict-breaking operations, an
//!   undo-log for `O(ops undone)` abort re-sync, live Theorem 1/3
//!   hypotheses, and a sharded concurrent variant
//!   ([`monitor::sharded`]) that certifies under real OS-thread
//!   parallelism.
//!
//! The crate is deliberately minimal — its only dependency is the
//! workspace's vendored `parking_lot` stand-in (the sharded monitor's
//! locks) — so that the substrate crates (`pwsr-tplang`,
//! `pwsr-scheduler`, …) can build on a small, well-tested kernel.
//!
//! ## Quick start
//!
//! ```
//! use pwsr_core::prelude::*;
//!
//! // Database {a, b, c} with IC = (a>0 → b>0) ∧ (c>0)  — paper Example 2.
//! let mut catalog = Catalog::new();
//! let a = catalog.add_item("a", Domain::int_range(-10, 10));
//! let b = catalog.add_item("b", Domain::int_range(-10, 10));
//! let c = catalog.add_item("c", Domain::int_range(-10, 10));
//! let ic = IntegrityConstraint::new(vec![
//!     Conjunct::new(0, Formula::implies(
//!         Formula::gt(Term::var(a), Term::int(0)),
//!         Formula::gt(Term::var(b), Term::int(0)),
//!     )),
//!     Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
//! ]).unwrap();
//! assert!(ic.is_disjoint());
//!
//! // The schedule of Example 2: PWSR but not strongly correct.
//! let t1 = TxnId(1);
//! let t2 = TxnId(2);
//! let s = Schedule::new(vec![
//!     Operation::write(t1, a, Value::Int(1)),
//!     Operation::read(t2, a, Value::Int(1)),
//!     Operation::read(t2, b, Value::Int(-1)),
//!     Operation::write(t2, c, Value::Int(-1)),
//!     Operation::read(t1, c, Value::Int(-1)),
//! ]).unwrap();
//!
//! assert!(is_pwsr(&s, &ic).ok());          // each projection serializable
//! assert!(!is_conflict_serializable(&s));  // but S itself is not
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod constraint;
pub mod dag;
pub mod dr;
pub mod error;
pub mod graph;
pub mod history;
pub mod ids;
pub mod index;
pub mod monitor;
pub mod notation;
pub mod op;
pub mod pwsr;
pub mod schedule;
pub mod serializability;
pub mod solver;
pub mod state;
pub mod strong;
pub mod theorems;
pub mod txn;
pub mod txstate;
pub mod value;
pub mod viewset;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
    pub use crate::dag::{data_access_graph, DataAccessGraph};
    pub use crate::dr::{is_aca, is_delayed_read, is_strict, RecoveryClass};
    pub use crate::error::CoreError;
    pub use crate::history::{Event, History, HistoryClass, Outcome};
    pub use crate::ids::{ConjunctId, ItemId, OpIndex, TxnId};
    pub use crate::index::ScheduleIndex;
    pub use crate::monitor::{AdmissionLevel, OnlineIndex, OnlineMonitor, VerdictLevel};
    pub use crate::notation::{parse_history, parse_schedule};
    pub use crate::op::{Action, OpStruct, Operation};
    pub use crate::pwsr::{is_pwsr, PwsrReport};
    pub use crate::schedule::Schedule;
    pub use crate::serializability::{
        is_conflict_serializable, is_conflict_serializable_proj, is_view_serializable,
        precedence_graph, serialization_order, serialization_order_proj,
    };
    pub use crate::solver::Solver;
    pub use crate::state::{DbState, ItemSet};
    pub use crate::strong::{check_strong_correctness, StrongReport};
    pub use crate::theorems::{classify, Guarantee, ProgramTraits, Verdict};
    pub use crate::txn::Transaction;
    pub use crate::txstate::transaction_states;
    pub use crate::value::{Domain, Value};
    pub use crate::viewset::{view_sets_dr, view_sets_general};
}
