//! Execution metrics collected by the executor.

use std::fmt;

/// Counters describing one workload execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Scheduler steps taken (each step attempts one operation).
    pub steps: u64,
    /// Operations committed into the final schedule.
    pub committed_ops: u64,
    /// Times a transaction found itself blocked (lock or DR wait).
    pub waits: u64,
    /// Deadlock cycles resolved.
    pub deadlocks: u64,
    /// Transactions aborted (victims + cascades).
    pub aborts: u64,
    /// Transaction restarts performed.
    pub restarts: u64,
    /// Lock acquisitions granted.
    pub lock_acquisitions: u64,
    /// Operations rejected by the online verdict monitor (each rejection
    /// aborts and restarts the requesting transaction).
    pub monitor_rejections: u64,
    /// Monitor re-syncs that found the trace rewritten by an abort.
    pub monitor_resyncs: u64,
    /// Operations the monitor's undo-log retracted across all re-syncs
    /// (the abort cost that used to be an `O(n)` rebuild each time).
    pub monitor_undone_ops: u64,
    /// The monitor undo-log's final retraction floor — how far
    /// checkpointing bounded the log (0 when no monitor ran).
    pub monitor_log_floor: u64,
    /// Operations that bypassed runtime certification because their
    /// transaction held a static safety certificate.
    pub monitor_skipped_ops: u64,
    /// OCC aborts: transactions rolled back by a failed backward
    /// validation or a certification breach (victims + cascades) —
    /// the same counter whichever OCC path (single-threaded or
    /// OCC-certified threaded) produced them.
    pub occ_aborts: u64,
    /// OCC retries: transaction re-executions scheduled after an OCC
    /// abort.
    pub occ_retries: u64,
    /// Write-ahead-log records appended (operations + retractions +
    /// floor raises); 0 when no WAL is attached.
    pub wal_appends: u64,
    /// Write-ahead-log frame bytes written.
    pub wal_bytes: u64,
    /// Write-ahead-log fsyncs issued (per the configured
    /// `SyncPolicy`).
    pub wal_fsyncs: u64,
    /// Write-ahead-log I/O errors observed (including errors the WAL's
    /// error policy healed by retry or degradation). Non-zero with a
    /// fail-stop policy means the run ended in `SchedError::WalFailed`.
    pub wal_io_errors: u64,
    /// Faults the deterministic chaos plane fired during the run
    /// (WAL faults and executor faults alike); 0 outside fault drills.
    pub injected_faults: u64,
    /// Transaction attempts aborted because they outlived the
    /// configured OCC deadline — self-detected or discovered after a
    /// zombie reap.
    pub txn_timeouts: u64,
    /// Stalled/dead transactions another worker reclaimed: the zombie's
    /// monitor suffix retracted and its dirty items rolled back so the
    /// pool could make progress.
    pub zombie_reaps: u64,
    /// Worker panics contained by the executor (the panicking
    /// transaction died; the pool kept committing).
    pub worker_panics: u64,
    /// Batch admissions: contiguous single-transaction runs pushed
    /// through the monitor's amortized batch path.
    pub batch_pushes: u64,
    /// Operations carried inside those batch admissions (singleton
    /// pushes are not counted here).
    pub batched_ops: u64,
    /// Largest single batch admitted.
    pub max_batch: u64,
}

impl Metrics {
    /// Blocked-step fraction: waits per step (0 when no steps ran).
    pub fn wait_ratio(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.waits as f64 / self.steps as f64
        }
    }

    /// Useful-work fraction: committed operations per step.
    pub fn goodput(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.committed_ops as f64 / self.steps as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} ops={} waits={} deadlocks={} aborts={} restarts={} locks={} monrej={} \
             monresync={} monundo={} monfloor={} monskip={} occab={} occretry={} \
             walapp={} walbytes={} walsync={} walerr={} faults={} timeouts={} reaps={} \
             panics={} batches={} batchops={} maxbatch={} goodput={:.3}",
            self.steps,
            self.committed_ops,
            self.waits,
            self.deadlocks,
            self.aborts,
            self.restarts,
            self.lock_acquisitions,
            self.monitor_rejections,
            self.monitor_resyncs,
            self.monitor_undone_ops,
            self.monitor_log_floor,
            self.monitor_skipped_ops,
            self.occ_aborts,
            self.occ_retries,
            self.wal_appends,
            self.wal_bytes,
            self.wal_fsyncs,
            self.wal_io_errors,
            self.injected_faults,
            self.txn_timeouts,
            self.zombie_reaps,
            self.worker_panics,
            self.batch_pushes,
            self.batched_ops,
            self.max_batch,
            self.goodput()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let m = Metrics {
            steps: 10,
            committed_ops: 5,
            waits: 2,
            ..Metrics::default()
        };
        assert!((m.wait_ratio() - 0.2).abs() < 1e-9);
        assert!((m.goodput() - 0.5).abs() < 1e-9);
        let z = Metrics::default();
        assert_eq!(z.wait_ratio(), 0.0);
        assert_eq!(z.goodput(), 0.0);
    }

    #[test]
    fn display_contains_counters() {
        let m = Metrics {
            steps: 3,
            deadlocks: 1,
            occ_aborts: 2,
            occ_retries: 5,
            wal_io_errors: 1,
            injected_faults: 4,
            txn_timeouts: 2,
            zombie_reaps: 1,
            worker_panics: 1,
            batch_pushes: 6,
            batched_ops: 24,
            max_batch: 8,
            ..Metrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("steps=3") && s.contains("deadlocks=1"));
        assert!(s.contains("occab=2") && s.contains("occretry=5"));
        assert!(s.contains("walapp=0") && s.contains("walsync=0"));
        assert!(s.contains("walerr=1") && s.contains("faults=4"));
        assert!(s.contains("timeouts=2") && s.contains("reaps=1"));
        assert!(s.contains("panics=1"));
        assert!(s.contains("batches=6") && s.contains("batchops=24"));
        assert!(s.contains("maxbatch=8"));
    }
}
