//! # pwsr — predicate-wise serializability toolkit
//!
//! Facade crate re-exporting the whole workspace: the formal model
//! ([`core`]), the transaction-program language ([`tplang`]), the
//! lock-based scheduler substrate ([`scheduler`]), baseline correctness
//! criteria ([`baselines`]), workload generators ([`gen`]), the
//! static robustness analyzer ([`analysis`]) and the durability layer
//! ([`durability`]: WAL, hashed checkpoints, crash recovery).
//!
//! Reproduces Rastogi, Mehrotra, Breitbart, Korth, Silberschatz —
//! *On Correctness of Nonserializable Executions* (PODS '93 / JCSS '98).
//! See `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-vs-measured index.

pub use pwsr_analysis as analysis;
pub use pwsr_baselines as baselines;
pub use pwsr_core as core;
pub use pwsr_durability as durability;
pub use pwsr_gen as gen;
pub use pwsr_scheduler as scheduler;
pub use pwsr_tplang as tplang;

pub mod diagnosis;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::diagnosis::{diagnose, Diagnosis};
    pub use pwsr_core::prelude::*;
    pub use pwsr_tplang::prelude::*;
}
