//! Crash recovery: load checkpoint (if any), replay the WAL tail
//! through a fresh monitor, stop cleanly at the first corrupt byte.
//!
//! The guarantee this module enforces: a recovered monitor is
//! **byte-identical** (state hash, verdict ladder, floor, schedule)
//! to the pre-crash monitor *at the last durable record* — a torn or
//! bit-flipped tail is detected by its checksum and truncated, never
//! silently replayed.

use std::fmt;

use pwsr_core::error::CoreError;
use pwsr_core::monitor::OnlineMonitor;
use pwsr_core::state::ItemSet;

use crate::checkpoint::{replay_prefix, state_hash, Checkpoint, CheckpointError};
use crate::wal::{scan, WalCorruption, WalRecord};

/// The outcome of a successful recovery.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt monitor, positioned exactly at the last durable
    /// record.
    pub monitor: OnlineMonitor,
    /// Logical WAL records applied (after the checkpoint prefix).
    pub records_applied: usize,
    /// Byte length of the valid WAL prefix that was replayed.
    pub valid_bytes: usize,
    /// `None` if the log ended cleanly; otherwise the detected (and
    /// truncated) tail damage.
    pub corruption: Option<WalCorruption>,
}

/// Why recovery refused to produce a monitor. Corrupt WAL *tails* are
/// not errors (they are truncated); these are integrity failures in
/// what *did* checksum cleanly.
#[derive(Debug)]
pub enum RecoverError {
    /// The checkpoint failed to decode or its replayed state hash did
    /// not match the stored one.
    Checkpoint(CheckpointError),
    /// A cleanly-checksummed record was inconsistent with the monitor
    /// state (e.g. `Truncate` beyond the length or below the floor) —
    /// a logic-level impossibility for logs this crate wrote, so it
    /// indicates tampering rather than a crash.
    InconsistentRecord {
        /// Zero-based index of the offending record in the tail.
        index: usize,
        /// What was inconsistent about it.
        detail: String,
    },
    /// A cleanly-checksummed `Op` record was rejected by §2.2
    /// validation during replay.
    Replay {
        /// Zero-based index of the offending record in the tail.
        index: usize,
        /// The schedule-validation error.
        source: CoreError,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            RecoverError::InconsistentRecord { index, detail } => {
                write!(f, "inconsistent WAL record #{index}: {detail}")
            }
            RecoverError::Replay { index, source } => {
                write!(f, "WAL record #{index} failed replay: {source}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<CheckpointError> for RecoverError {
    fn from(e: CheckpointError) -> RecoverError {
        RecoverError::Checkpoint(e)
    }
}

/// Rebuild a monitor from an optional checkpoint plus a WAL byte
/// stream (the tail written *after* the checkpoint was captured).
///
/// 1. A fresh monitor over `scopes` replays the checkpoint prefix and
///    raises its floor; the recomputed state hash must equal the
///    stored one or recovery refuses
///    ([`RecoverError::Checkpoint`] / [`CheckpointError::HashMismatch`]).
/// 2. The WAL is scanned for its longest checksummed prefix; each
///    record replays through the corresponding monitor entry point
///    (`Op` → `push_logged`, `OpBatch` → `push_batch_logged`,
///    `Truncate` → `truncate_to`, `Floor` → `checkpoint`, `Reset` →
///    fresh monitor).
/// 3. Tail corruption is reported, not fatal: the monitor stands at
///    the last durable record.
pub fn recover(
    scopes: Vec<ItemSet>,
    checkpoint: Option<&Checkpoint>,
    wal_bytes: &[u8],
) -> Result<Recovered, RecoverError> {
    let mut monitor = match checkpoint {
        Some(ckp) => {
            let m = replay_prefix(scopes.clone(), &ckp.ops, ckp.floor).map_err(|e| {
                RecoverError::Checkpoint(CheckpointError::InvalidPrefix(e.to_string()))
            })?;
            let actual = state_hash(&m);
            if actual != ckp.hash {
                return Err(CheckpointError::HashMismatch {
                    expected: ckp.hash,
                    actual,
                }
                .into());
            }
            m
        }
        None => OnlineMonitor::new(scopes.clone()),
    };
    let s = scan(wal_bytes);
    for (index, rec) in s.records.iter().enumerate() {
        apply_record(&mut monitor, &scopes, rec, index)?;
    }
    Ok(Recovered {
        monitor,
        records_applied: s.records.len(),
        valid_bytes: s.valid_bytes,
        corruption: s.corruption,
    })
}

/// Apply one logical record to `monitor` — the replay side of the
/// `MonitorJournal` language.
fn apply_record(
    monitor: &mut OnlineMonitor,
    scopes: &[ItemSet],
    rec: &WalRecord,
    index: usize,
) -> Result<(), RecoverError> {
    match rec {
        WalRecord::Op(op) => monitor
            .push_logged(op.clone())
            .map(|_| ())
            .map_err(|source| RecoverError::Replay { index, source }),
        WalRecord::OpBatch(ops) => monitor
            .push_batch_logged(ops)
            .map(|_| ())
            .map_err(|source| RecoverError::Replay { index, source }),
        WalRecord::Truncate(n) => {
            let n = *n as usize;
            if n > monitor.len() || n < monitor.log_floor() {
                return Err(RecoverError::InconsistentRecord {
                    index,
                    detail: format!(
                        "truncate to {n} outside [{}, {}]",
                        monitor.log_floor(),
                        monitor.len()
                    ),
                });
            }
            monitor.truncate_to(n);
            Ok(())
        }
        WalRecord::Floor(floor) => {
            let floor = *floor as usize;
            if floor > monitor.len() {
                return Err(RecoverError::InconsistentRecord {
                    index,
                    detail: format!("floor {floor} beyond length {}", monitor.len()),
                });
            }
            monitor.checkpoint(floor);
            Ok(())
        }
        WalRecord::Reset => {
            *monitor = OnlineMonitor::new(scopes.to_vec());
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::wal::{SharedWal, SyncPolicy};
    use pwsr_core::ids::{ItemId, TxnId};
    use pwsr_core::monitor::journal::MonitorJournal;
    use pwsr_core::op::Operation;
    use pwsr_core::value::Value;

    fn scopes() -> Vec<ItemSet> {
        let mut a = ItemSet::new();
        a.insert(ItemId(0));
        a.insert(ItemId(1));
        let mut b = ItemSet::new();
        b.insert(ItemId(2));
        b.insert(ItemId(3));
        vec![a, b]
    }

    /// A monitor journaled into an in-memory WAL, driven through
    /// pushes, an abort (truncate + re-push), and a floor raise;
    /// recovery from the WAL alone must be state-hash-identical.
    #[test]
    fn recover_exact_after_abort_and_floor() {
        let wal = SharedWal::in_memory(SyncPolicy::Off);
        let mut journal: Box<dyn MonitorJournal> = Box::new(wal.clone());
        let mut live = OnlineMonitor::new(scopes());

        let push = |m: &mut OnlineMonitor, j: &mut Box<dyn MonitorJournal>, op: Operation| {
            j.appended(&op);
            m.push_logged(op).unwrap();
        };
        push(
            &mut live,
            &mut journal,
            Operation::write(TxnId(1), ItemId(0), Value::Int(1)),
        );
        push(
            &mut live,
            &mut journal,
            Operation::read(TxnId(2), ItemId(0), Value::Int(1)),
        );
        push(
            &mut live,
            &mut journal,
            Operation::write(TxnId(2), ItemId(2), Value::Int(2)),
        );
        // Abort T2: truncate to 1, then T1 continues.
        journal.truncated(1);
        live.truncate_to(1);
        push(
            &mut live,
            &mut journal,
            Operation::read(TxnId(1), ItemId(3), Value::Int(0)),
        );
        // Floor rises to 1.
        journal.floor_raised(1);
        live.checkpoint(1);

        let bytes = wal.snapshot().unwrap();
        let rec = recover(scopes(), None, &bytes).unwrap();
        assert_eq!(rec.corruption, None);
        assert_eq!(rec.valid_bytes, bytes.len());
        assert_eq!(state_hash(&rec.monitor), state_hash(&live));
        assert_eq!(rec.monitor.verdict(), live.verdict());
        assert_eq!(rec.monitor.schedule().ops(), live.schedule().ops());
        assert_eq!(rec.monitor.log_floor(), live.log_floor());
    }

    /// A batch-journaled history (framed `OpBatch` records) recovers
    /// byte-identically to the same history journaled op-by-op.
    #[test]
    fn batch_records_recover_identically() {
        let wal = SharedWal::in_memory(SyncPolicy::Off);
        let mut journal: Box<dyn MonitorJournal> = Box::new(wal.clone());
        let mut live = OnlineMonitor::new(scopes());
        let b1 = vec![
            Operation::write(TxnId(1), ItemId(0), Value::Int(1)),
            Operation::write(TxnId(1), ItemId(2), Value::Int(2)),
        ];
        let b2 = vec![
            Operation::read(TxnId(2), ItemId(0), Value::Int(1)),
            Operation::write(TxnId(2), ItemId(3), Value::Int(7)),
        ];
        for batch in [&b1, &b2] {
            journal.appended_batch(batch);
            live.push_batch_logged(batch).unwrap();
        }
        // The shared WAL framed each batch as one multi-op record.
        let stats = wal.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.batch_pushes, 2);
        assert_eq!(stats.batched_ops, 4);
        assert_eq!(stats.max_batch, 2);
        let rec = recover(scopes(), None, &wal.snapshot().unwrap()).unwrap();
        assert_eq!(rec.records_applied, 2);
        assert_eq!(state_hash(&rec.monitor), state_hash(&live));
        assert_eq!(rec.monitor.verdict(), live.verdict());
        assert_eq!(rec.monitor.schedule().ops(), live.schedule().ops());
        // A singleton-journaled twin of the same history recovers to
        // the same state hash — the two wire forms are equivalent.
        let wal2 = SharedWal::in_memory(SyncPolicy::Off);
        let mut j2: Box<dyn MonitorJournal> = Box::new(wal2.clone());
        for op in b1.iter().chain(&b2) {
            j2.appended(op);
        }
        let rec2 = recover(scopes(), None, &wal2.snapshot().unwrap()).unwrap();
        assert_eq!(state_hash(&rec2.monitor), state_hash(&live));
    }

    #[test]
    fn recover_from_checkpoint_plus_tail() {
        let mut live = OnlineMonitor::new(scopes());
        live.push_logged(Operation::write(TxnId(1), ItemId(0), Value::Int(1)))
            .unwrap();
        live.push_logged(Operation::read(TxnId(2), ItemId(0), Value::Int(1)))
            .unwrap();
        live.checkpoint(2);
        let ckp = Checkpoint::capture(&live);

        // Tail written after the checkpoint.
        let wal = SharedWal::in_memory(SyncPolicy::Off);
        let mut journal: Box<dyn MonitorJournal> = Box::new(wal.clone());
        let tail_op = Operation::write(TxnId(2), ItemId(3), Value::Int(7));
        journal.appended(&tail_op);
        live.push_logged(tail_op).unwrap();

        let rec = recover(scopes(), Some(&ckp), &wal.snapshot().unwrap()).unwrap();
        assert_eq!(rec.records_applied, 1);
        assert_eq!(state_hash(&rec.monitor), state_hash(&live));
    }

    #[test]
    fn checkpoint_hash_mismatch_refused() {
        let mut live = OnlineMonitor::new(scopes());
        live.push_logged(Operation::write(TxnId(1), ItemId(0), Value::Int(1)))
            .unwrap();
        live.checkpoint(1);
        let mut ckp = Checkpoint::capture(&live);
        ckp.hash.0[0] ^= 0xFF;
        match recover(scopes(), Some(&ckp), &[]) {
            Err(RecoverError::Checkpoint(CheckpointError::HashMismatch { .. })) => {}
            other => panic!("expected hash mismatch, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_truncate_refused() {
        let bytes = {
            let wal = SharedWal::in_memory(SyncPolicy::Off);
            wal.with(|w| w.append(&WalRecord::Truncate(5)));
            wal.snapshot().unwrap()
        };
        match recover(scopes(), None, &bytes) {
            Err(RecoverError::InconsistentRecord { index: 0, .. }) => {}
            other => panic!("expected inconsistent record, got {other:?}"),
        }
    }

    /// The shared-frontier pairing end-to-end: a journaled monitor
    /// advances the durable frontier twice (checkpoint → WAL restart →
    /// compact, the second advance chaining via `capture_after`), then
    /// "crashes". Recovery from `checkpoint + truncated WAL` rebuilds
    /// the uncompacted state; re-compacting it to the same frontier
    /// converges on the live monitor's exact resident shape, and both
    /// twins stay verdict-identical on subsequent pushes.
    #[test]
    fn compaction_recovery_round_trip() {
        use crate::checkpoint::advance_frontier;

        let wal = SharedWal::in_memory(SyncPolicy::Off);
        let mut journal: Box<dyn MonitorJournal> = Box::new(wal.clone());
        let mut live = OnlineMonitor::new(scopes());
        let push = |m: &mut OnlineMonitor, j: &mut Box<dyn MonitorJournal>, op: Operation| {
            j.appended(&op);
            m.push_logged(op).unwrap();
        };
        // Ops 0..3 belong to T1/T2 (which settle); op 3 opens T3.
        push(
            &mut live,
            &mut journal,
            Operation::write(TxnId(1), ItemId(0), Value::Int(1)),
        );
        push(
            &mut live,
            &mut journal,
            Operation::read(TxnId(2), ItemId(0), Value::Int(1)),
        );
        push(
            &mut live,
            &mut journal,
            Operation::write(TxnId(2), ItemId(2), Value::Int(2)),
        );
        push(
            &mut live,
            &mut journal,
            Operation::write(TxnId(3), ItemId(3), Value::Int(3)),
        );
        live.finish_txn(TxnId(1));
        live.finish_txn(TxnId(2));
        journal.floor_raised(3);
        live.checkpoint(3);

        let (ckp1, stats1) = advance_frontier(&mut live, &wal, None);
        assert_eq!(ckp1.floor, 3);
        assert_eq!((stats1.frontier, stats1.txns_summarized), (3, 2));
        assert_eq!(live.schedule().base(), 3);
        // Checkpoint + truncated WAL already reconstruct this state.
        let rec = recover(scopes(), Some(&ckp1), &wal.snapshot().unwrap()).unwrap();
        assert_eq!(rec.monitor.len(), 4);
        assert_eq!(rec.monitor.verdict(), live.verdict());

        // The compacted monitor keeps running: T3 reads across the
        // summarized boundary (its writer was compacted away), T4
        // opens, and the frontier advances again — chained from ckp1,
        // since ops below base 3 no longer exist to snapshot.
        push(
            &mut live,
            &mut journal,
            Operation::read(TxnId(3), ItemId(2), Value::Int(2)),
        );
        push(
            &mut live,
            &mut journal,
            Operation::write(TxnId(4), ItemId(1), Value::Int(9)),
        );
        live.finish_txn(TxnId(3));
        journal.floor_raised(5);
        live.checkpoint(5);
        let (ckp2, stats2) = advance_frontier(&mut live, &wal, Some(&ckp1));
        assert_eq!(ckp2.floor, 5);
        assert_eq!(ckp2.ops.len(), 5, "chained capture spans both epochs");
        assert_eq!(stats2.frontier, 5);
        assert_eq!(live.schedule().base(), 5);

        // Crash. Recovery rebuilds the uncompacted state...
        let rec = recover(scopes(), Some(&ckp2), &wal.snapshot().unwrap()).unwrap();
        assert_eq!(rec.corruption, None);
        assert_eq!(rec.records_applied, 1, "only the live tail replays");
        let mut twin = rec.monitor;
        assert_eq!(twin.len(), 6);
        assert_eq!(twin.log_floor(), 5);
        assert_eq!(twin.verdict(), live.verdict());
        // ...and re-compacting to the same frontier converges on the
        // live monitor's exact resident shape.
        for t in [TxnId(1), TxnId(2), TxnId(3)] {
            twin.finish_txn(t);
        }
        twin.compact();
        assert_eq!(twin.schedule().base(), live.schedule().base());
        assert_eq!(twin.schedule().ops(), live.schedule().ops());
        assert_eq!(state_hash(&twin), state_hash(&live));
        // Both twins keep certifying identically past the crash.
        let next = Operation::read(TxnId(4), ItemId(3), Value::Int(3));
        assert_eq!(
            twin.push_logged(next.clone()).unwrap(),
            live.push_logged(next).unwrap()
        );
    }

    #[test]
    fn torn_tail_truncated_not_fatal() {
        let wal = SharedWal::in_memory(SyncPolicy::Off);
        let mut journal: Box<dyn MonitorJournal> = Box::new(wal.clone());
        journal.appended(&Operation::write(TxnId(1), ItemId(0), Value::Int(1)));
        journal.appended(&Operation::read(TxnId(2), ItemId(0), Value::Int(1)));
        let mut bytes = wal.snapshot().unwrap();
        bytes.truncate(bytes.len() - 3); // torn final record
        let rec = recover(scopes(), None, &bytes).unwrap();
        assert_eq!(rec.records_applied, 1);
        assert!(rec.corruption.is_some());
        assert_eq!(rec.monitor.len(), 1);
    }
}
