//! Predicate-wise serializability (Definition 2).
//!
//! *"A schedule S is said to be PWSR if for all e = 1, 2, …, l, S^{d_e}
//! is serializable."* — the restriction of `S` to each conjunct's data
//! set must be conflict-serializable. The report records the verdict
//! and a serialization order per conjunct (the orders can *differ*
//! across conjuncts; that divergence is exactly what makes the paper's
//! correctness question hard, cf. the discussion before Lemma 2).

use crate::constraint::IntegrityConstraint;
use crate::ids::{ConjunctId, TxnId};
use crate::schedule::Schedule;
use crate::serializability::{conflict_cycle_proj, is_view_serializable, serialization_order_proj};

/// Per-conjunct outcome of the PWSR test.
#[derive(Clone, Debug)]
pub struct ConjunctVerdict {
    /// Which conjunct.
    pub conjunct: ConjunctId,
    /// A serialization order of `S^{d_e}` if serializable.
    pub order: Option<Vec<TxnId>>,
    /// A conflict cycle in `S^{d_e}` if not.
    pub cycle: Option<Vec<TxnId>>,
}

impl ConjunctVerdict {
    /// Is `S^{d_e}` serializable?
    pub fn serializable(&self) -> bool {
        self.order.is_some()
    }
}

/// Outcome of the PWSR test (Definition 2).
#[derive(Clone, Debug)]
pub struct PwsrReport {
    /// One verdict per conjunct, in constraint order.
    pub per_conjunct: Vec<ConjunctVerdict>,
}

impl PwsrReport {
    /// Is the schedule PWSR (every projection serializable)?
    pub fn ok(&self) -> bool {
        self.per_conjunct.iter().all(ConjunctVerdict::serializable)
    }

    /// The verdict for a specific conjunct.
    pub fn conjunct(&self, id: ConjunctId) -> Option<&ConjunctVerdict> {
        self.per_conjunct.iter().find(|v| v.conjunct == id)
    }

    /// Conjuncts whose projections are *not* serializable.
    pub fn failing(&self) -> impl Iterator<Item = &ConjunctVerdict> {
        self.per_conjunct.iter().filter(|v| !v.serializable())
    }
}

/// Test Definition 2: is `S` predicate-wise serializable under `ic`?
///
/// Each conjunct's projection is checked without materializing it
/// ([`serialization_order_proj`] works off per-item access lists), so
/// the verdict engine's hot path clones no operations.
pub fn is_pwsr(schedule: &Schedule, ic: &IntegrityConstraint) -> PwsrReport {
    let per_conjunct = ic
        .conjuncts()
        .iter()
        .map(|c| {
            let order = serialization_order_proj(schedule, c.items());
            let cycle = if order.is_none() {
                conflict_cycle_proj(schedule, c.items())
            } else {
                None
            };
            ConjunctVerdict {
                conjunct: c.id(),
                order,
                cycle,
            }
        })
        .collect();
    PwsrReport { per_conjunct }
}

/// Predicate-wise **view** serializability: every projection
/// view-serializable. Since VSR ⊋ CSR, PW-VSR ⊇ PWSR; the containment
/// is strict exactly when some projection is view- but not
/// conflict-serializable (blind writes). Returns `None` when any
/// non-CSR projection is too large for the brute-force view test.
pub fn is_pw_view_serializable(schedule: &Schedule, ic: &IntegrityConstraint) -> Option<bool> {
    let mut ok = true;
    for c in ic.conjuncts() {
        if serialization_order_proj(schedule, c.items()).is_some() {
            continue; // CSR ⇒ VSR
        }
        // Only the rare non-CSR projection pays for materialization
        // (the brute-force view test permutes actual transactions).
        let proj = schedule.project(c.items());
        match is_view_serializable(&proj) {
            Some(true) => {}
            Some(false) => ok = false,
            None => return None,
        }
    }
    Some(ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Conjunct, Formula, Term};
    use crate::ids::ItemId;
    use crate::op::Operation;
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    /// Example 2's IC: C1 = (a>0 → b>0) over {a,b}, C2 = (c>0) over {c}.
    fn example2_ic() -> IntegrityConstraint {
        let (a, b, c) = (ItemId(0), ItemId(1), ItemId(2));
        IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap()
    }

    /// Example 2's schedule.
    fn example2_schedule() -> Schedule {
        Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ])
        .unwrap()
    }

    #[test]
    fn example2_is_pwsr_but_not_csr() {
        let ic = example2_ic();
        let s = example2_schedule();
        let report = is_pwsr(&s, &ic);
        assert!(report.ok(), "Example 2's schedule is PWSR by design");
        // On d1 = {a,b} the order is T1, T2; on d2 = {c} it's T2, T1:
        // PWSR with *conflicting* per-conjunct orders.
        let o1 = report
            .conjunct(ConjunctId(0))
            .unwrap()
            .order
            .clone()
            .unwrap();
        let o2 = report
            .conjunct(ConjunctId(1))
            .unwrap()
            .order
            .clone()
            .unwrap();
        assert_eq!(o1, vec![TxnId(1), TxnId(2)]);
        assert_eq!(o2, vec![TxnId(2), TxnId(1)]);
        assert!(!crate::serializability::is_conflict_serializable(&s));
    }

    #[test]
    fn non_pwsr_reported_with_cycle() {
        // Make the projection on {a,b} itself non-serializable:
        // w1(a), r2(a), w2(b), r1(b) — cycle within one conjunct.
        let ic = example2_ic();
        let s = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)]).unwrap();
        let report = is_pwsr(&s, &ic);
        assert!(!report.ok());
        let failing: Vec<_> = report.failing().collect();
        assert_eq!(failing.len(), 1);
        assert_eq!(failing[0].conjunct, ConjunctId(0));
        assert!(failing[0].cycle.is_some());
    }

    #[test]
    fn serializable_implies_pwsr() {
        // Any CSR schedule is PWSR: projections of an acyclic conflict
        // graph stay acyclic (edges only disappear).
        let ic = example2_ic();
        let s = Schedule::new(vec![wr(1, 0, 1), wr(1, 2, 1), rd(2, 0, 1), rd(2, 2, 1)]).unwrap();
        assert!(crate::serializability::is_conflict_serializable(&s));
        assert!(is_pwsr(&s, &ic).ok());
    }

    #[test]
    fn pw_vsr_contains_pwsr() {
        let ic = example2_ic();
        let s = example2_schedule();
        assert!(is_pwsr(&s, &ic).ok());
        assert_eq!(is_pw_view_serializable(&s, &ic), Some(true));
    }

    #[test]
    fn pw_vsr_strictly_larger_with_blind_writes() {
        // Blind-write pattern inside conjunct 0 ({a, b}): the classic
        // VSR-not-CSR triple on items a and b.
        let ic = example2_ic();
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            wr(2, 0, 2),
            wr(2, 1, 2),
            wr(1, 1, 1),
            wr(3, 0, 3),
            wr(3, 1, 3),
        ])
        .unwrap();
        let report = is_pwsr(&s, &ic);
        assert!(!report.ok(), "not conflict-PWSR");
        assert_eq!(is_pw_view_serializable(&s, &ic), Some(true));
    }

    #[test]
    fn pw_vsr_rejects_genuine_cycles() {
        let ic = example2_ic();
        let s = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)]).unwrap();
        assert_eq!(is_pw_view_serializable(&s, &ic), Some(false));
    }

    #[test]
    fn pwsr_with_fixed_tp1_prime_is_rejected() {
        // §3.1: replacing TP1 by fixed-structure TP1′ adds w1(b,·), so
        // S^{d1} = w1(a), r2(a), r2(b), w1(b) has a cycle — not PWSR.
        let ic = example2_ic();
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
            wr(1, 1, -1), // TP1′ writes b even on the else branch
        ])
        .unwrap();
        let report = is_pwsr(&s, &ic);
        assert!(!report.ok());
        assert!(!report.conjunct(ConjunctId(0)).unwrap().serializable());
        assert!(report.conjunct(ConjunctId(1)).unwrap().serializable());
    }
}
