//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the subset of the rand 0.9 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (SplitMix64 core
//!   feeding an xorshift finalizer). Not cryptographic; statistically fine
//!   for workload generation and property tests.
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace
//!   calls.
//! * [`Rng::random_range`] / [`Rng::random_bool`] — range sampling over
//!   the primitive integer types and `f64`.
//!
//! Determinism contract: for a given seed, the stream of values is stable
//! across runs and platforms (pure integer arithmetic, no HW entropy).

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Widen before subtracting: a span computed in a narrow
                // type wraps for ranges wider than half its width, and
                // `as u64` would then sign-extend the garbage. Casting
                // through i64 first sign-extends signed types and
                // zero-extends unsigned ones, so the difference is the
                // true span mod 2^64 for every supported type.
                let span = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i64 as u64).wrapping_sub(start as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when
            // used as a stream; ample for test workload generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.random_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = r.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn wide_narrow_type_ranges_stay_in_bounds() {
        // Regression: spans wider than half the type's width used to be
        // computed in the narrow type, wrap negative, and sign-extend.
        let mut r = StdRng::seed_from_u64(3);
        let mut seen_far_low = false;
        let mut seen_far_high = false;
        for _ in 0..2000 {
            let v = r.random_range(-2_000_000_000i32..=2_000_000_000);
            assert!((-2_000_000_000..=2_000_000_000).contains(&v));
            seen_far_low |= v < -1_000_000_000;
            seen_far_high |= v > 1_000_000_000;
            let w = r.random_range(i64::MIN..=i64::MAX);
            let _ = w; // full-domain special case must not panic
            let b = r.random_range(-120i8..120);
            assert!((-120..120).contains(&b));
        }
        assert!(seen_far_low && seen_far_high, "samples cover the range");
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }
}
