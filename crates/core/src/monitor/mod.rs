//! The **online verdict monitor**: incremental schedule indexing and
//! live Lemma 2/6 certification, one operation at a time.
//!
//! PR 2's batch tables ([`ScheduleIndex`]) answer the paper's
//! positional questions from prefix tables built once per schedule; but
//! every quantity they maintain — per-transaction position lists,
//! prefix `RS`/`WS` bitsets, last-write-per-item, reads-from — changes
//! by `O(words)` when one operation is appended. [`OnlineIndex`]
//! exploits that: it owns a *growing* [`Schedule`] and applies exactly
//! the same table update per `push` that the batch path applies per
//! schedule operation (the batch `ScheduleIndex::new` is literally a
//! replay through the shared builder, and [`OnlineIndex::index`]
//! borrows the live tables back into a `ScheduleIndex` without
//! copying).
//!
//! [`OnlineMonitor`] layers the paper's verdicts on top, maintained
//! **incrementally** after every push:
//!
//! * a **reduced conflict graph** per conjunct scope `d_e` plus one
//!   global graph, under Pearce–Kelly incremental topological ordering
//!   ([`IncrementalDag`]) — serializability and PWSR are certified (or
//!   refuted, with the first offending prefix) the moment the closing
//!   conflict edge arrives, classical SGT-style;
//! * the **delayed-read** status (Definition 5): a read records a
//!   pending dirty-read mark on its reads-from writer; the writer's
//!   next operation — the first prefix that is not DR — trips it;
//! * the **Lemma 2/6 inclusion certificates**, via two exact
//!   equivalences (proved below) that make the per-push cost `O(words)`
//!   instead of an `O(n·|τ|)` sweep.
//!
//! ## Why the inclusions can be monitored in O(words)
//!
//! Fix a conjunct scope `d`, the current prefix `S` and the maintained
//! topological order `T_1 ≺ … ≺ T_m` of the reduced conflict graph of
//! `S^d`.
//!
//! **Lemma 2.** Unfolding the view-set recurrence, the inclusion
//! `RS(before(T_i^d, p, S)) ⊆ VS(T_i, p, d, S)` fails for some `p` iff
//! there exist a read `r_i(x)` at position `r` and a write `w_j(x)` at
//! position `w` with `x ∈ d`, `r < w`, and `T_j ≺ T_i` in the order
//! (take `p` between `r` and `w`; conversely any failure yields such a
//! pair). But `r < w` puts the conflict edge `T_i → T_j` in the graph,
//! and the maintained order respects every edge — so the pair cannot
//! exist while the projection is acyclic. Hence *Lemma 2's inclusion
//! holds at every prefix position iff the projection's conflict graph
//! is acyclic*, which the incremental graph already tracks.
//!
//! **Lemma 6.** By the same unfolding, the DR-variant inclusion fails
//! for some `p` iff some read `r_i(x)`, `x ∈ d`, at position `r` has
//! its order-latest predecessor writing `x` still *unfinished* at `r`.
//! While the projection is acyclic, that predecessor is exactly the
//! reads-from writer of the read (writes of `x` are chained by `ww`
//! edges in schedule order, and writes after `r` are forced order-after
//! `T_i` by the `rw` edge) — and "unfinished at `r`" means the writer
//! emits a later operation, i.e. the dirty read *materializes*. Hence
//! *Lemma 6's inclusion holds at every prefix position iff the
//! projection is acyclic and no read of an item in `d` ever read from a
//! transaction that was still running* — the per-scope DR mark the
//! monitor already maintains.
//!
//! Both equivalences are pinned against the batch sweep
//! ([`inclusion_holds_everywhere`]) by [`OnlineMonitor::certify_prefix`]
//! and by the prefix-parity property tests in
//! `tests/monitor_props.rs` — the expensive recomputation is the
//! test oracle, not the runtime path.
//!
//! ## Beyond the single writer
//!
//! Three layers added on top of the per-push core:
//!
//! * an **undo-log** ([`OnlineMonitor::push_logged`] /
//!   [`OnlineMonitor::truncate_to`]): every logged push records the
//!   exact graph-edge and table deltas it applied, so a scheduler
//!   abort that rewrote its trace re-syncs in `O(ops undone)` instead
//!   of an `O(n)` rebuild. The delta records and the LIFO retraction
//!   contract live in the shared [`undo`] layer (see its module docs
//!   for the invariant), which the sharded monitor consumes too;
//!   [`OnlineMonitor::checkpoint`] raises the log's floor once no
//!   live transaction can force a retraction that deep, bounding the
//!   log's memory over a long run;
//! * the **Theorem 1/3 hypotheses live**
//!   ([`OnlineMonitor::guarantees`]): fixed structure is a property of
//!   the *programs* ([`ProgramTraits`], supplied once at
//!   construction), scope disjointness is checked once at
//!   construction, and `DAG(S, IC)` acyclicity rides an incremental
//!   [`OnlineAccessDag`] instead of being
//!   rebuilt from the trace;
//! * a **sharded concurrent monitor** ([`sharded::ShardedMonitor`]):
//!   per-conjunct shards behind their own locks with a ticketed
//!   pipeline, for certification under real OS-thread parallelism.

pub mod journal;
pub mod sharded;
pub mod undo;

use crate::constraint::IntegrityConstraint;
use crate::dag::OnlineAccessDag;
use crate::error::{CoreError, MalformedKind, Result};
use crate::graph::IncrementalDag;
use crate::ids::{ItemId, OpIndex, TxnId};
use crate::index::{PrefixTables, ScheduleIndex};
use crate::op::{Action, Operation};
use crate::schedule::Schedule;
use crate::state::ItemSet;
use crate::theorems::{Guarantee, ProgramTraits};
use crate::viewset::inclusion_holds_everywhere;
use undo::{GraphDelta, PushDelta, SeqDelta, UndoLog};

const ABSENT: u32 = u32::MAX;

/// A growing [`Schedule`] plus the PR-2 positional/prefix tables,
/// maintained in `O(words)` per appended operation.
///
/// `push` enforces the §2.2 per-transaction rules (read/write each item
/// at most once, no read-after-write) from the live prefix bitsets, so
/// the owned schedule is valid at every moment; [`OnlineIndex::index`]
/// exposes the full [`ScheduleIndex`] query surface over the current
/// prefix with zero copying.
#[derive(Clone, Debug, Default)]
pub struct OnlineIndex {
    schedule: Schedule,
    tables: PrefixTables,
}

impl OnlineIndex {
    /// An empty index.
    pub fn new() -> OnlineIndex {
        OnlineIndex::default()
    }

    /// Append one operation, updating every table in `O(words)`.
    ///
    /// Errors (leaving the index untouched) if the operation violates
    /// its transaction's §2.2 well-formedness within the prefix.
    pub fn push(&mut self, op: Operation) -> Result<OpIndex> {
        let p = OpIndex(self.schedule.len());
        let slot = match self.schedule.txn_slot(op.txn) {
            Some(s) => {
                let rs = self.tables.rs_prefix[s].last().expect("entry 0 exists");
                let ws = self.tables.ws_prefix[s].last().expect("entry 0 exists");
                validate_22(rs, ws, &op)?;
                s
            }
            None => self.schedule.txn_ids().len(),
        };
        self.tables.push(slot, &op);
        self.schedule.push_op_unchecked(op);
        Ok(p)
    }

    /// Number of operations pushed so far.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The current prefix as a schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The batch query surface over the live tables — a thin freeze of
    /// the incremental construction, no copying.
    pub fn index(&self) -> ScheduleIndex<'_> {
        ScheduleIndex::borrowed(&self.schedule, &self.tables)
    }

    /// The §3.2 reads-from source of position `p`, `O(1)`. `p` must be
    /// at or above the compaction base; the *result* may fall below it
    /// (a read whose writer was summarized).
    pub fn reads_from(&self, p: OpIndex) -> Option<OpIndex> {
        self.tables.reads_from[p.0 - self.tables.base].map(|q| OpIndex(q as usize))
    }

    /// Committed-prefix compaction: collapse the permanent prefix below
    /// `frontier` out of the schedule and every per-slot table, and
    /// return the summarized transactions (the callers' slots shift
    /// down by that count). Positions stay absolute; only storage is
    /// reclaimed.
    pub(crate) fn compact(&mut self, frontier: usize) -> Vec<TxnId> {
        let summarized = self.schedule.compact_prefix(frontier);
        self.tables.compact(summarized.len(), frontier);
        summarized
    }

    /// Surrender the accumulated schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// The latest-write position of `item` (`u32::MAX` if none) — the
    /// one table entry a push overwrites destructively, captured by
    /// the undo-log before the push.
    pub(crate) fn last_write_raw(&self, item: ItemId) -> u32 {
        self.tables.last_write_raw(item.index())
    }

    /// Retract the most recent push. The [`SeqDelta`] is the captured
    /// sequence half of that push's undo-log entry.
    pub(crate) fn pop_for_undo(&mut self, seq: &SeqDelta) {
        let p = OpIndex(self.schedule.len() - 1);
        let slot = self.schedule.slot_of_op(p);
        let op = self.schedule.op(p).clone();
        self.tables
            .pop(slot, &op, seq.prev_last_write, seq.new_slot);
        self.schedule
            .pop_op_unchecked(seq.new_slot, seq.prev_slot_last, seq.prev_item_ub);
    }
}

/// One projection's reduced conflict graph, maintained incrementally.
///
/// Mirrors the batch reduced construction (each operation conflicts
/// with the latest writer of its item and, for writes, the readers
/// since that write — same transitive closure as the full graph) on
/// top of [`IncrementalDag`]. Once a cycle appears the graph freezes:
/// conflict edges are only ever added, so the projection stays
/// non-serializable for every longer prefix.
#[derive(Clone, Debug, Default)]
struct ProjGraph {
    dag: IncrementalDag,
    /// Schedule transaction slot → projection node.
    node_of_slot: Vec<u32>,
    /// Projection node → schedule transaction slot.
    slot_of_node: Vec<u32>,
    /// Per item: the node of its latest writer.
    last_writer: Vec<u32>,
    /// Per item: reader nodes since the latest write.
    readers: Vec<Vec<u32>>,
    /// First prefix position whose projection is non-serializable.
    cyclic_at: Option<OpIndex>,
}

impl ProjGraph {
    fn grow(&mut self, slot: usize, item: usize) {
        if self.node_of_slot.len() <= slot {
            self.node_of_slot.resize(slot + 1, ABSENT);
        }
        if self.last_writer.len() <= item {
            self.last_writer.resize(item + 1, ABSENT);
            self.readers.resize_with(item + 1, Vec::new);
        }
    }

    fn node(&mut self, slot: usize) -> u32 {
        if self.node_of_slot[slot] == ABSENT {
            let n = self.dag.add_node();
            self.node_of_slot[slot] = n;
            self.slot_of_node.push(slot as u32);
        }
        self.node_of_slot[slot]
    }

    /// Conflict-edge sources the next access would add (all edges end
    /// at the accessing transaction's node).
    fn edge_sources(&self, node: u32, item: usize, is_write: bool, out: &mut Vec<u32>) {
        out.clear();
        let Some(&w) = self.last_writer.get(item) else {
            return;
        };
        if w != ABSENT && w != node {
            out.push(w);
        }
        if is_write {
            if let Some(readers) = self.readers.get(item) {
                out.extend(readers.iter().copied().filter(|&r| r != node));
            }
        }
    }

    /// Would this access keep the projection acyclic? Read-only.
    fn admits(&self, slot: Option<usize>, item: usize, is_write: bool) -> bool {
        if self.cyclic_at.is_some() {
            return false;
        }
        let node = match slot.map(|s| self.node_of_slot.get(s).copied().unwrap_or(ABSENT)) {
            // A fresh node only *receives* edges: no cycle possible.
            None | Some(ABSENT) => return true,
            Some(n) => n,
        };
        let mut sources = Vec::new();
        self.edge_sources(node, item, is_write, &mut sources);
        self.dag.admits_edges_into(&sources, node)
    }

    /// Record one access, adding its reduced conflict edges.
    fn apply(&mut self, slot: usize, item: usize, is_write: bool, p: OpIndex) {
        self.apply_inner(slot, item, is_write, p, None);
    }

    /// [`ProjGraph::apply`] recording the exact deltas applied, for
    /// LIFO retraction by [`ProjGraph::undo`].
    fn apply_logged(&mut self, slot: usize, item: usize, is_write: bool, p: OpIndex) -> GraphDelta {
        let mut delta = GraphDelta::default();
        self.apply_inner(slot, item, is_write, p, Some(&mut delta));
        delta
    }

    fn apply_inner(
        &mut self,
        slot: usize,
        item: usize,
        is_write: bool,
        p: OpIndex,
        mut log: Option<&mut GraphDelta>,
    ) {
        if self.cyclic_at.is_some() {
            return; // frozen: non-serializability is monotone
        }
        self.grow(slot, item);
        let created = self.node_of_slot[slot] == ABSENT;
        let t = self.node(slot);
        if created {
            if let Some(d) = log.as_deref_mut() {
                d.added_node = true;
            }
        }
        // Insert one conflict edge, journaling fresh insertions.
        fn insert(
            dag: &mut IncrementalDag,
            from: u32,
            to: u32,
            log: &mut Option<&mut GraphDelta>,
        ) -> bool {
            match log {
                Some(d) => {
                    if dag.has_edge(from, to) {
                        return false;
                    }
                    match dag.add_edge(from, to) {
                        Ok(()) => {
                            d.edges.push((from, to));
                            false
                        }
                        Err(_) => true,
                    }
                }
                None => dag.add_edge(from, to).is_err(),
            }
        }
        let w = self.last_writer[item];
        let mut closed = false;
        if w != ABSENT && w != t {
            closed |= insert(&mut self.dag, w, t, &mut log);
        }
        if is_write {
            let readers = std::mem::take(&mut self.readers[item]);
            for &r in &readers {
                if r != t {
                    closed |= insert(&mut self.dag, r, t, &mut log);
                }
            }
            self.last_writer[item] = t;
            if let Some(d) = log.as_deref_mut() {
                // The drained reader list and the displaced writer are
                // exactly what retraction must put back.
                d.write_undo = Some((w, readers));
            }
        } else {
            self.readers[item].push(t);
            if let Some(d) = log.as_deref_mut() {
                d.read_pushed = true;
            }
        }
        if closed {
            self.cyclic_at = Some(p);
            if let Some(d) = log {
                d.froze = true;
            }
        }
    }

    /// Retract one logged access. Sound only in LIFO (journal) order:
    /// the maintained Pearce–Kelly order then satisfies a superset of
    /// the surviving constraints, so no reordering is needed.
    fn undo(&mut self, slot: usize, item: usize, is_write: bool, delta: GraphDelta) {
        if delta.froze {
            self.cyclic_at = None;
        }
        if is_write {
            if let Some((prev_writer, readers)) = delta.write_undo {
                self.last_writer[item] = prev_writer;
                debug_assert!(self.readers[item].is_empty());
                self.readers[item] = readers;
            }
        } else if delta.read_pushed {
            let popped = self.readers[item].pop();
            debug_assert_eq!(popped, Some(self.node_of_slot[slot]));
        }
        for &(u, v) in delta.edges.iter().rev() {
            self.dag.remove_edge(u, v);
        }
        if delta.added_node {
            self.dag.remove_last_node();
            self.slot_of_node.pop();
            self.node_of_slot[slot] = ABSENT;
        }
    }

    /// Committed-prefix compaction of one projection. The `s_cut`
    /// summarized transaction slots occupy the node-id prefix (node
    /// ids follow first-access order, and every summarized access
    /// precedes every survivor access in the schedule); their nodes are
    /// dropped except the **boundary facts** — each item's last writer
    /// and readers-since-last-write — plus any node a retained undo
    /// entry references (`kept` marks those), with reachability among
    /// all kept nodes condensed exactly
    /// ([`IncrementalDag::retain_condensed`]). Kept summarized nodes
    /// lose their slot (they are pure summary — `ABSENT` in
    /// `slot_of_node`, skipped by [`ProjGraph::order`]); survivor slots
    /// shift down by `s_cut`. Returns the old→new node map
    /// (`ABSENT` = dropped) so undo entries can be renamed.
    ///
    /// Verdict parity: `admits`/`apply` consult only `last_writer`,
    /// `readers` and reachability between their nodes — all preserved
    /// exactly — and `cyclic_at` is an absolute position, so every
    /// future verdict equals the uncompacted twin's.
    fn compact(&mut self, s_cut: usize, mut kept: Vec<bool>) -> Vec<u32> {
        debug_assert_eq!(kept.len(), self.dag.len());
        // The to-be-summarized prefix: slot-less summary nodes from
        // earlier compactions (kept back then only for boundary facts
        // or undo references — re-evaluated below, so stale ones are
        // finally dropped) plus the nodes of slots `0..s_cut`.
        let b = self
            .slot_of_node
            .iter()
            .take_while(|&&s| s == ABSENT || (s as usize) < s_cut)
            .count();
        debug_assert!(self.slot_of_node[b..]
            .iter()
            .all(|&s| s != ABSENT && (s as usize) >= s_cut));
        for k in kept.iter_mut().skip(b) {
            *k = true; // survivors always stay
        }
        for &w in &self.last_writer {
            if w != ABSENT {
                kept[w as usize] = true;
            }
        }
        for rs in &self.readers {
            for &r in rs {
                kept[r as usize] = true;
            }
        }
        let map = self.dag.retain_condensed(&kept);
        let mut node_of_slot = vec![ABSENT; self.node_of_slot.len().saturating_sub(s_cut)];
        let mut slot_of_node = vec![ABSENT; self.dag.len()];
        for (old, &slot) in self.slot_of_node.iter().enumerate() {
            let new = map[old];
            if new != ABSENT && slot != ABSENT && (slot as usize) >= s_cut {
                node_of_slot[slot as usize - s_cut] = new;
                slot_of_node[new as usize] = slot - s_cut as u32;
            }
        }
        self.node_of_slot = node_of_slot;
        self.slot_of_node = slot_of_node;
        for w in &mut self.last_writer {
            if *w != ABSENT {
                *w = map[*w as usize];
            }
        }
        for rs in &mut self.readers {
            for r in rs.iter_mut() {
                *r = map[*r as usize];
            }
        }
        map
    }

    /// Structural memory estimate (heap rows, not allocator-exact).
    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dag.len() * (size_of::<u32>() * 4)
            + self.dag.edge_count() * size_of::<u32>() * 2
            + (self.node_of_slot.len() + self.slot_of_node.len() + self.last_writer.len())
                * size_of::<u32>()
            + self
                .readers
                .iter()
                .map(|r| size_of::<Vec<u32>>() + r.len() * size_of::<u32>())
                .sum::<usize>()
    }

    fn serializable(&self) -> bool {
        self.cyclic_at.is_none()
    }

    /// The maintained serialization order, `None` once cyclic.
    /// Summarized (slot-less) summary nodes are skipped: the order is
    /// over the *surviving* transactions.
    fn order(&self, txns: &[TxnId]) -> Option<Vec<TxnId>> {
        self.serializable().then(|| {
            self.dag
                .order()
                .iter()
                .filter(|&&n| self.slot_of_node[n as usize] != ABSENT)
                .map(|&n| txns[self.slot_of_node[n as usize] as usize])
                .collect()
        })
    }
}

/// The verdict ladder after a push, strongest guarantee first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictLevel {
    /// The global conflict graph is acyclic: conflict-serializable.
    Serializable,
    /// Not serializable, but PWSR **and** delayed-read — Theorem 2
    /// certifies strong correctness live.
    DrPreserving,
    /// PWSR only: every conjunct projection serializable, but no
    /// theorem hypothesis holds — anomalies are possible (Example 2).
    Pwsr,
    /// Some conjunct projection is non-serializable: not PWSR.
    Violation,
}

impl VerdictLevel {
    /// Compose the ladder from its three (monotonically worsening)
    /// components. This is the **only** composition point — shared by
    /// the single-writer verdict, the sharded verdict and the sharded
    /// lock-free floor — so the byte-parity contract between the two
    /// monitors cannot drift through a divergent re-implementation.
    pub(crate) fn compose(serializable: bool, dr: bool, pwsr: bool) -> VerdictLevel {
        if !pwsr {
            VerdictLevel::Violation
        } else if serializable {
            VerdictLevel::Serializable
        } else if dr {
            VerdictLevel::DrPreserving
        } else {
            VerdictLevel::Pwsr
        }
    }
}

/// The §2.2 admissibility of `op` against its transaction's current
/// read/write totals — the one validation both the single-writer
/// index and the sharded monitor's sequence stage apply (shared so
/// the error precedence cannot diverge between the two paths).
fn validate_22(rs: &ItemSet, ws: &ItemSet, op: &Operation) -> Result<()> {
    let reason = match op.action {
        Action::Read if rs.contains(op.item) => Some(MalformedKind::DuplicateRead),
        Action::Read if ws.contains(op.item) => Some(MalformedKind::ReadAfterWrite),
        Action::Write if ws.contains(op.item) => Some(MalformedKind::DuplicateWrite),
        _ => None,
    };
    match reason {
        Some(reason) => Err(CoreError::MalformedTransaction {
            txn: op.txn,
            reason,
            item: op.item,
        }),
        None => Ok(()),
    }
}

/// The monitor's state after a push — cheap to copy, produced by every
/// [`OnlineMonitor::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Prefix length this verdict describes.
    pub len: usize,
    /// The strongest rung of the ladder that still holds.
    pub level: VerdictLevel,
    /// Is the prefix conflict-serializable?
    pub serializable: bool,
    /// Is the prefix delayed-read (Definition 5)?
    pub dr: bool,
    /// First prefix with a non-serializable conjunct projection.
    pub first_violation: Option<OpIndex>,
    /// First prefix that is not globally serializable.
    pub first_non_serializable: Option<OpIndex>,
    /// First prefix that is not delayed-read.
    pub first_non_dr: Option<OpIndex>,
    /// Lemma 2's inclusion holds at every position, for every conjunct
    /// whose projection is serializable (see the module equivalence).
    pub lemma2_certified: bool,
    /// Lemma 6's inclusion holds at every position, for every
    /// serializable conjunct projection.
    pub lemma6_certified: bool,
}

impl Verdict {
    /// Is the prefix PWSR (Definition 2)?
    pub fn pwsr(&self) -> bool {
        self.first_violation.is_none()
    }
}

/// The transactions collapsed into the permanent prefix by
/// committed-prefix compaction, as a sorted set of disjoint id ranges
/// (`O(compactions)` resident, not `O(transactions)`).
///
/// Membership — not a watermark — decides rejection: transaction ids
/// need not arrive in order (an OCC retry can carry an id smaller than
/// an already-summarized one), so "id below the highest summarized id"
/// must not be conflated with "summarized".
#[derive(Clone, Debug, Default)]
struct SummarizedSet {
    /// Sorted, disjoint, non-adjacent inclusive ranges.
    ranges: Vec<(u32, u32)>,
}

impl SummarizedSet {
    fn contains(&self, t: TxnId) -> bool {
        let i = self.ranges.partition_point(|&(_, hi)| hi < t.0);
        self.ranges.get(i).is_some_and(|&(lo, _)| lo <= t.0)
    }

    fn insert(&mut self, t: TxnId) {
        let x = t.0;
        let i = self
            .ranges
            .partition_point(|&(_, hi)| hi < x.saturating_sub(1));
        // `i` is the first range that could absorb or follow x.
        match self.ranges.get_mut(i) {
            Some(r) if r.0 <= x && x <= r.1 => {}
            Some(r) if x > r.1 && x - r.1 == 1 => {
                r.1 = x;
                // Merge with the successor if now adjacent.
                if self
                    .ranges
                    .get(i + 1)
                    .is_some_and(|&(lo, _)| lo > x && lo - x == 1)
                {
                    self.ranges[i].1 = self.ranges[i + 1].1;
                    self.ranges.remove(i + 1);
                }
            }
            Some(r) if r.0 > x && r.0 - x == 1 => r.0 = x,
            _ => self.ranges.insert(i, (x, x)),
        }
    }

    fn resident_bytes(&self) -> usize {
        self.ranges.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// What one [`OnlineMonitor::compact`] /
/// [`sharded::ShardedMonitor::compact`] call reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// The compaction frontier after the call: every position below it
    /// is summarized (equals [`Schedule::base`] afterwards).
    pub frontier: usize,
    /// Operations collapsed out of live storage by this call.
    pub ops_reclaimed: usize,
    /// Transactions summarized by this call.
    pub txns_summarized: usize,
}

/// Live verdicts over a growing schedule: per-conjunct and global
/// conflict graphs under incremental cycle detection, delayed-read
/// tracking, and the Lemma 2/6 inclusion certificates — all updated in
/// `O(words)` amortized per [`OnlineMonitor::push`].
#[derive(Clone, Debug)]
pub struct OnlineMonitor {
    index: OnlineIndex,
    /// The conjunct data sets `d_e` (projection scopes).
    scopes: Vec<ItemSet>,
    global: ProjGraph,
    conjuncts: Vec<ProjGraph>,
    /// Per slot: items this transaction wrote that another transaction
    /// has read — its *next* operation materializes a dirty read.
    dirty_reads: Vec<ItemSet>,
    first_non_dr: Option<OpIndex>,
    /// Per conjunct: first position where an in-scope dirty read
    /// materialized (kills the Lemma 6 certificate for that scope).
    conjunct_non_dr: Vec<Option<OpIndex>>,
    first_violation: Option<OpIndex>,
    /// What is known about the generating programs (Theorem 1 input;
    /// static, supplied at construction).
    traits: ProgramTraits,
    /// Are the scopes pairwise disjoint? Every theorem requires it;
    /// checked once at construction — it never changes.
    scopes_disjoint: bool,
    /// `DAG(S, IC)` maintained live (Theorem 3's hypothesis).
    access_dag: OnlineAccessDag,
    /// Per-push retraction deltas above the log's floor, when logging
    /// (the shared [`undo`] layer; unlogged pushes raise the floor).
    log: Option<UndoLog<PushDelta>>,
    /// Transactions declared finished ([`OnlineMonitor::finish_txn`])
    /// but not yet summarized — the compaction frontier advances only
    /// over finished transactions.
    finished: std::collections::HashSet<TxnId>,
    /// Transactions collapsed into the permanent prefix: pushes for
    /// them are rejected with [`CoreError::SummarizedTransaction`].
    summarized: SummarizedSet,
    /// Compaction calls that actually advanced the frontier.
    compactions: u64,
    /// Total operations reclaimed across all compactions.
    ops_reclaimed: u64,
}

impl OnlineMonitor {
    /// A monitor over explicit projection scopes, with nothing assumed
    /// about the generating programs.
    pub fn new(scopes: Vec<ItemSet>) -> OnlineMonitor {
        OnlineMonitor::with_traits(scopes, ProgramTraits::unknown())
    }

    /// A monitor over explicit projection scopes, given what is known
    /// about the generating programs (Theorem 1's hypothesis is a
    /// property of programs, not schedules — it is prechecked here,
    /// once, rather than per push). Scope disjointness — required by
    /// every theorem — is also decided here: both inputs are static.
    pub fn with_traits(scopes: Vec<ItemSet>, traits: ProgramTraits) -> OnlineMonitor {
        let n = scopes.len();
        let scopes_disjoint = scopes
            .iter()
            .enumerate()
            .all(|(i, a)| scopes[i + 1..].iter().all(|b| a.is_disjoint(b)));
        OnlineMonitor {
            index: OnlineIndex::new(),
            scopes,
            global: ProjGraph::default(),
            conjuncts: vec![ProjGraph::default(); n],
            dirty_reads: Vec::new(),
            first_non_dr: None,
            conjunct_non_dr: vec![None; n],
            first_violation: None,
            traits,
            scopes_disjoint,
            access_dag: OnlineAccessDag::new(n),
            log: None,
            finished: std::collections::HashSet::new(),
            summarized: SummarizedSet::default(),
            compactions: 0,
            ops_reclaimed: 0,
        }
    }

    /// A monitor over the conjunct scopes of an integrity constraint —
    /// one projection per `d_e`, exactly Definition 2's decomposition.
    pub fn for_constraint(ic: &IntegrityConstraint) -> OnlineMonitor {
        OnlineMonitor::new(ic.conjuncts().iter().map(|c| c.items().clone()).collect())
    }

    /// Append one operation and return the updated verdict.
    ///
    /// Cost: the `O(words)` index update, the touched graphs' edge
    /// insertions (amortized near-constant under Pearce–Kelly), and an
    /// `O(|scopes|)` scan — no table rebuild, no schedule rescan.
    ///
    /// An unlogged push is permanent: it raises the floor below which
    /// [`OnlineMonitor::truncate_to`] can retract.
    pub fn push(&mut self, op: Operation) -> Result<Verdict> {
        let v = self.push_inner(op, false)?;
        if let Some(log) = &mut self.log {
            log.reset(self.index.len());
        }
        Ok(v)
    }

    /// [`OnlineMonitor::push`] recording an undo-log entry, so the
    /// push can later be retracted by [`OnlineMonitor::truncate_to`].
    pub fn push_logged(&mut self, op: Operation) -> Result<Verdict> {
        if self.log.is_none() {
            self.log = Some(UndoLog::new(self.index.len()));
        }
        self.push_inner(op, true)
    }

    fn push_inner(&mut self, op: Operation, logged: bool) -> Result<Verdict> {
        if self.summarized.contains(op.txn) {
            return Err(CoreError::SummarizedTransaction { txn: op.txn });
        }
        let (item, is_read) = (op.item, op.is_read());
        let existing_slot = self.index.schedule().txn_slot(op.txn);
        let mut delta = PushDelta {
            seq: SeqDelta {
                new_slot: existing_slot.is_none(),
                prev_item_ub: self.index.schedule().item_ub(),
                prev_last_write: self.index.last_write_raw(item),
                prev_slot_last: existing_slot.map_or(0, |s| {
                    *self.index.tables.positions[s]
                        .last()
                        .expect("older op exists")
                }),
            },
            ..PushDelta::default()
        };
        let p = self.index.push(op)?;
        let slot = self.index.schedule().slot_of_op(p);
        if self.dirty_reads.len() <= slot {
            self.dirty_reads.resize_with(slot + 1, ItemSet::new);
        }
        // 1. This operation proves its transaction was still running:
        //    any earlier read *from* it is now a DR violation.
        if !self.dirty_reads[slot].is_empty() {
            if self.first_non_dr.is_none() {
                self.first_non_dr = Some(p);
                delta.global.set_first_non_dr = true;
            }
            for (k, scope) in self.scopes.iter().enumerate() {
                if self.conjunct_non_dr[k].is_none() && !scope.is_disjoint(&self.dirty_reads[slot])
                {
                    self.conjunct_non_dr[k] = Some(p);
                    delta.global.conjunct_non_dr_set.push(k as u32);
                }
            }
        }
        // 2. A read leaves a pending mark on its reads-from writer; the
        //    writer's next operation (step 1, later push) trips it. A
        //    writer below the compaction base is summarized, hence
        //    finished: its mark could never trip, so skipping it keeps
        //    verdict parity with the uncompacted twin.
        if is_read {
            if let Some(w) = self.index.reads_from(p) {
                if w.0 >= self.index.schedule().base() {
                    let w_slot = self.index.schedule().slot_of_op(w);
                    if w_slot != slot && self.dirty_reads[w_slot].insert(item) {
                        delta.global.dr_mark = Some(w_slot as u32);
                    }
                }
            }
        }
        // 3. Conflict graphs: global plus every scope containing the
        //    item (this is where serializability / PWSR flip), and the
        //    live data access graph (Theorem 3's hypothesis).
        if logged {
            delta.global.graph = self.global.apply_logged(slot, item.index(), !is_read, p);
        } else {
            self.global.apply(slot, item.index(), !is_read, p);
        }
        for (k, scope) in self.scopes.iter().enumerate() {
            if scope.contains(item) {
                if logged {
                    let d = self.conjuncts[k].apply_logged(slot, item.index(), !is_read, p);
                    delta.conjuncts.push((k as u32, d));
                    let d = self.access_dag.record_logged(slot, k as u32, !is_read, p);
                    delta.dag_deltas.push((k as u32, d));
                } else {
                    self.conjuncts[k].apply(slot, item.index(), !is_read, p);
                    self.access_dag.record(slot, k as u32, !is_read, p);
                }
                if self.first_violation.is_none() && self.conjuncts[k].cyclic_at == Some(p) {
                    self.first_violation = Some(p);
                    delta.set_first_violation = true;
                }
            }
        }
        if logged {
            self.log.as_mut().expect("log enabled").record(delta);
        }
        Ok(self.verdict())
    }

    /// **Batch admission**: append one transaction's program-ordered
    /// run of operations and return the verdict after each — the
    /// single-writer twin of [`sharded::ShardedMonitor::push_batch`],
    /// with the
    /// same contract: the slice must be nonempty operations of a
    /// single transaction in program order (panics otherwise), and
    /// admission is **atomic** — the whole run is §2.2-validated
    /// up front against a copy of the transaction's live prefix
    /// bitsets, so a malformed operation anywhere in the run rejects
    /// the batch with the monitor untouched (no partial prefix is
    /// admitted). Verdicts, certificates and undo behaviour are
    /// byte-identical to pushing the operations one at a time; the
    /// batch boundary only matters to journaling callers (the
    /// scheduler's admission layer frames the run as one WAL record).
    /// An empty slice returns an empty vector.
    pub fn push_batch(&mut self, ops: &[Operation]) -> Result<Vec<Verdict>> {
        let verdicts = self.batch_inner(ops, false)?;
        if let Some(log) = &mut self.log {
            log.reset(self.index.len());
        }
        Ok(verdicts)
    }

    /// [`OnlineMonitor::push_batch`] recording one undo-log entry per
    /// operation, so batch-admitted operations retract individually
    /// through [`OnlineMonitor::truncate_to`] exactly like singleton
    /// [`OnlineMonitor::push_logged`] calls.
    pub fn push_batch_logged(&mut self, ops: &[Operation]) -> Result<Vec<Verdict>> {
        if self.log.is_none() {
            self.log = Some(UndoLog::new(self.index.len()));
        }
        self.batch_inner(ops, true)
    }

    fn batch_inner(&mut self, ops: &[Operation], logged: bool) -> Result<Vec<Verdict>> {
        let Some(first) = ops.first() else {
            return Ok(Vec::new());
        };
        let txn = first.txn;
        assert!(
            ops.iter().all(|o| o.txn == txn),
            "push_batch requires a single-transaction batch (the program-order unit)"
        );
        if self.summarized.contains(txn) {
            return Err(CoreError::SummarizedTransaction { txn });
        }
        // Pre-validate the whole run on simulated bitsets so the
        // per-op loop below cannot fail midway.
        let (mut rs, mut ws) = match self.index.schedule().txn_slot(txn) {
            Some(s) => (
                self.index.tables.rs_prefix[s]
                    .last()
                    .expect("entry 0 exists")
                    .clone(),
                self.index.tables.ws_prefix[s]
                    .last()
                    .expect("entry 0 exists")
                    .clone(),
            ),
            None => (ItemSet::new(), ItemSet::new()),
        };
        for op in ops {
            validate_22(&rs, &ws, op)?;
            if op.is_write() {
                ws.insert(op.item);
            } else {
                rs.insert(op.item);
            }
        }
        let mut verdicts = Vec::with_capacity(ops.len());
        for op in ops {
            verdicts.push(
                self.push_inner(op.clone(), logged)
                    .expect("batch pre-validated"),
            );
        }
        Ok(verdicts)
    }

    /// Retract logged pushes until the prefix is `n` operations long,
    /// in `O(ops undone)` — the undo-log alternative to rebuilding
    /// after a scheduler abort rewrote the trace. Returns the number
    /// of operations undone.
    ///
    /// Panics if `n` exceeds the current length or undercuts the
    /// logged floor (unlogged pushes are permanent).
    pub fn truncate_to(&mut self, n: usize) -> usize {
        assert!(
            n <= self.index.len(),
            "truncate_to({n}) beyond length {}",
            self.index.len()
        );
        assert!(
            n >= self.log_floor(),
            "truncate_to({n}) undercuts the undo-log floor {}",
            self.log_floor()
        );
        let undone = self.index.len() - n;
        for _ in 0..undone {
            let delta = self
                .log
                .as_mut()
                .expect("logged pushes exist above the floor")
                .pop()
                .expect("one log entry per logged push");
            let p = OpIndex(self.index.len() - 1);
            let slot = self.index.schedule().slot_of_op(p);
            let op = self.index.schedule().op(p).clone();
            let (item, is_write) = (op.item, op.is_write());
            // Reverse application order: graphs first, then tables.
            for (k, d) in delta.dag_deltas.into_iter().rev() {
                self.access_dag.undo(slot, k, is_write, &d);
            }
            for (k, d) in delta.conjuncts.into_iter().rev() {
                self.conjuncts[k as usize].undo(slot, item.index(), is_write, d);
            }
            self.global
                .undo(slot, item.index(), is_write, delta.global.graph);
            if delta.set_first_violation {
                self.first_violation = None;
            }
            for k in delta.global.conjunct_non_dr_set {
                self.conjunct_non_dr[k as usize] = None;
            }
            if delta.global.set_first_non_dr {
                self.first_non_dr = None;
            }
            if let Some(w_slot) = delta.global.dr_mark {
                self.dirty_reads[w_slot as usize].remove(item);
            }
            self.index.pop_for_undo(&delta.seq);
            if delta.seq.new_slot {
                self.dirty_reads
                    .truncate(self.index.schedule().txn_ids().len());
            }
        }
        undone
    }

    /// Operations retractable by [`OnlineMonitor::truncate_to`]
    /// (equivalently, undo-log entries held: `len() - log_floor()`).
    pub fn logged_len(&self) -> usize {
        self.log.as_ref().map_or(0, UndoLog::len)
    }

    /// The undo-log floor: the prefix length below which pushes are
    /// permanent (equals [`OnlineMonitor::len`] when nothing is
    /// logged).
    pub fn log_floor(&self) -> usize {
        self.log.as_ref().map_or(self.index.len(), UndoLog::base)
    }

    /// Raise the undo-log floor to `floor` (clamped to the currently
    /// logged range), making the pushes below it permanent and
    /// reclaiming their delta memory — the long-run memory bound for
    /// admission logs: once every transaction that started before
    /// `floor` has settled, nothing can force a retraction below it.
    /// Returns the new floor.
    pub fn checkpoint(&mut self, floor: usize) -> usize {
        match &mut self.log {
            Some(log) => log.checkpoint(floor),
            None => self.index.len(),
        }
    }

    /// Declare `txn` finished: it will issue no further operations.
    /// Committed-prefix compaction ([`OnlineMonitor::compact`]) only
    /// advances over finished transactions. Advisory until the
    /// transaction is summarized — a later push for it is still
    /// accepted and simply holds the frontier back.
    pub fn finish_txn(&mut self, txn: TxnId) {
        if self.index.schedule().txn_slot(txn).is_some() {
            self.finished.insert(txn);
        }
    }

    /// The **compaction frontier**: the longest prefix in which every
    /// operation belongs to a finished transaction whose *last*
    /// operation also lies in that prefix, clamped to the undo-log
    /// floor (a compacted push must already be permanent — this is the
    /// frontier-safety condition shared with checkpointing and WAL
    /// truncation).
    pub fn compaction_frontier(&self) -> usize {
        let s = self.index.schedule();
        let limit = self.log_floor();
        let mut hi = s.base();
        let mut frontier = s.base();
        for p in s.base()..limit {
            let slot = s.slot_of_op(OpIndex(p));
            if !self.finished.contains(&s.txn_ids()[slot]) {
                break;
            }
            let last = s.slot_last_raw(slot) as usize;
            if last >= limit {
                break;
            }
            hi = hi.max(last + 1);
            if p + 1 == hi {
                frontier = p + 1;
            }
        }
        frontier
    }

    /// **Committed-prefix compaction**: collapse the prefix below
    /// [`OnlineMonitor::compaction_frontier`] into a summary —
    /// per-item last-writer/last-reader boundary facts plus the
    /// condensed reachability of each conflict graph — reclaiming
    /// schedule segments, prefix-table rows, graph nodes, Pearce–Kelly
    /// order slots and delayed-read rows.
    ///
    /// Every verdict, certificate and admission decision after the
    /// call is byte-identical to an uncompacted twin's (pinned by the
    /// twin harness in `crates/core/tests/monitor_props.rs`); pushes
    /// for summarized transactions are rejected with
    /// [`CoreError::SummarizedTransaction`], and
    /// [`OnlineMonitor::truncate_to`] below the frontier keeps
    /// panicking — the frontier never exceeds the undo-log floor.
    pub fn compact(&mut self) -> CompactStats {
        let frontier = self.compaction_frontier();
        let base = self.index.schedule().base();
        if frontier <= base {
            return CompactStats {
                frontier: base,
                ops_reclaimed: 0,
                txns_summarized: 0,
            };
        }
        // Nodes a retained undo entry references must survive the
        // condensation: the entry has to stay replayable in LIFO order.
        let mut kept_global = vec![false; self.global.dag.len()];
        let mut kept_conj: Vec<Vec<bool>> = self
            .conjuncts
            .iter()
            .map(|g| vec![false; g.dag.len()])
            .collect();
        if let Some(log) = &self.log {
            for delta in log.iter() {
                delta.global.mark_nodes(&mut kept_global);
                for (k, d) in &delta.conjuncts {
                    d.mark_nodes(&mut kept_conj[*k as usize]);
                }
            }
        }
        let summarized = self.index.compact(frontier);
        let s_cut = summarized.len();
        let gmap = self.global.compact(s_cut, kept_global);
        let cmaps: Vec<Vec<u32>> = self
            .conjuncts
            .iter_mut()
            .zip(kept_conj)
            .map(|(g, kept)| g.compact(s_cut, kept))
            .collect();
        // Rename the node ids retained undo entries reference.
        if let Some(log) = &mut self.log {
            for delta in log.iter_mut() {
                delta.global.remap(&gmap, s_cut as u32);
                for (k, d) in &mut delta.conjuncts {
                    d.remap_nodes(&cmaps[*k as usize]);
                }
            }
        }
        self.dirty_reads.drain(..s_cut.min(self.dirty_reads.len()));
        self.access_dag.compact_entities(s_cut);
        for t in &summarized {
            self.finished.remove(t);
            self.summarized.insert(*t);
        }
        self.compactions += 1;
        self.ops_reclaimed += (frontier - base) as u64;
        CompactStats {
            frontier,
            ops_reclaimed: frontier - base,
            txns_summarized: s_cut,
        }
    }

    /// Compaction calls that actually advanced the frontier.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total operations reclaimed across all compactions.
    pub fn ops_reclaimed(&self) -> u64 {
        self.ops_reclaimed
    }

    /// Was `txn` summarized into the permanent prefix?
    pub fn is_summarized(&self, txn: TxnId) -> bool {
        self.summarized.contains(txn)
    }

    /// A structural estimate of the monitor's resident heap, in bytes:
    /// rows × element sizes across the schedule, prefix tables, graphs,
    /// delayed-read rows and undo log. Not allocator-exact — its job is
    /// to make the compaction plateau measurable (the `compact`
    /// experiment) without an allocator hook.
    pub fn resident_bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        let s = self.index.schedule();
        let itemset = |set: &ItemSet| size_of::<ItemSet>() + set.len().div_ceil(8);
        let mut total = std::mem::size_of_val(s.ops())
            + s.txn_ids().len() * (size_of::<TxnId>() + size_of::<u32>() + 2 * size_of::<usize>());
        let t = &self.index.tables;
        total += t.reads_from.len() * size_of::<Option<u32>>();
        total += t
            .positions
            .iter()
            .map(|p| size_of::<Vec<u32>>() + p.len() * size_of::<u32>())
            .sum::<usize>();
        total += t
            .rs_prefix
            .iter()
            .chain(&t.ws_prefix)
            .map(|rows| size_of::<Vec<ItemSet>>() + rows.iter().map(itemset).sum::<usize>())
            .sum::<usize>();
        total += self.global.resident_bytes();
        total += self
            .conjuncts
            .iter()
            .map(ProjGraph::resident_bytes)
            .sum::<usize>();
        total += self.dirty_reads.iter().map(itemset).sum::<usize>();
        total += self.logged_len() * size_of::<PushDelta>();
        total += self.summarized.resident_bytes();
        total
    }

    /// Would admitting this access keep `level`? Read-only — the
    /// speculative test behind `MonitorAdmission` in the scheduler.
    /// A summarized transaction is never admitted: its push would be
    /// rejected ([`CoreError::SummarizedTransaction`]) regardless of
    /// what the graphs say.
    pub fn admits(&self, txn: TxnId, item: ItemId, is_write: bool, level: AdmissionLevel) -> bool {
        if self.summarized.contains(txn) {
            return false;
        }
        let slot = self.index.schedule().txn_slot(txn);
        match level {
            AdmissionLevel::Serializable => self.admits_graph_global(slot, item.index(), is_write),
            AdmissionLevel::Pwsr => self.admits_conjuncts(slot, item, is_write),
            AdmissionLevel::PwsrDr => {
                // Any operation of a dirtily-read transaction
                // materializes the DR violation.
                let clean = slot
                    .and_then(|s| self.dirty_reads.get(s))
                    .is_none_or(ItemSet::is_empty);
                clean && self.admits_conjuncts(slot, item, is_write)
            }
        }
    }

    fn admits_graph_global(&self, slot: Option<usize>, item: usize, is_write: bool) -> bool {
        self.global.admits(slot, item, is_write)
    }

    fn admits_conjuncts(&self, slot: Option<usize>, item: ItemId, is_write: bool) -> bool {
        self.scopes
            .iter()
            .zip(&self.conjuncts)
            .filter(|(scope, _)| scope.contains(item))
            .all(|(_, g)| g.admits(slot, item.index(), is_write))
    }

    /// The current verdict (what the last `push` returned).
    pub fn verdict(&self) -> Verdict {
        let serializable = self.global.serializable();
        let pwsr = self.first_violation.is_none();
        let dr = self.first_non_dr.is_none();
        let level = VerdictLevel::compose(serializable, dr, pwsr);
        Verdict {
            len: self.index.len(),
            level,
            serializable,
            dr,
            first_violation: self.first_violation,
            first_non_serializable: self.global.cyclic_at,
            first_non_dr: self.first_non_dr,
            lemma2_certified: pwsr,
            lemma6_certified: pwsr && self.conjunct_non_dr.iter().all(Option::is_none),
        }
    }

    /// The underlying growing index (schedule + query tables).
    pub fn online_index(&self) -> &OnlineIndex {
        &self.index
    }

    /// The current prefix.
    pub fn schedule(&self) -> &Schedule {
        self.index.schedule()
    }

    /// Number of operations pushed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Has nothing been pushed yet?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The projection scopes.
    pub fn scopes(&self) -> &[ItemSet] {
        &self.scopes
    }

    /// The maintained serialization order of conjunct `k`'s projection
    /// (a topological order of its reduced conflict graph), or `None`
    /// once the projection is non-serializable.
    pub fn conjunct_order(&self, k: usize) -> Option<Vec<TxnId>> {
        self.conjuncts[k].order(self.index.schedule().txn_ids())
    }

    /// The maintained global serialization order, or `None`.
    pub fn serialization_order(&self) -> Option<Vec<TxnId>> {
        self.global.order(self.index.schedule().txn_ids())
    }

    /// Does the Lemma 2 certificate hold for conjunct `k`?
    pub fn lemma2_holds(&self, k: usize) -> bool {
        self.conjuncts[k].serializable()
    }

    /// Does the Lemma 6 certificate hold for conjunct `k`?
    pub fn lemma6_holds(&self, k: usize) -> bool {
        self.conjuncts[k].serializable() && self.conjunct_non_dr[k].is_none()
    }

    /// First position whose projection on conjunct `k` is cyclic.
    pub fn conjunct_first_cycle(&self, k: usize) -> Option<OpIndex> {
        self.conjuncts[k].cyclic_at
    }

    /// Re-derive every certificate with the batch machinery and compare
    /// against the incremental flags: for each serializable conjunct,
    /// the full `inclusion_holds_everywhere` sweep (Lemma 2, and
    /// Lemma 6) must agree with [`OnlineMonitor::lemma2_holds`] /
    /// [`OnlineMonitor::lemma6_holds`]. `O(n·|τ|)` — the audit path,
    /// not the per-push path.
    pub fn certify_prefix(&self) -> bool {
        let s = self.index.schedule();
        for (k, d) in self.scopes.iter().enumerate() {
            let Some(order) = self.conjunct_order(k) else {
                continue; // Lemma preconditions need a serialization order.
            };
            if inclusion_holds_everywhere(s, d, &order, false) != self.lemma2_holds(k) {
                return false;
            }
            if inclusion_holds_everywhere(s, d, &order, true) != self.lemma6_holds(k) {
                return false;
            }
        }
        true
    }

    /// What is known about the generating programs (Theorem 1 input).
    pub fn program_traits(&self) -> ProgramTraits {
        self.traits
    }

    /// Are the projection scopes pairwise disjoint? Required by every
    /// theorem (Example 5); decided once at construction.
    pub fn scopes_disjoint(&self) -> bool {
        self.scopes_disjoint
    }

    /// Is the live `DAG(S, IC)` still acyclic (Theorem 3's
    /// hypothesis)? Maintained incrementally per push — no trace
    /// rebuild.
    pub fn dag_acyclic(&self) -> bool {
        self.access_dag.is_acyclic()
    }

    /// First position whose access closed a `DAG(S, IC)` cycle.
    pub fn first_dag_cycle(&self) -> Option<OpIndex> {
        self.access_dag.first_cycle()
    }

    /// The theorems whose hypotheses hold **live** on the current
    /// prefix — the incremental counterpart of
    /// [`classify`](crate::theorems::classify): Theorem 1 from the
    /// static program traits, Theorem 2 from the maintained
    /// delayed-read flag, Theorem 3 from the live access DAG; all
    /// void unless the prefix is PWSR over disjoint scopes.
    pub fn guarantees(&self) -> Vec<Guarantee> {
        let mut out = Vec::new();
        if self.scopes_disjoint && self.first_violation.is_none() {
            if self.traits.all_fixed_structure == Some(true) {
                out.push(Guarantee::Theorem1FixedStructure);
            }
            if self.first_non_dr.is_none() {
                out.push(Guarantee::Theorem2DelayedRead);
            }
            if self.access_dag.is_acyclic() {
                out.push(Guarantee::Theorem3AcyclicDag);
            }
        }
        out
    }

    /// Does some theorem certify strong correctness of the current
    /// prefix, live?
    pub fn strongly_correct_guaranteed(&self) -> bool {
        !self.guarantees().is_empty()
    }
}

/// What a `MonitorAdmission` policy protects: the verdict floor an
/// admitted operation must preserve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionLevel {
    /// Keep the global conflict graph acyclic (classical SGT).
    Serializable,
    /// Keep every conjunct projection acyclic (Definition 2 live).
    Pwsr,
    /// PWSR **and** delayed-read — the Theorem 2 hypothesis, enforced
    /// per operation.
    PwsrDr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::is_delayed_read;
    use crate::ids::ItemId;
    use crate::serializability::{is_conflict_serializable, is_conflict_serializable_proj};
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    /// Example 2's scopes: d1 = {a, b}, d2 = {c}.
    fn example2_scopes() -> Vec<ItemSet> {
        vec![
            ItemSet::from_iter([ItemId(0), ItemId(1)]),
            ItemSet::from_iter([ItemId(2)]),
        ]
    }

    /// Example 2's schedule: PWSR, not serializable, not DR.
    fn example2_ops() -> Vec<Operation> {
        vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ]
    }

    #[test]
    fn online_index_matches_batch_index() {
        let ops = example2_ops();
        let mut online = OnlineIndex::new();
        for (k, op) in ops.iter().enumerate() {
            assert_eq!(online.push(op.clone()).unwrap(), OpIndex(k));
            let prefix = Schedule::new(ops[..=k].to_vec()).unwrap();
            let batch = ScheduleIndex::new(&prefix);
            let live = online.index();
            assert_eq!(online.schedule(), &prefix);
            for &t in prefix.txn_ids() {
                for p in prefix.positions() {
                    assert_eq!(live.read_set_before(t, p), batch.read_set_before(t, p));
                    assert_eq!(live.write_set_before(t, p), batch.write_set_before(t, p));
                    assert_eq!(live.txn_finished_by(t, p), batch.txn_finished_by(t, p));
                }
            }
            for p in prefix.positions() {
                assert_eq!(live.reads_from(p), batch.reads_from(p));
            }
        }
    }

    #[test]
    fn online_index_rejects_malformed_transactions() {
        let mut ix = OnlineIndex::new();
        ix.push(rd(1, 0, 0)).unwrap();
        ix.push(wr(1, 1, 1)).unwrap();
        assert!(ix.push(rd(1, 0, 0)).is_err(), "duplicate read");
        assert!(ix.push(rd(1, 1, 1)).is_err(), "read after write");
        assert!(ix.push(wr(1, 1, 2)).is_err(), "duplicate write");
        // Nothing was appended by the failed pushes.
        assert_eq!(ix.len(), 2);
        ix.push(rd(2, 0, 0)).unwrap();
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn example2_monitored_live() {
        let mut m = OnlineMonitor::new(example2_scopes());
        let mut last = None;
        for op in example2_ops() {
            last = Some(m.push(op).unwrap());
        }
        let v = last.unwrap();
        // PWSR but not serializable and not DR — no guarantee rung.
        assert_eq!(v.level, VerdictLevel::Pwsr);
        assert!(v.pwsr() && !v.serializable && !v.dr);
        // The global cycle closes at r1(c, −1): position 4. That same
        // operation is the first to prove T1 was still running when T2
        // read its write of a, so position 4 is also the first non-DR
        // prefix (every shorter prefix ends with T1 "finished").
        assert_eq!(v.first_non_serializable, Some(OpIndex(4)));
        assert_eq!(v.first_non_dr, Some(OpIndex(4)));
        assert!(v.lemma2_certified);
        assert!(!v.lemma6_certified, "the in-scope dirty read kills Lemma 6");
        assert!(m.certify_prefix());
    }

    #[test]
    fn serial_prefixes_stay_serializable_and_dr() {
        let mut m = OnlineMonitor::new(example2_scopes());
        for op in [wr(1, 0, 1), rd(1, 2, 1), rd(2, 0, 1), wr(2, 2, 2)] {
            let v = m.push(op).unwrap();
            assert_eq!(v.level, VerdictLevel::Serializable);
            assert!(v.dr && v.lemma2_certified && v.lemma6_certified);
        }
        assert!(m.certify_prefix());
        assert_eq!(m.serialization_order(), Some(vec![TxnId(1), TxnId(2)]));
    }

    #[test]
    fn non_pwsr_flagged_at_the_closing_operation() {
        // w1(a), r2(a), w2(b), r1(b): a cycle inside conjunct {a, b}.
        let ops = [wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)];
        let mut m = OnlineMonitor::new(example2_scopes());
        for (k, op) in ops.iter().enumerate() {
            let v = m.push(op.clone()).unwrap();
            if k < 3 {
                assert!(v.pwsr(), "prefix of {} ops is still PWSR", k + 1);
            } else {
                assert_eq!(v.level, VerdictLevel::Violation);
                assert_eq!(v.first_violation, Some(OpIndex(3)));
            }
        }
        assert_eq!(m.conjunct_first_cycle(0), Some(OpIndex(3)));
        assert!(m.conjunct_order(0).is_none());
        assert!(m.conjunct_order(1).is_some());
    }

    #[test]
    fn verdict_matches_batch_checkers_at_every_prefix() {
        let scopes = example2_scopes();
        for ops in [
            example2_ops(),
            vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)],
            vec![
                wr(1, 1, 1),
                wr(2, 1, 2),
                rd(2, 0, 0),
                rd(3, 1, 2),
                rd(1, 0, 0),
            ],
        ] {
            let mut m = OnlineMonitor::new(scopes.clone());
            for k in 0..ops.len() {
                let v = m.push(ops[k].clone()).unwrap();
                let prefix = Schedule::new(ops[..=k].to_vec()).unwrap();
                assert_eq!(v.serializable, is_conflict_serializable(&prefix));
                assert_eq!(v.dr, is_delayed_read(&prefix));
                assert_eq!(
                    v.pwsr(),
                    scopes
                        .iter()
                        .all(|d| is_conflict_serializable_proj(&prefix, d))
                );
                assert!(m.certify_prefix());
            }
        }
    }

    #[test]
    fn admission_rejects_exactly_the_offending_op() {
        // The canonical non-PWSR interleaving: the cycle in {a, b}
        // closes at r1(b) — admission at level Pwsr must reject it and
        // nothing before it.
        let ops = [wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)];
        let mut m = OnlineMonitor::new(example2_scopes());
        for (k, op) in ops.iter().enumerate() {
            let ok = m.admits(op.txn, op.item, op.is_write(), AdmissionLevel::Pwsr);
            if k < 3 {
                assert!(ok, "op {k} must be admitted");
                m.push(op.clone()).unwrap();
            } else {
                assert!(!ok, "the cycle-closing read must be rejected");
            }
        }
        assert_eq!(m.len(), 3);
        assert!(m.verdict().pwsr());
    }

    #[test]
    fn dr_admission_rejects_the_materializing_op() {
        // w1(a), r2(a): T2 read T1's write. T1's next operation would
        // materialize the dirty read; level PwsrDr rejects it while
        // plain Pwsr admits it.
        let mut m = OnlineMonitor::new(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(rd(2, 0, 1)).unwrap();
        assert!(!m.admits(TxnId(1), ItemId(2), false, AdmissionLevel::PwsrDr));
        assert!(m.admits(TxnId(1), ItemId(2), false, AdmissionLevel::Pwsr));
        // A third transaction is unaffected.
        assert!(m.admits(TxnId(3), ItemId(2), true, AdmissionLevel::PwsrDr));
    }

    #[test]
    fn serializable_admission_is_stricter_than_pwsr() {
        // Example 2's last op closes the *global* cycle but no
        // conjunct cycle: Serializable rejects it, Pwsr admits it.
        let ops = example2_ops();
        let mut m = OnlineMonitor::new(example2_scopes());
        for op in &ops[..4] {
            assert!(m.admits(op.txn, op.item, op.is_write(), AdmissionLevel::Serializable));
            m.push(op.clone()).unwrap();
        }
        let last = &ops[4];
        assert!(!m.admits(
            last.txn,
            last.item,
            last.is_write(),
            AdmissionLevel::Serializable
        ));
        assert!(m.admits(last.txn, last.item, last.is_write(), AdmissionLevel::Pwsr));
    }

    #[test]
    fn empty_monitor_is_trivially_serializable() {
        let m = OnlineMonitor::new(example2_scopes());
        let v = m.verdict();
        assert_eq!(v.level, VerdictLevel::Serializable);
        assert!(v.dr && v.lemma2_certified && v.lemma6_certified);
        assert!(m.is_empty());
        assert!(m.certify_prefix());
    }

    /// Push every op logged, truncate back to every length, and check
    /// the monitor equals a fresh replay of the shortened prefix —
    /// verdict, certificates, admission behaviour and audit.
    #[test]
    fn truncate_to_equals_fresh_replay() {
        let runs = [
            example2_ops(),
            vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)],
            vec![
                wr(1, 1, 1),
                wr(2, 1, 2),
                rd(2, 0, 0),
                rd(3, 1, 2),
                rd(1, 0, 0),
            ],
        ];
        for ops in runs {
            for cut in 0..=ops.len() {
                let mut m = OnlineMonitor::new(example2_scopes());
                for op in &ops {
                    m.push_logged(op.clone()).unwrap();
                }
                assert_eq!(m.logged_len(), ops.len());
                assert_eq!(m.truncate_to(cut), ops.len() - cut);
                let mut fresh = OnlineMonitor::new(example2_scopes());
                for op in &ops[..cut] {
                    fresh.push(op.clone()).unwrap();
                }
                assert_eq!(m.verdict(), fresh.verdict(), "cut {cut}");
                assert_eq!(m.schedule(), fresh.schedule());
                assert_eq!(m.guarantees(), fresh.guarantees());
                assert!(m.certify_prefix());
                // The truncated monitor keeps working: admission and
                // further pushes agree with the fresh monitor.
                for op in &ops[cut..] {
                    assert_eq!(
                        m.admits(op.txn, op.item, op.is_write(), AdmissionLevel::Pwsr),
                        fresh.admits(op.txn, op.item, op.is_write(), AdmissionLevel::Pwsr)
                    );
                    assert_eq!(
                        m.push_logged(op.clone()).unwrap(),
                        fresh.push(op.clone()).unwrap()
                    );
                }
                assert_eq!(m.verdict(), fresh.verdict());
            }
        }
    }

    #[test]
    fn unlogged_pushes_raise_the_undo_floor() {
        let mut m = OnlineMonitor::new(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap(); // permanent
        m.push_logged(rd(2, 0, 1)).unwrap();
        m.push_logged(rd(2, 1, -1)).unwrap();
        assert_eq!(m.logged_len(), 2);
        assert_eq!(m.truncate_to(1), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "undercuts the undo-log floor")]
    fn truncate_below_floor_panics() {
        let mut m = OnlineMonitor::new(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push_logged(rd(2, 0, 1)).unwrap();
        m.truncate_to(0);
    }

    /// The live Theorem 1/2/3 hypotheses equal the batch classifier at
    /// every prefix, for each program-trait assumption.
    #[test]
    fn live_guarantees_match_batch_classify() {
        use crate::theorems::classify;
        let ic = {
            use crate::constraint::{Conjunct, Formula, Term};
            IntegrityConstraint::new(vec![
                Conjunct::new(
                    0,
                    Formula::implies(
                        Formula::gt(Term::var(ItemId(0)), Term::int(0)),
                        Formula::gt(Term::var(ItemId(1)), Term::int(0)),
                    ),
                ),
                Conjunct::new(1, Formula::gt(Term::var(ItemId(2)), Term::int(0))),
            ])
            .unwrap()
        };
        let runs = [
            example2_ops(),                                           // cyclic DAG, non-DR
            vec![rd(1, 0, 1), wr(1, 2, 1), rd(2, 1, 1), wr(2, 2, 2)], // acyclic DAG
            vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)], // non-PWSR
        ];
        for traits in [
            ProgramTraits::unknown(),
            ProgramTraits::fixed_structure(),
            ProgramTraits::not_fixed_structure(),
        ] {
            for ops in &runs {
                let scopes: Vec<ItemSet> =
                    ic.conjuncts().iter().map(|c| c.items().clone()).collect();
                let mut m = OnlineMonitor::with_traits(scopes, traits);
                assert!(m.scopes_disjoint());
                for k in 0..ops.len() {
                    m.push(ops[k].clone()).unwrap();
                    let prefix = Schedule::new(ops[..=k].to_vec()).unwrap();
                    let batch = classify(&prefix, &ic, traits);
                    assert_eq!(
                        m.dag_acyclic(),
                        batch.dag.is_acyclic(),
                        "DAG acyclicity diverged at prefix {k}"
                    );
                    assert_eq!(
                        m.guarantees(),
                        batch.guarantees,
                        "guarantees diverged at prefix {k}"
                    );
                    assert_eq!(
                        m.strongly_correct_guaranteed(),
                        batch.strongly_correct_guaranteed()
                    );
                }
            }
        }
    }

    #[test]
    fn compaction_preserves_verdicts_and_rejects_summarized() {
        // Two transactions finish, the prefix compacts, two more run:
        // every verdict must equal an uncompacted twin's, and pushes
        // for summarized transactions must be rejected.
        let ops1 = [wr(1, 0, 1), rd(2, 0, 1), wr(2, 2, 5), rd(1, 2, 5)];
        let ops2 = [wr(3, 1, 7), rd(4, 1, 7), wr(4, 2, 8), rd(3, 2, 8)];
        let mut m = OnlineMonitor::new(example2_scopes());
        let mut twin = OnlineMonitor::new(example2_scopes());
        for op in &ops1 {
            assert_eq!(m.push(op.clone()).unwrap(), twin.push(op.clone()).unwrap());
        }
        m.finish_txn(TxnId(1));
        m.finish_txn(TxnId(2));
        assert_eq!(m.compaction_frontier(), 4);
        let stats = m.compact();
        assert_eq!(
            (stats.frontier, stats.ops_reclaimed, stats.txns_summarized),
            (4, 4, 2)
        );
        assert_eq!(m.schedule().base(), 4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.verdict(), twin.verdict());
        assert!(m.is_summarized(TxnId(1)) && m.is_summarized(TxnId(2)));
        let err = m.push(wr(1, 0, 9)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::SummarizedTransaction { txn: TxnId(1) }
        ));
        assert!(err.to_string().contains("summarized"), "{err}");
        assert!(m.resident_bytes_estimate() < twin.resident_bytes_estimate());
        for op in &ops2 {
            assert_eq!(
                m.push(op.clone()).unwrap(),
                twin.push(op.clone()).unwrap(),
                "post-compaction push diverged"
            );
            assert_eq!(m.guarantees(), twin.guarantees());
        }
        // A second compaction over the survivors also matches.
        m.finish_txn(TxnId(3));
        m.finish_txn(TxnId(4));
        assert_eq!(m.compact().frontier, 8);
        assert_eq!(m.verdict(), twin.verdict());
        assert_eq!(m.compactions(), 2);
        assert_eq!(m.ops_reclaimed(), 8);
    }

    #[test]
    fn compaction_frontier_respects_unfinished_and_floor() {
        let mut m = OnlineMonitor::new(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(rd(2, 0, 1)).unwrap();
        // T2 unfinished: the frontier cannot pass its first op.
        m.finish_txn(TxnId(1));
        assert_eq!(m.compaction_frontier(), 1);
        // Logged pushes above the undo floor clamp the frontier too.
        let mut l = OnlineMonitor::new(example2_scopes());
        l.push_logged(wr(1, 0, 1)).unwrap();
        l.finish_txn(TxnId(1));
        assert_eq!(l.compaction_frontier(), 0, "above the undo floor");
        l.checkpoint(1);
        assert_eq!(l.compaction_frontier(), 1);
        assert_eq!(l.compact().ops_reclaimed, 1);
    }

    #[test]
    fn overlapping_scopes_void_every_guarantee() {
        // Example 5's lesson, live: non-disjoint scopes yield no
        // guarantee regardless of the other hypotheses.
        let scopes = vec![
            ItemSet::from_iter([ItemId(0), ItemId(1)]),
            ItemSet::from_iter([ItemId(1), ItemId(2)]),
        ];
        let mut m = OnlineMonitor::with_traits(scopes, ProgramTraits::fixed_structure());
        assert!(!m.scopes_disjoint());
        m.push(rd(1, 0, 10)).unwrap();
        m.push(wr(1, 1, 0)).unwrap();
        let v = m.verdict();
        assert!(v.pwsr() && v.dr && m.dag_acyclic());
        assert!(m.guarantees().is_empty());
        assert!(!m.strongly_correct_guaranteed());
    }
}
