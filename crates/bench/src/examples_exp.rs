//! EX-1 … EX-5: replay every example in the paper and check each claim.
//!
//! Each function returns `(all_claims_hold, report_text)`; the binary
//! prints the text, `EXPERIMENTS.md` records the outcome, and the
//! integration tests assert the boolean.

use crate::report::Table;
use pwsr_core::dag::data_access_graph;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::ids::TxnId;
use pwsr_core::pwsr::is_pwsr;
use pwsr_core::serializability::{all_serialization_orders, is_conflict_serializable};
use pwsr_core::solver::Solver;
use pwsr_core::state::ItemSet;
use pwsr_core::strong::check_strong_correctness;
use pwsr_core::txstate::transaction_states;
use pwsr_core::value::Value;
use pwsr_tplang::analysis::static_structure;
use pwsr_tplang::programs::{example1, example2, example2_with_tp1_prime, example4, example5};

fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

/// EX-1: §2.2 notation — RS/WS/read/write/projections on Example 1.
pub fn ex1() -> (bool, String) {
    let sc = example1();
    let s = sc.schedule.as_ref().expect("example 1 has a schedule");
    let mut ok = true;
    let mut t = Table::new(
        "EX-1  Example 1: notation & execution ([DS1] S [DS2])",
        &["quantity", "paper", "measured", "match"],
    );
    let t1 = s.transaction(TxnId(1));
    let rs = format!("{:?}", t1.read_set());
    ok &= rs == "{d0,d2}"; // a, c
    t.row(&[
        "RS(T1)".into(),
        "{a, c}".into(),
        rs.clone(),
        yn(rs == "{d0,d2}"),
    ]);
    let ws = format!("{:?}", t1.write_set());
    ok &= ws == "{d1}";
    t.row(&["WS(T1)".into(), "{b}".into(), ws.clone(), yn(ws == "{d1}")]);
    let ds2 = s.apply(&sc.initial);
    let b_val = ds2.get(sc.catalog.lookup("b").unwrap()).cloned();
    let d_val = ds2.get(sc.catalog.lookup("d").unwrap()).cloned();
    let m = b_val == Some(Value::Int(5)) && d_val == Some(Value::Int(0));
    ok &= m;
    t.row(&[
        "DS2".into(),
        "{(a,0),(b,5),(c,5),(d,0)}".into(),
        format!("b={b_val:?}, d={d_val:?}"),
        yn(m),
    ]);
    let coherent = s.check_read_coherence(&sc.initial).is_ok();
    ok &= coherent;
    t.row(&[
        "replayable from DS1".into(),
        "yes".into(),
        yn(coherent),
        yn(coherent),
    ]);
    let orders = all_serialization_orders(s, 10)
        .map(|o| o.len())
        .unwrap_or(0);
    ok &= orders == 2;
    t.row(&[
        "serialization orders".into(),
        "2 (T1T2, T2T1)".into(),
        orders.to_string(),
        yn(orders == 2),
    ]);
    (ok, t.render())
}

/// EX-2: the flagship counterexample — PWSR alone is not strongly
/// correct.
pub fn ex2() -> (bool, String) {
    let sc = example2();
    let s = sc.schedule.as_ref().expect("example 2 has a schedule");
    let solver = Solver::new(&sc.catalog, &sc.ic);
    let mut ok = true;
    let mut t = Table::new(
        "EX-2  Example 2: PWSR schedule violating consistency",
        &["claim", "paper", "measured", "match"],
    );
    let pwsr = is_pwsr(s, &sc.ic).ok();
    ok &= pwsr;
    t.row(&["S is PWSR".into(), "yes".into(), yn(pwsr), yn(pwsr)]);
    let csr = is_conflict_serializable(s);
    ok &= !csr;
    t.row(&["S is serializable".into(), "no".into(), yn(csr), yn(!csr)]);
    let report = check_strong_correctness(s, &solver, &sc.initial);
    ok &= report.initial_consistent && !report.final_consistent;
    t.row(&[
        "final state consistent".into(),
        "no — (1,−1,−1)".into(),
        yn(report.final_consistent),
        yn(!report.final_consistent),
    ]);
    let fixed = static_structure(&sc.programs[0], &sc.catalog).is_fixed();
    ok &= !fixed;
    t.row(&[
        "TP1 fixed-structure".into(),
        "no".into(),
        yn(fixed),
        yn(!fixed),
    ]);
    // With TP1′ the §3.1 remark: the schedule extended with w1(b,·) is
    // not PWSR.
    let prime = example2_with_tp1_prime();
    let fixed_p = static_structure(&prime.programs[0], &prime.catalog).is_fixed();
    ok &= fixed_p;
    t.row(&[
        "TP1' fixed-structure".into(),
        "yes".into(),
        yn(fixed_p),
        yn(fixed_p),
    ]);
    (ok, t.render())
}

/// EX-3: Lemma 3 fails without fixed structure (Example 3, p = w1(a,1)).
pub fn ex3() -> (bool, String) {
    use pwsr_core::ids::OpIndex;
    use pwsr_core::op;
    let sc = example2(); // Example 3 reuses Example 2's setup
    let s = sc.schedule.as_ref().expect("schedule");
    let solver = Solver::new(&sc.catalog, &sc.ic);
    let a = sc.catalog.lookup("a").unwrap();
    let b = sc.catalog.lookup("b").unwrap();
    let d = ItemSet::from_iter([a, b]); // d1 of C1
    let p = OpIndex(0); // w1(a,1)
    let mut ok = true;
    let mut t = Table::new(
        "EX-3  Example 3: Lemma 3's conclusion fails for non-fixed TP1",
        &["quantity", "paper", "measured", "match"],
    );
    // Premise: DS1^d ∪ read(before(T1, p, S)) is consistent.
    let before = s.before_txn(TxnId(1), p);
    let premise = sc
        .initial
        .restrict(&d)
        .union(&op::read_state(&before))
        .map(|u| solver.is_consistent(&u))
        .unwrap_or(false);
    ok &= premise;
    t.row(&[
        "DS1^d ∪ read(before(T1,p,S)) consistent".into(),
        "yes".into(),
        yn(premise),
        yn(premise),
    ]);
    // Conclusion: DS2^{d − WS(after(T1,p,S))} should be consistent —
    // but is not, because TP1 is not fixed-structure.
    let ds2 = s.apply(&sc.initial);
    let after_ws = op::write_set(&s.after_txn(TxnId(1), p));
    let conclusion_set = d.difference(&after_ws);
    let conclusion = solver.is_consistent(&ds2.restrict(&conclusion_set));
    ok &= !conclusion;
    t.row(&[
        "DS2^{d−WS(after)} consistent".into(),
        "no — {(a,1),(b,−1)}".into(),
        yn(conclusion),
        yn(!conclusion),
    ]);
    (ok, t.render())
}

/// EX-4: Lemma 7 needs the *joint* consistency of `DS^d ∪ read(T)`.
pub fn ex4() -> (bool, String) {
    let sc = example4();
    let s = sc.schedule.as_ref().expect("schedule");
    let solver = Solver::new(&sc.catalog, &sc.ic);
    let a = sc.catalog.lookup("a").unwrap();
    let b = sc.catalog.lookup("b").unwrap();
    let d = ItemSet::from_iter([a, b]);
    let t1 = s.transaction(TxnId(1));
    let mut ok = true;
    let mut t = Table::new(
        "EX-4  Example 4: separate consistency does not give joint consistency",
        &["quantity", "paper", "measured", "match"],
    );
    let ds_d = solver.is_consistent(&sc.initial.restrict(&d));
    ok &= ds_d;
    t.row(&["DS1^d consistent".into(), "yes".into(), yn(ds_d), yn(ds_d)]);
    let reads = solver.is_consistent(&t1.read_state());
    ok &= reads;
    t.row(&[
        "read(T1) consistent".into(),
        "yes".into(),
        yn(reads),
        yn(reads),
    ]);
    let joint = sc
        .initial
        .restrict(&d)
        .union(&t1.read_state())
        .map(|u| solver.is_consistent(&u))
        .unwrap_or(false);
    ok &= !joint;
    t.row(&[
        "DS1^d ∪ read(T1) consistent".into(),
        "no".into(),
        yn(joint),
        yn(!joint),
    ]);
    let ds2 = s.apply(&sc.initial);
    let d_ws = d.union(&t1.write_set());
    let concl = solver.is_consistent(&ds2.restrict(&d_ws));
    ok &= !concl;
    t.row(&[
        "DS2^{d ∪ WS(T1)} consistent".into(),
        "no — {(a,1),(b,−1)}".into(),
        yn(concl),
        yn(!concl),
    ]);
    (ok, t.render())
}

/// EX-5: overlapping conjuncts defeat all three theorems at once.
pub fn ex5() -> (bool, String) {
    let sc = example5();
    let s = sc.schedule.as_ref().expect("schedule");
    let solver = Solver::new(&sc.catalog, &sc.ic);
    let mut ok = true;
    let mut t = Table::new(
        "EX-5  Example 5: non-disjoint conjuncts break everything",
        &["claim", "paper", "measured", "match"],
    );
    let disjoint = sc.ic.is_disjoint();
    ok &= !disjoint;
    t.row(&[
        "conjuncts disjoint".into(),
        "no (share a)".into(),
        yn(disjoint),
        yn(!disjoint),
    ]);
    let fixed = sc
        .programs
        .iter()
        .all(|p| static_structure(p, &sc.catalog).is_fixed());
    ok &= fixed;
    t.row(&[
        "all programs fixed-structure".into(),
        "yes".into(),
        yn(fixed),
        yn(fixed),
    ]);
    let dr = is_delayed_read(s);
    ok &= dr;
    t.row(&["S is DR".into(), "yes".into(), yn(dr), yn(dr)]);
    let dag = data_access_graph(s, &sc.ic);
    ok &= dag.is_acyclic();
    t.row(&[
        "DAG(S, IC) acyclic".into(),
        "yes".into(),
        yn(dag.is_acyclic()),
        yn(dag.is_acyclic()),
    ]);
    let pwsr = is_pwsr(s, &sc.ic).ok();
    ok &= pwsr;
    t.row(&["S is PWSR".into(), "yes".into(), yn(pwsr), yn(pwsr)]);
    let report = check_strong_correctness(s, &solver, &sc.initial);
    ok &= report.initial_consistent && !report.final_consistent;
    t.row(&[
        "final state consistent".into(),
        "no — d = −15".into(),
        yn(report.final_consistent),
        yn(!report.final_consistent),
    ]);
    (ok, t.render())
}

/// FIG-3 companion: Definition 4's order-dependent transaction states
/// on Example 1, matching the paper's two worked values.
pub fn fig3() -> (bool, String) {
    let sc = example1();
    let s = sc.schedule.as_ref().expect("schedule");
    let (a, b, c) = (
        sc.catalog.lookup("a").unwrap(),
        sc.catalog.lookup("b").unwrap(),
        sc.catalog.lookup("c").unwrap(),
    );
    let d = ItemSet::from_iter([a, b, c]);
    let mut ok = true;
    let mut t = Table::new(
        "FIG-3  Definition 4: state(T2, {a,b,c}, S, DS1) per serialization order",
        &["order", "paper", "measured", "match"],
    );
    let st12 = transaction_states(s, &d, &[TxnId(1), TxnId(2)], &sc.initial);
    let m12 = format!("{:?}", st12[1]);
    let exp12 = "{(d0, 0), (d1, 5), (d2, 5)}";
    ok &= m12 == exp12;
    t.row(&[
        "T1,T2".into(),
        "{(a,0),(b,5),(c,5)}".into(),
        m12.clone(),
        yn(m12 == exp12),
    ]);
    let st21 = transaction_states(s, &d, &[TxnId(2), TxnId(1)], &sc.initial);
    let m21 = format!("{:?}", st21[0]);
    let exp21 = "{(d0, 0), (d1, 10), (d2, 5)}";
    ok &= m21 == exp21;
    t.row(&[
        "T2,T1".into(),
        "{(a,0),(b,10),(c,5)}".into(),
        m21.clone(),
        yn(m21 == exp21),
    ]);
    (ok, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_example_experiments_pass() {
        for (name, f) in [
            ("ex1", ex1 as fn() -> (bool, String)),
            ("ex2", ex2),
            ("ex3", ex3),
            ("ex4", ex4),
            ("ex5", ex5),
            ("fig3", fig3),
        ] {
            let (ok, text) = f();
            assert!(ok, "{name} failed:\n{text}");
        }
    }
}
