//! Cross-crate property tests through the facade: scheduler outputs
//! are always well-formed executions whose guarantees match their
//! policies.

use proptest::prelude::*;
use pwsr::core::solver::Solver;
use pwsr::core::strong::check_strong_correctness;
use pwsr::gen::workloads::{random_workload, WorkloadConfig};
use pwsr::prelude::*;
use pwsr::scheduler::exec::{run_workload, ExecConfig};
use pwsr::scheduler::plan::PlanMode;
use pwsr::scheduler::policy::PolicySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_cfg() -> impl Strategy<Value = WorkloadConfig> {
    (1usize..3, 1usize..3, 2usize..6, any::<bool>()).prop_map(
        |(conjuncts, items, n_background, fixed_only)| WorkloadConfig {
            conjuncts,
            items_per_conjunct: items,
            n_background,
            cross_read_prob: 0.5,
            fixed_only,
            gadgets: 0,
            domain_width: 40,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the policy, the committed schedule is a coherent
    /// execution and the final state equals its replay.
    #[test]
    fn scheduler_output_is_always_an_execution(
        cfg in small_cfg(),
        wseed in any::<u64>(),
        eseed in any::<u64>(),
        policy_pick in 0u8..4,
    ) {
        let mut rng = StdRng::seed_from_u64(wseed);
        let w = random_workload(&mut rng, &cfg);
        let policy = match policy_pick {
            0 => PolicySpec::global_2pl(),
            1 => PolicySpec::predicate_wise_2pl(&w.ic),
            2 => PolicySpec::predicate_wise_2pl_early(&w.ic),
            _ => PolicySpec::predicate_wise_2pl_early(&w.ic).dr_blocking(),
        };
        let exec_cfg = ExecConfig {
            seed: eseed,
            plan_mode: PlanMode::ExactIfFixed,
            ..ExecConfig::default()
        };
        let out = run_workload(&w.programs, &w.catalog, &w.initial, &policy, &exec_cfg).unwrap();
        out.schedule.check_read_coherence(&w.initial).unwrap();
        prop_assert_eq!(out.schedule.apply(&w.initial), out.final_state.clone());
        // Every transaction committed exactly once.
        prop_assert_eq!(out.schedule.txn_ids().len(),
            w.programs.iter().enumerate().filter(|(k, p)| {
                // Programs that emit no ops produce no txn in the trace.
                let txn = TxnId(*k as u32 + 1);
                let t = out.schedule.transaction(txn);
                !t.is_empty() || p.body.is_empty()
            }).filter(|(_, p)| !p.body.is_empty()).count());
    }

    /// Policy guarantees: global 2PL ⇒ CSR; predicate-wise ⇒ PWSR;
    /// hold-to-end or DR blocking ⇒ DR.
    #[test]
    fn policy_guarantees_hold(
        cfg in small_cfg(),
        wseed in any::<u64>(),
        eseed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(wseed);
        let w = random_workload(&mut rng, &cfg);
        let exec_cfg = ExecConfig {
            seed: eseed,
            ..ExecConfig::default()
        };
        let g = run_workload(&w.programs, &w.catalog, &w.initial,
            &PolicySpec::global_2pl(), &exec_cfg).unwrap();
        prop_assert!(is_conflict_serializable(&g.schedule));

        let p = run_workload(&w.programs, &w.catalog, &w.initial,
            &PolicySpec::predicate_wise_2pl(&w.ic), &exec_cfg).unwrap();
        prop_assert!(is_pwsr(&p.schedule, &w.ic).ok());
        prop_assert!(pwsr::core::dr::is_delayed_read(&p.schedule));

        let e = run_workload(&w.programs, &w.catalog, &w.initial,
            &PolicySpec::predicate_wise_2pl_early(&w.ic).dr_blocking(), &exec_cfg).unwrap();
        prop_assert!(is_pwsr(&e.schedule, &w.ic).ok());
        prop_assert!(pwsr::core::dr::is_delayed_read(&e.schedule));

        // Theorem 2 consequence on both DR-producing policies.
        let solver = Solver::new(&w.catalog, &w.ic);
        prop_assert!(check_strong_correctness(&p.schedule, &solver, &w.initial).ok());
        prop_assert!(check_strong_correctness(&e.schedule, &solver, &w.initial).ok());
    }
}
