//! FIG-2 / FIG-6 bench: Lemma 2 & Lemma 6 view-set computation and the
//! full inclusion sweep over every operation of a schedule.
//!
//! The single-`p` benches measure the steady-state query cost against a
//! prebuilt [`ScheduleIndex`] (built once per schedule, as the lemma
//! experiments and the verdict engine use it); `index_build` prices
//! that one-time construction so the amortization story is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwsr_bench::scale_exp::sized_workload;
use pwsr_core::ids::OpIndex;
use pwsr_core::index::ScheduleIndex;
use pwsr_core::serializability::serialization_order;
use pwsr_core::viewset::inclusion_holds_everywhere;
use pwsr_gen::chaos::random_execution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_viewsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("viewsets");
    // 800 is the new tier: impractical under the old O(n²·|order|)
    // projection-rescanning implementation.
    for target in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(0xAB + target as u64);
        let w = sized_workload(&mut rng, target, 2);
        let s = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng)
            .expect("workload executes");
        let d = w.ic.conjuncts()[0].items().clone();
        let proj = s.project(&d);
        // The computation cost is order-independent; fall back to the
        // projection's first-appearance order if it is not serializable
        // so the measurement never silently drops out.
        let order = serialization_order(&proj).unwrap_or_else(|| proj.txn_ids().to_vec());
        let mid = OpIndex(s.len() / 2);
        let ix = ScheduleIndex::new(&s);
        group.bench_with_input(BenchmarkId::new("lemma2_single_p", s.len()), &s, |b, _| {
            b.iter(|| black_box(ix.view_sets_general(&d, &order, mid)))
        });
        group.bench_with_input(BenchmarkId::new("lemma6_single_p", s.len()), &s, |b, _| {
            b.iter(|| black_box(ix.view_sets_dr(&d, &order, mid)))
        });
        group.bench_with_input(
            BenchmarkId::new("lemma2_full_sweep", s.len()),
            &s,
            |b, s| b.iter(|| black_box(inclusion_holds_everywhere(s, &d, &order, false))),
        );
        group.bench_with_input(BenchmarkId::new("index_build", s.len()), &s, |b, s| {
            b.iter(|| black_box(ScheduleIndex::new(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_viewsets);
criterion_main!(benches);
