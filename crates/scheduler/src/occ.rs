//! Optimistic concurrency control with per-space backward validation.
//!
//! The lock-based policies in [`crate::exec`] *block*; this executor
//! never does. Transactions read the published store and buffer their
//! writes privately; when a transaction completes its accesses to a
//! lock space (per its access plan — exactly the fixed-structure
//! programs of Theorem 1 have exact plans), that space is **validated**
//! (have any items it read there been republished since?) and, on
//! success, its writes for that space are published immediately. A
//! failed validation aborts and restarts the whole transaction.
//!
//! With one global space this is classical backward-validation OCC and
//! yields serializable schedules. With one space per conjunct it yields
//! **PWSR** schedules whose per-conjunct serialization orders are the
//! per-space publish orders — and because a space can be published
//! before the transaction finishes, the schedules are generally *not*
//! delayed-read: OCC-PW is a Theorem-1 workload generator, not a
//! Theorem-2 one (tests check both facts).

use crate::error::{Result, SchedError};
use crate::exec::{ExecConfig, ExecOutcome};
use crate::lock::SpaceId;
use crate::metrics::Metrics;
use crate::plan::access_plan;
use crate::policy::PolicySpec;
use pwsr_core::catalog::Catalog;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::op::{OpStruct, Operation};
use pwsr_core::schedule::Schedule;
use pwsr_core::state::DbState;
use pwsr_tplang::ast::Program;
use pwsr_tplang::session::{Pending, ProgramSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// OCC-specific counters (folded into [`Metrics`] plus extras).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OccStats {
    /// Space validations performed.
    pub validations: u64,
    /// Validations that failed (each aborts one transaction).
    pub validation_failures: u64,
}

/// Outcome of an OCC run: the usual execution outcome plus OCC stats.
#[derive(Clone, Debug)]
pub struct OccOutcome {
    /// Committed schedule, final state, generic metrics.
    pub exec: ExecOutcome,
    /// Validation counters.
    pub occ: OccStats,
}

struct OccTxn<'a> {
    txn: TxnId,
    program: &'a Program,
    session: ProgramSession<'a>,
    plan: Option<Vec<OpStruct>>,
    /// Item → version observed at (first) read.
    read_versions: BTreeMap<ItemId, u64>,
    /// Read ops already appended to the trace (for rollback on abort).
    emitted_reads: Vec<usize>,
    /// Buffered writes, in program order.
    write_buffer: Vec<Operation>,
    /// Spaces already validated & published.
    published: BTreeSet<SpaceId>,
    done: bool,
    restarts: u32,
}

impl<'a> OccTxn<'a> {
    fn reset(&mut self, catalog: &'a Catalog) {
        self.session = ProgramSession::new(self.program, catalog, self.txn);
        self.read_versions.clear();
        self.emitted_reads.clear();
        self.write_buffer.clear();
        self.published.clear();
        self.done = false;
        self.restarts += 1;
    }
}

/// Run the programs under OCC. The policy contributes its item→space
/// map and the `early_release` flag (interpreted as: validate & publish
/// each space as soon as the access plan shows it finished; without it,
/// one validation at transaction end).
pub fn run_occ(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    policy: &PolicySpec,
    cfg: &ExecConfig,
) -> Result<OccOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut txns: Vec<OccTxn<'_>> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let txn = TxnId(k as u32 + 1);
            OccTxn {
                txn,
                program: p,
                session: ProgramSession::new(p, catalog, txn),
                plan: access_plan(p, catalog, cfg.plan_mode),
                read_versions: BTreeMap::new(),
                emitted_reads: Vec::new(),
                write_buffer: Vec::new(),
                published: BTreeSet::new(),
                done: false,
                restarts: 0,
            }
        })
        .collect();
    let mut store = initial.clone();
    let mut versions: HashMap<ItemId, u64> = HashMap::new();
    let mut trace: Vec<Operation> = Vec::new();
    let mut metrics = Metrics::default();
    let mut occ = OccStats::default();

    while !txns.iter().all(|t| t.done) {
        if metrics.steps >= cfg.max_steps {
            return Err(SchedError::StepBudgetExhausted {
                max_steps: cfg.max_steps,
                pending: txns.iter().filter(|t| !t.done).map(|t| t.txn).collect(),
            });
        }
        let live: Vec<usize> = txns
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.done)
            .map(|(i, _)| i)
            .collect();
        let pick = live[rng.random_range(0..live.len())];
        metrics.steps += 1;
        let t = &mut txns[pick];
        match t.session.pending()? {
            Pending::NeedRead(item) => {
                let value = store.require(item)?.clone();
                let op = t.session.feed_read(value)?;
                t.read_versions
                    .entry(item)
                    .or_insert_with(|| versions.get(&item).copied().unwrap_or(0));
                t.emitted_reads.push(trace.len());
                trace.push(op);
            }
            Pending::Write(op) => {
                t.session.advance_write()?;
                t.write_buffer.push(op);
            }
            Pending::Done => {
                t.done = true;
            }
        }
        // Early per-space validation when the plan says a space is done.
        let early = policy.early_release;
        let t = &mut txns[pick];
        let candidate_spaces: Vec<SpaceId> = if t.done {
            // Validate everything still unpublished.
            let mut all: BTreeSet<SpaceId> = t
                .read_versions
                .keys()
                .chain(t.write_buffer.iter().map(|o| &o.item))
                .map(|&i| policy.space_of(i))
                .collect();
            for s in &t.published {
                all.remove(s);
            }
            all.into_iter().collect()
        } else if early {
            match (&t.plan, t.session.emitted() + t.write_buffer.len()) {
                (Some(plan), emitted_total) if emitted_total <= plan.len() => {
                    // Note: emitted() counts reads only here because
                    // writes are buffered; reconstruct progress from
                    // reads + buffered writes.
                    let progressed = t.emitted_reads.len() + t.write_buffer.len();
                    let remaining: BTreeSet<SpaceId> = plan[progressed.min(plan.len())..]
                        .iter()
                        .map(|o| policy.space_of(o.item))
                        .collect();
                    let mut touched: BTreeSet<SpaceId> = t
                        .read_versions
                        .keys()
                        .chain(t.write_buffer.iter().map(|o| &o.item))
                        .map(|&i| policy.space_of(i))
                        .collect();
                    for s in &t.published {
                        touched.remove(s);
                    }
                    touched
                        .into_iter()
                        .filter(|s| !remaining.contains(s))
                        .collect()
                }
                _ => Vec::new(),
            }
        } else {
            Vec::new()
        };
        for space in candidate_spaces {
            occ.validations += 1;
            let t = &txns[pick];
            let valid = t.read_versions.iter().all(|(&item, &v)| {
                policy.space_of(item) != space || versions.get(&item).copied().unwrap_or(0) == v
            });
            if valid {
                let t = &mut txns[pick];
                for op in t
                    .write_buffer
                    .iter()
                    .filter(|o| policy.space_of(o.item) == space)
                {
                    store.set(op.item, op.value.clone());
                    *versions.entry(op.item).or_insert(0) += 1;
                    trace.push(op.clone());
                }
                t.published.insert(space);
            } else {
                // Abort with transitive cascade: any transaction whose
                // recorded read took its value from an aborted
                // transaction's (early-published) write must abort too,
                // or its read would become incoherent after rollback.
                occ.validation_failures += 1;
                let mut aborted: BTreeSet<TxnId> = BTreeSet::new();
                aborted.insert(txns[pick].txn);
                loop {
                    let mut grew = false;
                    for (i, op) in trace.iter().enumerate() {
                        if !op.is_read() || aborted.contains(&op.txn) {
                            continue;
                        }
                        let writer = trace[..i]
                            .iter()
                            .rev()
                            .find(|w| w.is_write() && w.item == op.item)
                            .map(|w| w.txn);
                        if let Some(w) = writer {
                            if aborted.contains(&w) && aborted.insert(op.txn) {
                                grew = true;
                            }
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                // Bump versions of every rolled-back write so stale
                // read-versions held by live transactions fail their
                // own validation (conservative but safe).
                for op in trace.iter().filter(|o| aborted.contains(&o.txn)) {
                    if op.is_write() {
                        *versions.entry(op.item).or_insert(0) += 1;
                    }
                }
                trace.retain(|o| !aborted.contains(&o.txn));
                store = initial.clone();
                for op in &trace {
                    if op.is_write() {
                        store.set(op.item, op.value.clone());
                    }
                }
                metrics.aborts += aborted.len() as u64;
                metrics.restarts += aborted.len() as u64;
                // The OCC-specific view of the same events, so the
                // single-threaded and OCC-certified threaded paths
                // report comparable counters.
                metrics.occ_aborts += aborted.len() as u64;
                metrics.occ_retries += aborted.len() as u64;
                for t in txns.iter_mut() {
                    if aborted.contains(&t.txn) {
                        t.reset(catalog);
                        if t.restarts > cfg.max_restarts {
                            return Err(SchedError::RestartLimit {
                                txn: t.txn,
                                restarts: t.restarts,
                            });
                        }
                    }
                }
                break;
            }
        }
    }

    metrics.committed_ops = trace.len() as u64;
    let schedule = Schedule::new(trace)?;
    Ok(OccOutcome {
        exec: ExecOutcome {
            schedule,
            final_state: store,
            metrics,
            rejected: Vec::new(),
        },
        occ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
    use pwsr_core::pwsr::is_pwsr;
    use pwsr_core::serializability::is_conflict_serializable;
    use pwsr_core::solver::Solver;
    use pwsr_core::strong::check_strong_correctness;
    use pwsr_core::value::{Domain, Value};
    use pwsr_tplang::parser::parse_program;

    fn setup() -> (Catalog, IntegrityConstraint, DbState) {
        let mut cat = Catalog::new();
        let a0 = cat.add_item("a0", Domain::int_range(-100, 100));
        let b0 = cat.add_item("b0", Domain::int_range(-100, 100));
        let a1 = cat.add_item("a1", Domain::int_range(-100, 100));
        let b1 = cat.add_item("b1", Domain::int_range(-100, 100));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(0, Formula::le(Term::var(a0), Term::var(b0))),
            Conjunct::new(1, Formula::le(Term::var(a1), Term::var(b1))),
        ])
        .unwrap();
        let initial = DbState::from_pairs([
            (a0, Value::Int(0)),
            (b0, Value::Int(10)),
            (a1, Value::Int(0)),
            (b1, Value::Int(10)),
        ]);
        (cat, ic, initial)
    }

    fn programs() -> Vec<Program> {
        vec![
            parse_program("T1", "a0 := a0 + 1; a1 := a1 + 1;").unwrap(),
            parse_program("T2", "b0 := b0 + 1; b1 := b1 + 1;").unwrap(),
            parse_program("T3", "a0 := a0 + 2;").unwrap(),
            parse_program("T4", "b1 := b1 + 2;").unwrap(),
        ]
    }

    #[test]
    fn global_occ_is_serializable_and_preserves_updates() {
        let (cat, _ic, initial) = setup();
        for seed in 0..25 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out =
                run_occ(&programs(), &cat, &initial, &PolicySpec::global_2pl(), &cfg).unwrap();
            out.exec.schedule.check_read_coherence(&initial).unwrap();
            assert!(
                is_conflict_serializable(&out.exec.schedule),
                "seed {seed}: {}",
                out.exec.schedule
            );
            // No lost updates despite optimistic writes.
            assert_eq!(
                out.exec.final_state.get(cat.lookup("a0").unwrap()),
                Some(&Value::Int(3)),
                "seed {seed}"
            );
            assert_eq!(
                out.exec.final_state.get(cat.lookup("b1").unwrap()),
                Some(&Value::Int(13))
            );
        }
    }

    #[test]
    fn per_conjunct_occ_is_pwsr_and_strongly_correct() {
        let (cat, ic, initial) = setup();
        let solver = Solver::new(&cat, &ic);
        let mut non_dr = 0;
        for seed in 0..40 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let policy = PolicySpec::predicate_wise_2pl_early(&ic); // spaces + early
            let out = run_occ(&programs(), &cat, &initial, &policy, &cfg).unwrap();
            out.exec.schedule.check_read_coherence(&initial).unwrap();
            assert!(is_pwsr(&out.exec.schedule, &ic).ok(), "seed {seed}");
            // Theorem 1: templates are fixed-structure ⇒ correct.
            assert!(
                check_strong_correctness(&out.exec.schedule, &solver, &initial).ok(),
                "seed {seed}"
            );
            if !pwsr_core::dr::is_delayed_read(&out.exec.schedule) {
                non_dr += 1;
            }
        }
        // Early per-space publishing breaks DR at least sometimes.
        assert!(
            non_dr > 0,
            "expected some non-DR schedules from early publishing"
        );
    }

    #[test]
    fn validation_failures_trigger_restarts_not_corruption() {
        let (cat, _ic, initial) = setup();
        // High contention on a single item.
        let hot: Vec<Program> = (0..4)
            .map(|k| parse_program(&format!("H{k}"), "a0 := a0 + 1;").unwrap())
            .collect();
        let mut any_failures = false;
        for seed in 0..30 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out = run_occ(&hot, &cat, &initial, &PolicySpec::global_2pl(), &cfg).unwrap();
            any_failures |= out.occ.validation_failures > 0;
            // Every OCC abort shows up in the shared Metrics counters,
            // mirroring the generic abort/restart pair.
            assert_eq!(out.exec.metrics.occ_aborts, out.exec.metrics.aborts);
            assert_eq!(out.exec.metrics.occ_retries, out.exec.metrics.restarts);
            assert_eq!(
                out.exec.final_state.get(cat.lookup("a0").unwrap()),
                Some(&Value::Int(4)),
                "seed {seed}: all four increments must survive"
            );
        }
        assert!(
            any_failures,
            "contention should cause at least one validation failure"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (cat, ic, initial) = setup();
        let policy = PolicySpec::predicate_wise_2pl_early(&ic);
        let cfg = ExecConfig {
            seed: 9,
            ..ExecConfig::default()
        };
        let a = run_occ(&programs(), &cat, &initial, &policy, &cfg).unwrap();
        let b = run_occ(&programs(), &cat, &initial, &policy, &cfg).unwrap();
        assert_eq!(a.exec.schedule, b.exec.schedule);
        assert_eq!(a.occ, b.occ);
    }

    #[test]
    fn empty_workload() {
        let (cat, _ic, initial) = setup();
        let out = run_occ(
            &[],
            &cat,
            &initial,
            &PolicySpec::global_2pl(),
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(out.exec.schedule.is_empty());
        assert_eq!(out.occ, OccStats::default());
    }

    #[test]
    fn cascade_stress_keeps_schedules_coherent() {
        // Cross-space read/write chains under heavy contention: early
        // publishing + validation failures force cascading aborts; the
        // committed schedule must stay coherent and correct throughout.
        let (cat, ic, initial) = setup();
        let solver = Solver::new(&cat, &ic);
        let mix = vec![
            parse_program("W1", "a0 := a0 + 1; b1 := b1 + min(abs(a0), 2);").unwrap(),
            parse_program("W2", "a0 := a0 + 2; a1 := a1 + 1;").unwrap(),
            parse_program("R1", "b0 := b0 + min(abs(a0), 3);").unwrap(),
            parse_program("R2", "b1 := b1 + min(abs(a1), 3);").unwrap(),
            parse_program("W3", "a1 := a1 + 1;").unwrap(),
            parse_program("R3", "b0 := b0 + min(abs(a1), 1);").unwrap(),
        ];
        let policy = PolicySpec::predicate_wise_2pl_early(&ic);
        let mut total_failures = 0u64;
        for seed in 0..100 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out = run_occ(&mix, &cat, &initial, &policy, &cfg).unwrap();
            out.exec
                .schedule
                .check_read_coherence(&initial)
                .unwrap_or_else(|e| panic!("seed {seed}: incoherent after cascade: {e}"));
            assert!(is_pwsr(&out.exec.schedule, &ic).ok(), "seed {seed}");
            assert!(
                check_strong_correctness(&out.exec.schedule, &solver, &initial).ok(),
                "seed {seed}"
            );
            total_failures += out.occ.validation_failures;
        }
        assert!(total_failures > 0, "stress must exercise the abort path");
    }
}
