//! Banking: conserved-sum invariants, lost updates, and the diagnosis
//! API.
//!
//! Three branches, each with the invariant "account balances sum to
//! 300"; overdraft-guarded transfers and read-only audits. Without
//! concurrency control, interleavings lose updates and break the sum —
//! and `pwsr::diagnosis::diagnose` pinpoints exactly which conjunct's
//! projection has the conflict cycle. Under per-branch optimistic
//! concurrency control the same workload is PWSR and correct.
//!
//! ```sh
//! cargo run --example banking
//! ```

use pwsr::gen::chaos::random_execution;
use pwsr::gen::constraints::BankConfig;
use pwsr::gen::workloads::banking_workload;
use pwsr::prelude::*;
use pwsr::scheduler::exec::ExecConfig;
use pwsr::scheduler::occ::run_occ;
use pwsr::scheduler::policy::PolicySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let bank = BankConfig {
        branches: 3,
        accounts_per_branch: 3,
        opening_balance: 100,
    };
    let w = banking_workload(&mut rng, &bank, 3, 2, true, false);
    println!("== Banking: 3 branches × 3 accounts, sum-per-branch = 300 ==");
    for p in &w.programs {
        print!("{p}");
    }

    // 1. Chaos: find a violating interleaving and diagnose it.
    let mut found = None;
    for _ in 0..500 {
        let s = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng)
            .expect("workload executes");
        let d = diagnose(&s, &w.ic, &w.catalog, Some(&w.programs), Some(&w.initial));
        if !d.correct() {
            found = Some((s, d));
            break;
        }
    }
    let (schedule, diagnosis) = found.expect("uncontrolled chaos loses updates quickly");
    println!("\n== An uncontrolled interleaving that breaks a branch invariant ==");
    println!("S: {}\n", schedule.display(&w.catalog));
    println!("{diagnosis}");
    assert!(
        !diagnosis.verdict.pwsr.ok(),
        "violations come from non-PWSR runs"
    );

    // 2. The same workload under per-branch OCC: always PWSR + correct.
    println!("== Same workload under per-branch optimistic concurrency control ==");
    let mut restarts = 0;
    for seed in 0..20u64 {
        let cfg = ExecConfig {
            seed,
            ..ExecConfig::default()
        };
        let out = run_occ(
            &w.programs,
            &w.catalog,
            &w.initial,
            &PolicySpec::predicate_wise_2pl_early(&w.ic),
            &cfg,
        )
        .expect("occ completes");
        let d = diagnose(
            &out.exec.schedule,
            &w.ic,
            &w.catalog,
            Some(&w.programs),
            Some(&w.initial),
        );
        assert!(d.verdict.pwsr.ok() && d.correct(), "seed {seed}:\n{d}");
        restarts += out.exec.metrics.restarts;
    }
    println!(
        "20/20 OCC runs were PWSR and strongly correct ({restarts} optimistic restarts in total).\n\
         Every violating interleaving was non-PWSR — the invariant only needs\n\
         per-branch serializability, exactly the paper's criterion."
    );
}
