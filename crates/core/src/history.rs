//! Histories: schedules with explicit commit and abort events.
//!
//! The paper's schedule model (§2.2) has no commit records — a
//! transaction "finishes" when its last operation executes, which is
//! why §3.2 introduces DR as the commit-free analogue of ACA. Real
//! systems (and the recoverability theory of Bernstein–Hadzilacos–
//! Goodman \[3\], which the paper builds on) carry explicit commits and
//! aborts; this module provides that richer [`History`] type:
//!
//! * data operations plus [`Event::Commit`] / [`Event::Abort`] markers,
//!   with the §2.2 well-formedness rules on each transaction's data
//!   operations and at most one terminal event per transaction;
//! * the **committed projection** — the paper-model [`Schedule`] of the
//!   committed transactions, which is the object the PWSR/DR/strong-
//!   correctness checkers consume;
//! * the classical recoverability hierarchy *recoverable (RC) ⊇ ACA ⊇
//!   strict (ST)*, decided against the real commit points;
//! * the bridge lemma the paper relies on: an ACA history's committed
//!   projection is a DR schedule.

use crate::dr::CommitPoints;
use crate::error::{CoreError, Result};
use crate::ids::{OpIndex, TxnId};
use crate::op::Operation;
use crate::schedule::Schedule;
use std::collections::BTreeMap;
use std::fmt;

/// One entry of a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A read or write.
    Op(Operation),
    /// Transaction commit.
    Commit(TxnId),
    /// Transaction abort.
    Abort(TxnId),
}

impl Event {
    /// The transaction the event belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            Event::Op(o) => o.txn,
            Event::Commit(t) | Event::Abort(t) => *t,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Op(o) => write!(f, "{o}"),
            Event::Commit(t) => write!(f, "c{}", t.raw()),
            Event::Abort(t) => write!(f, "a{}", t.raw()),
        }
    }
}

/// How a transaction ended in a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Committed at the given position.
    Committed(OpIndex),
    /// Aborted at the given position.
    Aborted(OpIndex),
    /// Neither (still active at the end of the history).
    Active,
}

/// A schedule with explicit commit/abort events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct History {
    events: Vec<Event>,
    outcomes: BTreeMap<TxnId, Outcome>,
}

impl History {
    /// Build and validate a history: per-transaction data operations
    /// must satisfy §2.2; a transaction has at most one terminal event,
    /// placed after all of its operations.
    pub fn new(events: Vec<Event>) -> Result<History> {
        // Validate data ops via the Schedule machinery.
        let ops: Vec<Operation> = events
            .iter()
            .filter_map(|e| match e {
                Event::Op(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        Schedule::new(ops)?;
        let mut outcomes: BTreeMap<TxnId, Outcome> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            match e {
                Event::Op(o) => match outcomes.get(&o.txn) {
                    Some(Outcome::Committed(_)) | Some(Outcome::Aborted(_)) => {
                        return Err(CoreError::MalformedSchedule(format!(
                            "operation {o} after {:?} terminated",
                            o.txn
                        )));
                    }
                    _ => {
                        outcomes.insert(o.txn, Outcome::Active);
                    }
                },
                Event::Commit(t) | Event::Abort(t) => {
                    match outcomes.get(t) {
                        Some(Outcome::Committed(_)) | Some(Outcome::Aborted(_)) => {
                            return Err(CoreError::MalformedSchedule(format!(
                                "duplicate terminal event for {t}"
                            )));
                        }
                        _ => {}
                    }
                    let outcome = if matches!(e, Event::Commit(_)) {
                        Outcome::Committed(OpIndex(i))
                    } else {
                        Outcome::Aborted(OpIndex(i))
                    };
                    outcomes.insert(*t, outcome);
                }
            }
        }
        Ok(History { events, outcomes })
    }

    /// Wrap a plain schedule, committing every transaction at the end
    /// in first-appearance order.
    pub fn commit_all(schedule: &Schedule) -> History {
        let mut events: Vec<Event> = schedule.ops().iter().cloned().map(Event::Op).collect();
        for &t in schedule.txn_ids() {
            events.push(Event::Commit(t));
        }
        History::new(events).expect("a valid schedule commits cleanly")
    }

    /// The events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The outcome of `txn`.
    pub fn outcome(&self, txn: TxnId) -> Outcome {
        self.outcomes.get(&txn).copied().unwrap_or(Outcome::Active)
    }

    /// Transactions with a commit event.
    pub fn committed(&self) -> Vec<TxnId> {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Committed(_)))
            .map(|(&t, _)| t)
            .collect()
    }

    /// The **committed projection**: data operations of committed
    /// transactions only, as a paper-model [`Schedule`].
    pub fn committed_projection(&self) -> Schedule {
        let ops: Vec<Operation> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Op(o) if matches!(self.outcome(o.txn), Outcome::Committed(_)) => {
                    Some(o.clone())
                }
                _ => None,
            })
            .collect();
        Schedule::new(ops).expect("projection of a valid history is valid")
    }

    /// All data operations (committed or not) as a schedule, plus the
    /// corresponding explicit commit points for the DR/ACA machinery.
    /// Uncommitted transactions get no commit point.
    pub fn as_schedule_with_commits(&self) -> (Schedule, CommitPoints) {
        let mut ops = Vec::new();
        // Map event index → op index for commit positioning.
        let mut op_positions: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if let Event::Op(o) = e {
                op_positions.insert(i, ops.len());
                ops.push(o.clone());
            }
        }
        let schedule = Schedule::new(ops).expect("valid history");
        let mut commits = CommitPoints::default();
        for (&t, &o) in &self.outcomes {
            if let Outcome::Committed(at) = o {
                // Commit "covers" every op before the commit event: the
                // last op position strictly before `at`.
                let pos = op_positions
                    .range(..at.0)
                    .next_back()
                    .map(|(_, &p)| p)
                    .unwrap_or(0);
                commits.set(t, OpIndex(pos));
            }
        }
        (schedule, commits)
    }

    /// The reads-from pairs among data operations, as event indices
    /// `(reader, writer)`.
    fn reads_from_events(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (j, e) in self.events.iter().enumerate() {
            let Event::Op(r) = e else { continue };
            if !r.is_read() {
                continue;
            }
            let w = self.events[..j]
                .iter()
                .rposition(|e| matches!(e, Event::Op(w) if w.is_write() && w.item == r.item));
            if let Some(i) = w {
                out.push((j, i));
            }
        }
        out
    }

    /// Is the history **recoverable** (RC): whenever `T_j` reads from
    /// `T_i` and `T_j` commits, `T_i` committed before `T_j`'s commit?
    pub fn is_recoverable(&self) -> bool {
        self.reads_from_events()
            .into_iter()
            .all(|(reader, writer)| {
                let (rt, wt) = (self.events[reader].txn(), self.events[writer].txn());
                if rt == wt {
                    return true;
                }
                match (self.outcome(rt), self.outcome(wt)) {
                    // Reader committed: writer must have committed earlier.
                    (Outcome::Committed(rc), Outcome::Committed(wc)) => wc < rc,
                    (Outcome::Committed(_), _) => false,
                    // Reader aborted/active: no RC obligation.
                    _ => true,
                }
            })
    }

    /// Does the history **avoid cascading aborts** (ACA): every read is
    /// from a transaction already committed at the read?
    pub fn is_aca(&self) -> bool {
        self.reads_from_events()
            .into_iter()
            .all(|(reader, writer)| {
                let (rt, wt) = (self.events[reader].txn(), self.events[writer].txn());
                rt == wt || matches!(self.outcome(wt), Outcome::Committed(c) if c.0 < reader)
            })
    }

    /// Is the history **strict** (ST): no reading *or overwriting* of a
    /// value written by a transaction that has not yet terminated?
    pub fn is_strict(&self) -> bool {
        for (j, e) in self.events.iter().enumerate() {
            let Event::Op(o) = e else { continue };
            let Some(i) = self.events[..j].iter().rposition(
                |e| matches!(e, Event::Op(w) if w.is_write() && w.item == o.item && w.txn != o.txn),
            ) else {
                continue;
            };
            let wt = self.events[i].txn();
            // For reads, only the *latest* write matters and it is the
            // one found; for writes, likewise the latest conflicting
            // write. The writer must be terminated before event j.
            let terminated = match self.outcome(wt) {
                Outcome::Committed(c) => c.0 < j,
                Outcome::Aborted(a) => a.0 < j,
                Outcome::Active => false,
            };
            if !terminated {
                return false;
            }
        }
        true
    }

    /// The classical hierarchy position (ST ⊆ ACA ⊆ RC).
    pub fn recoverability(&self) -> HistoryClass {
        if self.is_strict() {
            HistoryClass::Strict
        } else if self.is_aca() {
            HistoryClass::Aca
        } else if self.is_recoverable() {
            HistoryClass::Recoverable
        } else {
            HistoryClass::Unrecoverable
        }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// The recoverability classes, most restrictive first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HistoryClass {
    /// Strict.
    Strict,
    /// Avoids cascading aborts.
    Aca,
    /// Recoverable.
    Recoverable,
    /// Not even recoverable.
    Unrecoverable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ItemId;
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Event {
        Event::Op(Operation::read(TxnId(t), ItemId(i), Value::Int(v)))
    }

    fn wr(t: u32, i: u32, v: i64) -> Event {
        Event::Op(Operation::write(TxnId(t), ItemId(i), Value::Int(v)))
    }

    fn c(t: u32) -> Event {
        Event::Commit(TxnId(t))
    }

    fn a(t: u32) -> Event {
        Event::Abort(TxnId(t))
    }

    #[test]
    fn commit_all_is_strict_for_serial() {
        let s = Schedule::new(vec![
            Operation::write(TxnId(1), ItemId(0), Value::Int(1)),
            Operation::read(TxnId(2), ItemId(0), Value::Int(1)),
        ])
        .unwrap();
        let h = History::commit_all(&s);
        // Commits at the end: T2 read T1's value before T1 committed —
        // not ACA, but recoverable (commit order T1 before T2? No:
        // first-appearance order commits T1 first ⇒ RC holds).
        assert!(h.is_recoverable());
        assert!(!h.is_aca());
        assert_eq!(h.recoverability(), HistoryClass::Recoverable);
    }

    #[test]
    fn classic_recoverability_ladder() {
        // Strict: read after the writer committed.
        let strict = History::new(vec![wr(1, 0, 1), c(1), rd(2, 0, 1), c(2)]).unwrap();
        assert_eq!(strict.recoverability(), HistoryClass::Strict);

        // ACA but not strict: T2 overwrites T1's uncommitted write.
        let aca = History::new(vec![wr(1, 0, 1), wr(2, 0, 2), c(1), c(2)]).unwrap();
        assert!(!aca.is_strict());
        assert!(aca.is_aca());
        assert_eq!(aca.recoverability(), HistoryClass::Aca);

        // RC but not ACA: dirty read, but commit order respects it.
        let rc = History::new(vec![wr(1, 0, 1), rd(2, 0, 1), c(1), c(2)]).unwrap();
        assert!(!rc.is_aca());
        assert!(rc.is_recoverable());
        assert_eq!(rc.recoverability(), HistoryClass::Recoverable);

        // Unrecoverable: reader commits before its writer.
        let bad = History::new(vec![wr(1, 0, 1), rd(2, 0, 1), c(2), c(1)]).unwrap();
        assert!(!bad.is_recoverable());
        assert_eq!(bad.recoverability(), HistoryClass::Unrecoverable);
    }

    #[test]
    fn aborted_reader_imposes_no_rc_obligation() {
        let h = History::new(vec![wr(1, 0, 1), rd(2, 0, 1), a(2), c(1)]).unwrap();
        assert!(h.is_recoverable());
    }

    #[test]
    fn committed_projection_drops_aborted_work() {
        let h = History::new(vec![wr(1, 0, 1), wr(2, 1, 2), a(1), rd(2, 2, 0), c(2)]).unwrap();
        let s = h.committed_projection();
        assert_eq!(s.len(), 2);
        assert!(s.ops().iter().all(|o| o.txn == TxnId(2)));
        assert_eq!(h.committed(), vec![TxnId(2)]);
        assert_eq!(h.outcome(TxnId(1)), Outcome::Aborted(OpIndex(2)));
    }

    #[test]
    fn aca_history_committed_projection_is_dr() {
        // The bridge the paper uses in §3.2: ACA ⇒ the committed
        // projection is a DR schedule.
        let h = History::new(vec![
            wr(1, 0, 1),
            c(1),
            rd(2, 0, 1),
            wr(2, 1, 2),
            c(2),
            wr(3, 2, 3),
            c(3),
        ])
        .unwrap();
        assert!(h.is_aca());
        assert!(crate::dr::is_delayed_read(&h.committed_projection()));
    }

    #[test]
    fn ops_after_terminal_rejected() {
        let err = History::new(vec![wr(1, 0, 1), c(1), wr(1, 1, 2)]).unwrap_err();
        assert!(matches!(err, CoreError::MalformedSchedule(_)));
        let err = History::new(vec![wr(1, 0, 1), c(1), c(1)]).unwrap_err();
        assert!(matches!(err, CoreError::MalformedSchedule(_)));
    }

    #[test]
    fn schedule_with_commits_round_trip() {
        let h = History::new(vec![wr(1, 0, 1), c(1), rd(2, 0, 1), c(2)]).unwrap();
        let (s, commits) = h.as_schedule_with_commits();
        assert_eq!(s.len(), 2);
        // T1's commit point covers its write (position 0).
        assert!(commits.committed_by(TxnId(1), OpIndex(0)));
        // ACA under the explicit points matches the history's own test.
        assert_eq!(crate::dr::is_aca_with(&s, &commits), h.is_aca());
    }

    #[test]
    fn active_transactions_are_reported() {
        let h = History::new(vec![wr(1, 0, 1), rd(2, 0, 1)]).unwrap();
        assert_eq!(h.outcome(TxnId(1)), Outcome::Active);
        assert_eq!(h.outcome(TxnId(9)), Outcome::Active);
        assert!(h.committed().is_empty());
        assert!(h.committed_projection().is_empty());
    }

    #[test]
    fn display_notation() {
        let h = History::new(vec![wr(1, 0, 1), c(1), a(2)]).unwrap();
        assert_eq!(h.to_string(), "w1(d0, 1), c1, a2");
    }
}
