//! A small directed-graph utility.
//!
//! Used for precedence graphs ([`crate::serializability`]), data access
//! graphs ([`crate::dag`]) and the scheduler's waits-for graphs. Nodes
//! are dense `usize` indices; callers keep their own node↔entity maps.

use std::collections::BTreeSet;

/// A directed graph over nodes `0..n` with deduplicated edges.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    /// `succ[u]` = ordered successor set of `u`.
    succ: Vec<BTreeSet<usize>>,
}

impl DiGraph {
    /// A graph with `n` isolated nodes.
    pub fn new(n: usize) -> DiGraph {
        DiGraph {
            succ: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Is the graph empty (no nodes)?
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Add the edge `u → v` (self-loops allowed; duplicates ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.succ[u].insert(v);
    }

    /// Is `u → v` present?
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ[u].contains(&v)
    }

    /// Successors of `u` in ascending order.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ[u].iter().copied()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(|s| s.len()).sum()
    }

    /// All edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Does the graph contain a directed cycle?
    pub fn has_cycle(&self) -> bool {
        self.topo_sort().is_none()
    }

    /// One topological order (smallest-index-first, i.e. deterministic),
    /// or `None` if the graph is cyclic.
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        // BTreeSet as a priority queue keeps the order deterministic.
        let mut ready: BTreeSet<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&u) = ready.iter().next() {
            ready.remove(&u);
            out.push(u);
            for v in self.successors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.insert(v);
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// All topological orders, up to `cap` of them (the count can be
    /// factorial). Returns `None` if cyclic.
    pub fn all_topo_sorts(&self, cap: usize) -> Option<Vec<Vec<usize>>> {
        if self.has_cycle() {
            return None;
        }
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.topo_rec(&mut indeg, &mut used, &mut current, &mut out, cap);
        Some(out)
    }

    fn topo_rec(
        &self,
        indeg: &mut Vec<usize>,
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if current.len() == self.len() {
            out.push(current.clone());
            return;
        }
        for u in 0..self.len() {
            if !used[u] && indeg[u] == 0 {
                used[u] = true;
                current.push(u);
                for v in self.successors(u) {
                    indeg[v] -= 1;
                }
                self.topo_rec(indeg, used, current, out, cap);
                for v in self.successors(u) {
                    indeg[v] += 1;
                }
                current.pop();
                used[u] = false;
            }
        }
    }

    /// One directed cycle as a node list `[v0, v1, …, vk]` with
    /// `v0 = vk`'s successor closing the loop, if any exists.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let n = self.len();
        let mut mark = vec![Mark::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if mark[start] != Mark::White {
                continue;
            }
            // Iterative DFS with explicit stack of (node, successor iter pos).
            let mut stack = vec![(start, self.succ[start].iter())];
            mark[start] = Mark::Gray;
            while let Some((u, it)) = stack.last_mut() {
                let u = *u;
                match it.next() {
                    Some(&v) => match mark[v] {
                        Mark::White => {
                            parent[v] = u;
                            mark[v] = Mark::Gray;
                            stack.push((v, self.succ[v].iter()));
                        }
                        Mark::Gray => {
                            // Found a back edge u → v: unwind the cycle.
                            let mut cycle = vec![u];
                            let mut w = u;
                            while w != v {
                                w = parent[w];
                                cycle.push(w);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Mark::Black => {}
                    },
                    None => {
                        mark[u] = Mark::Black;
                        stack.pop();
                    }
                }
            }
        }
        None
    }
}

/// A dynamically growing DAG with **incremental cycle detection**, via
/// the Pearce–Kelly algorithm (*A dynamic topological sort algorithm
/// for directed acyclic graphs*, JEA 2006).
///
/// A topological order over the nodes is maintained across edge
/// insertions: adding `u → v` with `ord(u) < ord(v)` costs `O(1)`;
/// otherwise only the *affected region* — the nodes ordered between
/// `v` and `u` and reachable forward from `v` or backward from `u` —
/// is discovered and reordered. An insertion that would close a cycle
/// is detected during the forward search and **rejected without
/// mutating** the graph, which is exactly the shape an online
/// serialization-graph certifier needs: conflict edges stream in as
/// operations arrive, and the first edge whose insertion fails
/// pinpoints the offending operation.
#[derive(Debug, Default)]
pub struct IncrementalDag {
    /// `succ[u]` = ordered successor set of `u` (deduplicated).
    succ: Vec<BTreeSet<u32>>,
    /// `pred[v]` = ordered predecessor set of `v`.
    pred: Vec<BTreeSet<u32>>,
    /// `ord[u]` = position of `u` in the maintained topological order.
    ord: Vec<u32>,
    /// `node_at[k]` = the node at position `k` (inverse of `ord`).
    node_at: Vec<u32>,
    /// Epoch-marked visited scratch for the traversals: `mark[x] ==
    /// epoch` means visited in the current search, so each search is
    /// O(1)-membership without clearing or reallocating. Behind a
    /// `Mutex` (uncontended in single-writer use) so the read-only
    /// admission probe can use it too *and* the DAG stays `Sync` —
    /// the sharded monitor probes shard graphs under shared read
    /// locks from several threads.
    scratch: std::sync::Mutex<VisitMark>,
}

impl Clone for IncrementalDag {
    fn clone(&self) -> IncrementalDag {
        IncrementalDag {
            succ: self.succ.clone(),
            pred: self.pred.clone(),
            ord: self.ord.clone(),
            node_at: self.node_at.clone(),
            // Scratch is per-search state; a clone starts fresh.
            scratch: std::sync::Mutex::new(VisitMark::default()),
        }
    }
}

/// Reusable visited marks (see [`IncrementalDag::scratch`]).
#[derive(Clone, Debug, Default)]
struct VisitMark {
    mark: Vec<u32>,
    epoch: u32,
}

impl VisitMark {
    /// Start a fresh search: bump the epoch (rolling over by clearing)
    /// and size the table to `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.iter_mut().for_each(|m| *m = 0);
                1
            }
        };
    }

    /// Mark `x` visited; returns whether it was fresh.
    fn visit(&mut self, x: u32) -> bool {
        let fresh = self.mark[x as usize] != self.epoch;
        self.mark[x as usize] = self.epoch;
        fresh
    }
}

/// Witness that an edge insertion would have closed a directed cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WouldCycle;

impl IncrementalDag {
    /// An empty DAG.
    pub fn new() -> IncrementalDag {
        IncrementalDag::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Is the graph empty (no nodes)?
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Add a fresh node at the end of the topological order.
    pub fn add_node(&mut self) -> u32 {
        let u = self.succ.len() as u32;
        self.succ.push(BTreeSet::new());
        self.pred.push(BTreeSet::new());
        self.ord.push(u);
        self.node_at.push(u);
        u
    }

    /// Is `u → v` present?
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.succ[u as usize].contains(&v)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(|s| s.len()).sum()
    }

    /// The maintained topological order's position of `u`.
    pub fn position(&self, u: u32) -> u32 {
        self.ord[u as usize]
    }

    /// The nodes in topological order (a valid serialization order
    /// when nodes are transactions and edges are conflicts).
    pub fn order(&self) -> &[u32] {
        &self.node_at
    }

    /// Insert `u → v`, restoring the topological order. Returns
    /// [`WouldCycle`] — with the graph **unchanged** — if the edge
    /// would close a cycle (including the self-loop `u → u`).
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<(), WouldCycle> {
        if u == v {
            return Err(WouldCycle);
        }
        if self.succ[u as usize].contains(&v) {
            return Ok(());
        }
        if self.ord[u as usize] > self.ord[v as usize] {
            // Affected region: discover, check for a cycle, reorder.
            let lower = self.ord[v as usize];
            let upper = self.ord[u as usize];
            let mut delta_f = Vec::new();
            if !self.forward(v, upper, &mut delta_f, u) {
                return Err(WouldCycle);
            }
            let mut delta_b = Vec::new();
            self.backward(u, lower, &mut delta_b);
            self.reorder(delta_b, delta_f);
        }
        self.succ[u as usize].insert(v);
        self.pred[v as usize].insert(u);
        Ok(())
    }

    /// Remove the edge `u → v`.
    ///
    /// Sound only in **LIFO (journal) order**: the undo-log replays a
    /// push's freshly-inserted edges in reverse insertion order, so at
    /// removal time the maintained topological order satisfies a
    /// superset of the remaining constraints and *stays valid* — no
    /// reordering is needed, which is what keeps Pearce–Kelly sound
    /// under retraction. Removing an arbitrary edge out of order is
    /// also safe for the order invariant (fewer constraints), but the
    /// affected-region bookkeeping of future insertions would then be
    /// conservative rather than tight; the monitor only ever removes
    /// in LIFO order.
    ///
    /// Panics if the edge is absent (the journal guarantees presence).
    pub fn remove_edge(&mut self, u: u32, v: u32) {
        let removed = self.succ[u as usize].remove(&v) && self.pred[v as usize].remove(&u);
        assert!(removed, "remove_edge({u}, {v}): edge not present");
    }

    /// Remove the most recently added node, which must be edgeless
    /// (the undo-log removes a push's edges first) and must be the
    /// highest-numbered node (LIFO again). Its slot in the maintained
    /// order is compacted away in `O(n)`; every other node keeps its
    /// relative position, so the order stays topological.
    pub fn remove_last_node(&mut self) {
        let u = (self.succ.len() - 1) as u32;
        assert!(
            self.succ[u as usize].is_empty() && self.pred[u as usize].is_empty(),
            "remove_last_node: node {u} still has edges"
        );
        let pos = self.ord[u as usize];
        self.node_at.remove(pos as usize);
        for (k, &x) in self.node_at.iter().enumerate().skip(pos as usize) {
            self.ord[x as usize] = k as u32;
        }
        self.succ.pop();
        self.pred.pop();
        self.ord.pop();
    }

    /// Collapse the graph onto the `kept` nodes, preserving
    /// reachability **among kept nodes**: for every kept pair `u`, `v`
    /// with a directed path `u ⇝ v` whose intermediate nodes are all
    /// dropped, the rebuilt graph carries the condensed edge `u → v`.
    /// The condensed graph is a subgraph of the old graph's transitive
    /// closure, hence still acyclic.
    ///
    /// Kept nodes are renumbered **monotonically in their old ids**
    /// (`map[old] = new`; dropped nodes map to `u32::MAX`), which
    /// preserves the undo layer's LIFO `remove_last_node` contract:
    /// the youngest surviving node stays the highest-numbered one.
    pub fn retain_condensed(&mut self, kept: &[bool]) -> Vec<u32> {
        assert_eq!(kept.len(), self.len(), "retain_condensed: kept mask size");
        const GONE: u32 = u32::MAX;
        let mut map = vec![GONE; self.len()];
        let mut next = 0u32;
        for (u, &k) in kept.iter().enumerate() {
            if k {
                map[u] = next;
                next += 1;
            }
        }
        let mut out = IncrementalDag::new();
        for _ in 0..next {
            out.add_node();
        }
        // Per kept source: DFS through the dropped region only; the
        // kept frontier it reaches becomes direct condensed edges.
        let mut stack: Vec<u32> = Vec::new();
        let mut seen = vec![false; self.len()];
        for u in 0..self.len() {
            if !kept[u] {
                continue;
            }
            let mut visited: Vec<usize> = Vec::new();
            stack.clear();
            stack.extend(self.succ[u].iter().copied());
            while let Some(x) = stack.pop() {
                let xi = x as usize;
                if seen[xi] {
                    continue;
                }
                seen[xi] = true;
                visited.push(xi);
                if kept[xi] {
                    out.add_edge(map[u], map[xi])
                        .expect("condensed closure of a DAG stays acyclic");
                } else {
                    stack.extend(self.succ[xi].iter().copied());
                }
            }
            for xi in visited {
                seen[xi] = false;
            }
        }
        *self = out;
        map
    }

    /// Would inserting every edge `s → target` (for `s` in `sources`)
    /// keep the graph acyclic? Since all candidate edges end at the
    /// same node, a cycle can only arise if `target` already reaches
    /// one of the sources — checked by a forward search pruned by the
    /// topological order (edges only ever go order-forward), without
    /// touching the graph.
    pub fn admits_edges_into(&self, sources: &[u32], target: u32) -> bool {
        let Some(&max_ord) = sources.iter().map(|&s| &self.ord[s as usize]).max() else {
            return true;
        };
        if sources.contains(&target) {
            return false;
        }
        if self.ord[target as usize] > max_ord {
            return true;
        }
        self.forward_until(target, max_ord, sources)
    }

    /// DFS forward from `start` over nodes with `ord ≤ limit`,
    /// collecting visits into `delta`. Returns `false` if `forbidden`
    /// is reached (a cycle witness).
    fn forward(&self, start: u32, limit: u32, delta: &mut Vec<u32>, forbidden: u32) -> bool {
        let mut seen = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        seen.begin(self.len());
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            if !seen.visit(x) {
                continue;
            }
            delta.push(x);
            for &y in &self.succ[x as usize] {
                if y == forbidden {
                    return false;
                }
                if self.ord[y as usize] <= limit {
                    stack.push(y);
                }
            }
        }
        true
    }

    /// DFS forward from `start` over nodes with `ord ≤ limit`; returns
    /// `false` the moment any member of `targets` is reached.
    fn forward_until(&self, start: u32, limit: u32, targets: &[u32]) -> bool {
        let mut seen = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        seen.begin(self.len());
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            if !seen.visit(x) {
                continue;
            }
            for &y in &self.succ[x as usize] {
                if targets.contains(&y) {
                    return false;
                }
                if self.ord[y as usize] <= limit {
                    stack.push(y);
                }
            }
        }
        true
    }

    /// DFS backward from `start` over nodes with `ord ≥ limit`.
    fn backward(&self, start: u32, limit: u32, delta: &mut Vec<u32>) {
        let mut seen = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        seen.begin(self.len());
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            if !seen.visit(x) {
                continue;
            }
            delta.push(x);
            for &y in &self.pred[x as usize] {
                if self.ord[y as usize] >= limit {
                    stack.push(y);
                }
            }
        }
    }

    /// Reassign the affected nodes' positions: the backward set keeps
    /// its internal order and moves wholly before the forward set,
    /// reusing exactly the position multiset the two sets occupied.
    fn reorder(&mut self, mut delta_b: Vec<u32>, mut delta_f: Vec<u32>) {
        delta_b.sort_by_key(|&x| self.ord[x as usize]);
        delta_f.sort_by_key(|&x| self.ord[x as usize]);
        let mut slots: Vec<u32> = delta_b
            .iter()
            .chain(delta_f.iter())
            .map(|&x| self.ord[x as usize])
            .collect();
        slots.sort_unstable();
        for (k, &x) in delta_b.iter().chain(delta_f.iter()).enumerate() {
            let pos = slots[k];
            self.ord[x as usize] = pos;
            self.node_at[pos as usize] = x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_topo() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        assert!(!g.has_cycle());
        let order = g.topo_sort().unwrap();
        let pos = |u: usize| order.iter().position(|&x| x == u).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2) && pos(0) < pos(3));
    }

    #[test]
    fn cycle_detected_and_found() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(g.has_cycle());
        assert!(g.topo_sort().is_none());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        // Every consecutive pair (and the closing pair) is an edge.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 1);
        assert!(g.has_cycle());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle, vec![1]);
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn all_topo_sorts_of_antichain() {
        let g = DiGraph::new(3);
        let all = g.all_topo_sorts(100).unwrap();
        assert_eq!(all.len(), 6); // 3! orders of an antichain
    }

    #[test]
    fn all_topo_sorts_capped() {
        let g = DiGraph::new(5);
        let all = g.all_topo_sorts(10).unwrap();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn all_topo_sorts_respects_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 2);
        let all = g.all_topo_sorts(100).unwrap();
        assert_eq!(all.len(), 3); // 0 before 2, 1 anywhere
        for order in &all {
            let pos = |u: usize| order.iter().position(|&x| x == u).unwrap();
            assert!(pos(0) < pos(2));
        }
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.topo_sort().unwrap(), Vec::<usize>::new());
        assert!(g.find_cycle().is_none());
    }

    /// Is the maintained order a valid topological order?
    fn order_valid(g: &IncrementalDag) -> bool {
        (0..g.len() as u32).all(|u| {
            (0..g.len() as u32).all(|v| !g.has_edge(u, v) || g.position(u) < g.position(v))
        })
    }

    #[test]
    fn incremental_dag_fast_path_and_reorder() {
        let mut g = IncrementalDag::new();
        for _ in 0..4 {
            g.add_node();
        }
        // Forward edge: O(1) path.
        g.add_edge(0, 1).unwrap();
        // Backward edge 3 → 0 forces a reorder.
        g.add_edge(3, 0).unwrap();
        assert!(order_valid(&g));
        g.add_edge(2, 3).unwrap();
        assert!(order_valid(&g));
        // Now 2 ≺ 3 ≺ 0 ≺ 1; closing the loop must fail untouched.
        let before = (g.edge_count(), g.order().to_vec());
        assert_eq!(g.add_edge(1, 2), Err(WouldCycle));
        assert_eq!((g.edge_count(), g.order().to_vec()), before);
        assert_eq!(g.add_edge(0, 0), Err(WouldCycle));
        // Duplicate insertion is a no-op.
        g.add_edge(2, 3).unwrap();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn incremental_dag_admits_edges_into() {
        let mut g = IncrementalDag::new();
        for _ in 0..3 {
            g.add_node();
        }
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        // 2 → {0}: 2 reaches 0? No — but edge 0→1→2 means adding edges
        // {0}→2 is fine while {sources containing 2} is a self-loop.
        assert!(g.admits_edges_into(&[0, 1], 2));
        assert!(!g.admits_edges_into(&[2], 2), "self-loop rejected");
        // Edge (2 → 0) would close the cycle 0→1→2→0: check the
        // admission test for sources={0} into target=2 … that models
        // inserting 0→2 (fine), while inserting into 0 from 2's
        // component must be caught:
        assert!(!g.admits_edges_into(&[0], 0));
        // target=0, sources={2}: edge 2→0 closes a cycle iff 0 reaches 2.
        assert!(!g.admits_edges_into(&[2], 0));
        assert!(g.admits_edges_into(&[], 0), "no edges, nothing to do");
    }

    #[test]
    fn lifo_edge_removal_keeps_order_valid() {
        let mut g = IncrementalDag::new();
        for _ in 0..4 {
            g.add_node();
        }
        g.add_edge(0, 1).unwrap();
        g.add_edge(3, 0).unwrap(); // forces a reorder
        g.add_edge(2, 3).unwrap();
        // Undo in LIFO order; after removing 2→3 and 3→0 the once
        // cycle-closing edge 1→2 becomes insertable.
        g.remove_edge(2, 3);
        g.remove_edge(3, 0);
        assert!(order_valid(&g));
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        assert!(order_valid(&g));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn remove_last_node_compacts_the_order() {
        let mut g = IncrementalDag::new();
        for _ in 0..3 {
            g.add_node();
        }
        // Reorder so node 2 is NOT last in the maintained order.
        g.add_edge(2, 0).unwrap();
        assert_eq!(g.position(2), 0);
        g.remove_edge(2, 0);
        g.remove_last_node();
        assert_eq!(g.len(), 2);
        assert!(order_valid(&g));
        // Remaining nodes occupy positions 0..2.
        let mut pos: Vec<u32> = (0..2).map(|u| g.position(u)).collect();
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 1]);
        // The graph is fully usable afterwards.
        let n = g.add_node();
        g.add_edge(n, 0).unwrap();
        assert!(order_valid(&g));
    }

    #[test]
    fn retain_condensed_collapses_dropped_paths() {
        // 0 → 1 → 2 → 3, plus 0 → 4; keep {0, 2, 4}: the path 0 ⇝ 2
        // through dropped node 1 must become a direct edge.
        let mut g = IncrementalDag::new();
        for _ in 0..5 {
            g.add_node();
        }
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(0, 4).unwrap();
        let map = g.retain_condensed(&[true, false, true, false, true]);
        assert_eq!(map, vec![0, u32::MAX, 1, u32::MAX, 2]);
        assert_eq!(g.len(), 3);
        assert!(g.has_edge(0, 1), "0 ⇝ 2 condensed through dropped 1");
        assert!(g.has_edge(0, 2), "direct surviving edge kept");
        assert_eq!(g.edge_count(), 2);
        assert!(order_valid(&g));
    }

    /// Model test: condensation preserves reachability exactly on the
    /// kept pairs (paths through kept intermediates compose from the
    /// condensed segments).
    #[test]
    fn retain_condensed_matches_reachability_model() {
        let mut state = 0xABCDEF0123456789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // a ⇝ b (a ≠ b) iff inserting b → a would close a cycle.
        let reaches = |g: &IncrementalDag, a: u32, b: u32| a != b && !g.admits_edges_into(&[b], a);
        for round in 0..40 {
            let n = 4 + (next() % 8) as usize;
            let mut g = IncrementalDag::new();
            for _ in 0..n {
                g.add_node();
            }
            for _ in 0..(3 * n) {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                let _ = g.add_edge(u, v);
            }
            let kept: Vec<bool> = (0..n).map(|_| next() % 2 == 0).collect();
            let old_reach: Vec<Vec<bool>> = (0..n as u32)
                .map(|a| (0..n as u32).map(|b| reaches(&g, a, b)).collect())
                .collect();
            let map = g.retain_condensed(&kept);
            assert!(order_valid(&g), "round {round}: rebuilt order broken");
            for a in 0..n {
                for b in 0..n {
                    if kept[a] && kept[b] {
                        assert_eq!(
                            reaches(&g, map[a], map[b]),
                            old_reach[a][b],
                            "round {round}: kept-pair reachability {a}⇝{b} diverged"
                        );
                    }
                }
            }
        }
    }

    /// Model test: journaled insertions undone in LIFO order restore
    /// cycle-detection behaviour exactly (parity with a batch DiGraph
    /// rebuilt from the surviving edges).
    #[test]
    fn lifo_undo_matches_batch_model() {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 3 + (next() % 6) as usize;
            let mut inc = IncrementalDag::new();
            for _ in 0..n {
                inc.add_node();
            }
            let mut journal: Vec<(u32, u32)> = Vec::new();
            for _ in 0..(4 * n) {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                if !inc.has_edge(u, v) && inc.add_edge(u, v).is_ok() {
                    journal.push((u, v));
                }
            }
            // Undo a random suffix in LIFO order.
            let keep = (next() % (journal.len() as u64 + 1)) as usize;
            for &(u, v) in journal[keep..].iter().rev() {
                inc.remove_edge(u, v);
            }
            journal.truncate(keep);
            assert!(order_valid(&inc), "round {round}: order broken after undo");
            // Parity with a batch graph over the surviving edges.
            let mut batch = DiGraph::new(n);
            for &(u, v) in &journal {
                batch.add_edge(u as usize, v as usize);
            }
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    let mut probe = batch.clone();
                    probe.add_edge(u as usize, v as usize);
                    assert_eq!(
                        inc.admits_edges_into(&[u], v),
                        !probe.has_cycle(),
                        "round {round}: admissibility diverged on {u}→{v}"
                    );
                }
            }
        }
    }

    /// Model test: random edge insertions agree with the batch DiGraph
    /// on cycle detection, and the maintained order stays topological.
    #[test]
    fn incremental_dag_matches_batch_model() {
        // Deterministic pseudo-random stream (no rand dev-dep in core).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let n = 2 + (next() % 9) as usize;
            let mut inc = IncrementalDag::new();
            for _ in 0..n {
                inc.add_node();
            }
            let mut batch = DiGraph::new(n);
            for _ in 0..(3 * n) {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                let mut probe = batch.clone();
                probe.add_edge(u as usize, v as usize);
                let admissible = inc.admits_edges_into(&[u], v);
                match inc.add_edge(u, v) {
                    Ok(()) => {
                        assert!(
                            !probe.has_cycle(),
                            "round {round}: incremental accepted a cyclic edge {u}→{v}"
                        );
                        assert!(admissible, "round {round}: admits_edges_into disagreed");
                        batch = probe;
                        assert!(order_valid(&inc), "round {round}: order broken");
                    }
                    Err(WouldCycle) => {
                        assert!(
                            probe.has_cycle(),
                            "round {round}: incremental rejected an acyclic edge {u}→{v}"
                        );
                        assert!(u == v || !admissible);
                        assert!(order_valid(&inc));
                    }
                }
            }
        }
    }
}
