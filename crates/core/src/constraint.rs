//! Integrity constraints: quantifier-free first-order formulae.
//!
//! §2.1: integrity constraints are quantifier-free FO formulae over
//! numeric/string constants, functions over them (`+`, `max`, …),
//! comparison operators, and variables (the data items). A database
//! state is a variable assignment; `DS ⊨ IC` is standard evaluation.
//!
//! The constraint is kept in the paper's standing normal form
//! `IC = C_1 ∧ C_2 ∧ … ∧ C_l` where each conjunct `C_e` ranges over a
//! data set `d_e`. The theorems require the `d_e` to be **disjoint**
//! (each `d_e` is then an *atomic data set* in the terminology of
//! Sha et al. \[14\]); [`IntegrityConstraint::new`] enforces this, while
//! [`IntegrityConstraint::new_unchecked`] permits overlap so that the
//! paper's Example 5 (which needs overlapping conjuncts) is expressible.

use crate::error::{CoreError, Result};
use crate::ids::{ConjunctId, ItemId};
use crate::state::{DbState, ItemSet};
use crate::value::Value;
use std::fmt;

/// A term of the constraint language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A constant (`5`, `"Jim"`, `true`).
    Const(Value),
    /// A variable: the current value of a data item.
    Var(ItemId),
    /// Integer addition.
    Add(Box<Term>, Box<Term>),
    /// Integer subtraction.
    Sub(Box<Term>, Box<Term>),
    /// Integer multiplication.
    Mul(Box<Term>, Box<Term>),
    /// Integer negation.
    Neg(Box<Term>),
    /// Integer absolute value (`|b|` in the paper's Example 2).
    Abs(Box<Term>),
    /// Binary minimum.
    Min(Box<Term>, Box<Term>),
    /// Binary maximum (the paper's example function `max`).
    Max(Box<Term>, Box<Term>),
}

impl Term {
    /// Integer constant shorthand.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    /// String constant shorthand.
    pub fn str(s: &str) -> Term {
        Term::Const(Value::str(s))
    }

    /// Variable shorthand.
    pub fn var(item: ItemId) -> Term {
        Term::Var(item)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn add(self, rhs: Term) -> Term {
        Term::Add(Box::new(self), Box::new(rhs))
    }

    /// `self − rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn sub(self, rhs: Term) -> Term {
        Term::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self × rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn mul(self, rhs: Term) -> Term {
        Term::Mul(Box::new(self), Box::new(rhs))
    }

    /// `−self`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn neg(self) -> Term {
        Term::Neg(Box::new(self))
    }

    /// `|self|`.
    pub fn abs(self) -> Term {
        Term::Abs(Box::new(self))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Term) -> Term {
        Term::Min(Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Term) -> Term {
        Term::Max(Box::new(self), Box::new(rhs))
    }

    /// Evaluate under the assignment `state`.
    pub fn eval(&self, state: &DbState) -> Result<Value> {
        fn int_of(v: Value, context: &'static str) -> Result<i64> {
            v.as_int().ok_or(CoreError::TypeError {
                expected: "int",
                found: "non-int",
                context,
            })
        }
        match self {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(item) => state.require(*item).cloned(),
            Term::Add(l, r) => {
                let (l, r) = (int_of(l.eval(state)?, "+")?, int_of(r.eval(state)?, "+")?);
                l.checked_add(r).map(Value::Int).ok_or(CoreError::Overflow)
            }
            Term::Sub(l, r) => {
                let (l, r) = (int_of(l.eval(state)?, "-")?, int_of(r.eval(state)?, "-")?);
                l.checked_sub(r).map(Value::Int).ok_or(CoreError::Overflow)
            }
            Term::Mul(l, r) => {
                let (l, r) = (int_of(l.eval(state)?, "*")?, int_of(r.eval(state)?, "*")?);
                l.checked_mul(r).map(Value::Int).ok_or(CoreError::Overflow)
            }
            Term::Neg(t) => {
                let v = int_of(t.eval(state)?, "neg")?;
                v.checked_neg().map(Value::Int).ok_or(CoreError::Overflow)
            }
            Term::Abs(t) => {
                let v = int_of(t.eval(state)?, "abs")?;
                v.checked_abs().map(Value::Int).ok_or(CoreError::Overflow)
            }
            Term::Min(l, r) => {
                let (l, r) = (
                    int_of(l.eval(state)?, "min")?,
                    int_of(r.eval(state)?, "min")?,
                );
                Ok(Value::Int(l.min(r)))
            }
            Term::Max(l, r) => {
                let (l, r) = (
                    int_of(l.eval(state)?, "max")?,
                    int_of(r.eval(state)?, "max")?,
                );
                Ok(Value::Int(l.max(r)))
            }
        }
    }

    /// Collect the data items (free variables) of the term into `out`.
    pub fn collect_vars(&self, out: &mut ItemSet) {
        match self {
            Term::Const(_) => {}
            Term::Var(item) => {
                out.insert(*item);
            }
            Term::Add(l, r)
            | Term::Sub(l, r)
            | Term::Mul(l, r)
            | Term::Min(l, r)
            | Term::Max(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Term::Neg(t) | Term::Abs(t) => t.collect_vars(out),
        }
    }
}

/// Comparison operators of the constraint language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl Cmp {
    /// Apply the comparison to two values. `=`/`≠` work on any equal
    /// types; the order comparisons require two ints or two strings.
    pub fn apply(self, l: &Value, r: &Value) -> Result<bool> {
        use std::cmp::Ordering;
        let ord = match (l, r) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => {
                return Err(CoreError::TypeError {
                    expected: "matching types",
                    found: "mixed types",
                    context: "comparison",
                })
            }
        };
        Ok(match self {
            Cmp::Eq => ord == Ordering::Equal,
            Cmp::Ne => ord != Ordering::Equal,
            Cmp::Lt => ord == Ordering::Less,
            Cmp::Le => ord != Ordering::Greater,
            Cmp::Gt => ord == Ordering::Greater,
            Cmp::Ge => ord != Ordering::Less,
        })
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A quantifier-free first-order formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// Always true.
    True,
    /// Always false.
    False,
    /// An atomic comparison `t1 ⋈ t2`.
    Atom(Term, Cmp, Term),
    /// Conjunction of subformulae.
    And(Vec<Formula>),
    /// Disjunction of subformulae.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Implication `p → q` (the paper's Example 2 uses `a>0 → b>0`).
    Implies(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// `t1 = t2`.
    pub fn eq(l: Term, r: Term) -> Formula {
        Formula::Atom(l, Cmp::Eq, r)
    }

    /// `t1 ≠ t2`.
    pub fn ne(l: Term, r: Term) -> Formula {
        Formula::Atom(l, Cmp::Ne, r)
    }

    /// `t1 < t2`.
    pub fn lt(l: Term, r: Term) -> Formula {
        Formula::Atom(l, Cmp::Lt, r)
    }

    /// `t1 ≤ t2`.
    pub fn le(l: Term, r: Term) -> Formula {
        Formula::Atom(l, Cmp::Le, r)
    }

    /// `t1 > t2`.
    pub fn gt(l: Term, r: Term) -> Formula {
        Formula::Atom(l, Cmp::Gt, r)
    }

    /// `t1 ≥ t2`.
    pub fn ge(l: Term, r: Term) -> Formula {
        Formula::Atom(l, Cmp::Ge, r)
    }

    /// `p ∧ q ∧ …`.
    pub fn and(parts: Vec<Formula>) -> Formula {
        Formula::And(parts)
    }

    /// `p ∨ q ∨ …`.
    pub fn or(parts: Vec<Formula>) -> Formula {
        Formula::Or(parts)
    }

    /// `¬p`.
    #[allow(clippy::should_implement_trait)] // fluent builder, not operator overloading
    pub fn not(p: Formula) -> Formula {
        Formula::Not(Box::new(p))
    }

    /// `p → q`.
    pub fn implies(p: Formula, q: Formula) -> Formula {
        Formula::Implies(Box::new(p), Box::new(q))
    }

    /// Evaluate under `state`; errors if a needed item is unassigned.
    pub fn eval(&self, state: &DbState) -> Result<bool> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(l, cmp, r) => cmp.apply(&l.eval(state)?, &r.eval(state)?),
            Formula::And(parts) => {
                for p in parts {
                    if !p.eval(state)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(parts) => {
                for p in parts {
                    if p.eval(state)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Not(p) => Ok(!p.eval(state)?),
            Formula::Implies(p, q) => Ok(!p.eval(state)? || q.eval(state)?),
        }
    }

    /// The set of data items the formula mentions.
    pub fn vars(&self) -> ItemSet {
        let mut out = ItemSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut ItemSet) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
            Formula::Not(p) => p.collect_vars(out),
            Formula::Implies(p, q) => {
                p.collect_vars(out);
                q.collect_vars(out);
            }
        }
    }
}

/// One conjunct `C_e` of the integrity constraint, with its data set
/// `d_e` (= the formula's free variables) cached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conjunct {
    id: ConjunctId,
    formula: Formula,
    items: ItemSet,
}

impl Conjunct {
    /// Wrap a formula as conjunct number `id`.
    pub fn new(id: u32, formula: Formula) -> Conjunct {
        let items = formula.vars();
        Conjunct {
            id: ConjunctId(id),
            formula,
            items,
        }
    }

    /// The conjunct's identifier.
    pub fn id(&self) -> ConjunctId {
        self.id
    }

    /// The conjunct's formula `C_e`.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The data set `d_e` over which the conjunct is defined.
    pub fn items(&self) -> &ItemSet {
        &self.items
    }

    /// Evaluate `C_e` under `state`.
    pub fn eval(&self, state: &DbState) -> Result<bool> {
        self.formula.eval(state)
    }
}

/// The integrity constraint `IC = C_1 ∧ C_2 ∧ … ∧ C_l`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntegrityConstraint {
    conjuncts: Vec<Conjunct>,
    disjoint: bool,
}

impl IntegrityConstraint {
    /// Build an IC, **requiring** the conjunct data sets to be pairwise
    /// disjoint (the paper's standing assumption, needed by Lemma 1 and
    /// all three theorems).
    pub fn new(conjuncts: Vec<Conjunct>) -> Result<IntegrityConstraint> {
        if conjuncts.is_empty() {
            return Err(CoreError::EmptyConstraint);
        }
        for i in 0..conjuncts.len() {
            for j in (i + 1)..conjuncts.len() {
                if let Some(item) = conjuncts[i].items().common_item(conjuncts[j].items()) {
                    return Err(CoreError::OverlappingConjuncts { item });
                }
            }
        }
        Ok(IntegrityConstraint {
            conjuncts,
            disjoint: true,
        })
    }

    /// Build an IC *without* the disjointness check — needed to express
    /// the paper's Example 5, which demonstrates that overlapping
    /// conjuncts break the theorems.
    pub fn new_unchecked(conjuncts: Vec<Conjunct>) -> Result<IntegrityConstraint> {
        if conjuncts.is_empty() {
            return Err(CoreError::EmptyConstraint);
        }
        let disjoint = {
            let mut ok = true;
            'outer: for i in 0..conjuncts.len() {
                for j in (i + 1)..conjuncts.len() {
                    if !conjuncts[i].items().is_disjoint(conjuncts[j].items()) {
                        ok = false;
                        break 'outer;
                    }
                }
            }
            ok
        };
        Ok(IntegrityConstraint {
            conjuncts,
            disjoint,
        })
    }

    /// Are the conjunct data sets pairwise disjoint?
    pub fn is_disjoint(&self) -> bool {
        self.disjoint
    }

    /// The conjuncts `C_1 … C_l`.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// `l`, the number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// Always false: a constructed IC has at least one conjunct.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// The union `d_1 ∪ … ∪ d_l` of all constrained items.
    pub fn all_items(&self) -> ItemSet {
        let mut out = ItemSet::new();
        for c in &self.conjuncts {
            out = out.union(c.items());
        }
        out
    }

    /// The conjunct whose data set contains `item` (the first match if
    /// conjuncts overlap), if any.
    pub fn conjunct_of(&self, item: ItemId) -> Option<&Conjunct> {
        self.conjuncts.iter().find(|c| c.items().contains(item))
    }

    /// Every conjunct containing `item` (≥ 2 only when overlapping).
    pub fn conjuncts_of(&self, item: ItemId) -> impl Iterator<Item = &Conjunct> + '_ {
        self.conjuncts
            .iter()
            .filter(move |c| c.items().contains(item))
    }

    /// `DS ⊨ IC`: evaluate the whole conjunction on a state that must
    /// assign every constrained item.
    pub fn eval(&self, state: &DbState) -> Result<bool> {
        for c in &self.conjuncts {
            if !c.eval(state)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ItemId {
        ItemId(n)
    }

    fn st(pairs: &[(u32, i64)]) -> DbState {
        DbState::from_pairs(pairs.iter().map(|&(i, v)| (id(i), Value::Int(v))))
    }

    #[test]
    fn term_arithmetic() {
        let s = st(&[(0, 3), (1, -4)]);
        let t = Term::var(id(0)).add(Term::var(id(1)).abs()); // 3 + |−4| = 7
        assert_eq!(t.eval(&s).unwrap(), Value::Int(7));
        let t = Term::var(id(0)).mul(Term::int(2)).sub(Term::int(1)); // 3*2−1
        assert_eq!(t.eval(&s).unwrap(), Value::Int(5));
        let t = Term::var(id(0)).min(Term::var(id(1))).max(Term::int(-10));
        assert_eq!(t.eval(&s).unwrap(), Value::Int(-4));
        assert_eq!(Term::var(id(1)).neg().eval(&s).unwrap(), Value::Int(4));
    }

    #[test]
    fn term_missing_var() {
        let s = st(&[]);
        assert!(matches!(
            Term::var(id(0)).eval(&s),
            Err(CoreError::MissingItem(_))
        ));
    }

    #[test]
    fn term_type_error() {
        let mut s = DbState::new();
        s.set(id(0), Value::str("x"));
        let t = Term::var(id(0)).add(Term::int(1));
        assert!(matches!(t.eval(&s), Err(CoreError::TypeError { .. })));
    }

    #[test]
    fn term_overflow() {
        let s = st(&[(0, i64::MAX)]);
        let t = Term::var(id(0)).add(Term::int(1));
        assert_eq!(t.eval(&s), Err(CoreError::Overflow));
    }

    #[test]
    fn comparisons() {
        assert!(Cmp::Lt.apply(&Value::Int(1), &Value::Int(2)).unwrap());
        assert!(Cmp::Ge.apply(&Value::Int(2), &Value::Int(2)).unwrap());
        assert!(Cmp::Eq
            .apply(&Value::str("Jim"), &Value::str("Jim"))
            .unwrap());
        assert!(Cmp::Lt.apply(&Value::str("a"), &Value::str("b")).unwrap());
        assert!(Cmp::Eq.apply(&Value::Int(1), &Value::str("1")).is_err());
    }

    #[test]
    fn paper_ic_a_eq_b() {
        // §2.1 example: IC = (a=b); DS1={(a,5),(b,5)} consistent,
        // DS2={(a,5),(b,6)} not.
        let ic = Formula::eq(Term::var(id(0)), Term::var(id(1)));
        assert!(ic.eval(&st(&[(0, 5), (1, 5)])).unwrap());
        assert!(!ic.eval(&st(&[(0, 5), (1, 6)])).unwrap());
    }

    #[test]
    fn implication_and_vars() {
        // Example 2's C1 = (a>0 → b>0).
        let c1 = Formula::implies(
            Formula::gt(Term::var(id(0)), Term::int(0)),
            Formula::gt(Term::var(id(1)), Term::int(0)),
        );
        assert!(c1.eval(&st(&[(0, -1), (1, -1)])).unwrap()); // vacuous
        assert!(!c1.eval(&st(&[(0, 1), (1, -1)])).unwrap());
        assert!(c1.eval(&st(&[(0, 1), (1, 1)])).unwrap());
        let vars = c1.vars();
        assert!(vars.contains(id(0)) && vars.contains(id(1)) && vars.len() == 2);
    }

    #[test]
    fn and_or_not_shortcircuit() {
        let f = Formula::or(vec![
            Formula::True,
            // Would error if evaluated (missing item).
            Formula::gt(Term::var(id(9)), Term::int(0)),
        ]);
        assert!(f.eval(&DbState::new()).unwrap());
        let f = Formula::and(vec![
            Formula::False,
            Formula::gt(Term::var(id(9)), Term::int(0)),
        ]);
        assert!(!f.eval(&DbState::new()).unwrap());
        let f = Formula::not(Formula::False);
        assert!(f.eval(&DbState::new()).unwrap());
    }

    #[test]
    fn disjoint_ic_accepted() {
        let c1 = Conjunct::new(0, Formula::gt(Term::var(id(0)), Term::int(0)));
        let c2 = Conjunct::new(1, Formula::gt(Term::var(id(1)), Term::int(0)));
        let ic = IntegrityConstraint::new(vec![c1, c2]).unwrap();
        assert!(ic.is_disjoint());
        assert_eq!(ic.len(), 2);
        assert_eq!(ic.conjunct_of(id(1)).unwrap().id(), ConjunctId(1));
        assert!(ic.conjunct_of(id(7)).is_none());
    }

    #[test]
    fn overlapping_ic_rejected_by_checked_ctor() {
        // Example 5 conjuncts (a>b) and (a=c) share item a.
        let c1 = Conjunct::new(0, Formula::gt(Term::var(id(0)), Term::var(id(1))));
        let c2 = Conjunct::new(1, Formula::eq(Term::var(id(0)), Term::var(id(2))));
        let err = IntegrityConstraint::new(vec![c1.clone(), c2.clone()]).unwrap_err();
        assert!(matches!(err, CoreError::OverlappingConjuncts { item } if item == id(0)));
        let ic = IntegrityConstraint::new_unchecked(vec![c1, c2]).unwrap();
        assert!(!ic.is_disjoint());
        assert_eq!(ic.conjuncts_of(id(0)).count(), 2);
    }

    #[test]
    fn empty_ic_rejected() {
        assert!(matches!(
            IntegrityConstraint::new(vec![]),
            Err(CoreError::EmptyConstraint)
        ));
    }

    #[test]
    fn ic_eval_conjunction() {
        let c1 = Conjunct::new(0, Formula::gt(Term::var(id(0)), Term::int(0)));
        let c2 = Conjunct::new(1, Formula::gt(Term::var(id(1)), Term::int(0)));
        let ic = IntegrityConstraint::new(vec![c1, c2]).unwrap();
        assert!(ic.eval(&st(&[(0, 1), (1, 1)])).unwrap());
        assert!(!ic.eval(&st(&[(0, 1), (1, -1)])).unwrap());
        assert_eq!(ic.all_items().len(), 2);
    }
}
