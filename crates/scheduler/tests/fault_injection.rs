//! The deterministic fault plane, end to end: seeded faults injected
//! beneath the WAL sink and into the OCC executor, and the
//! self-healing machinery that contains them — error policies that
//! retry or degrade instead of silently dropping records, transaction
//! deadlines with a zombie reaper, and per-worker panic containment.

use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
use pwsr_core::ids::TxnId;
use pwsr_core::monitor::AdmissionLevel;
use pwsr_core::state::{DbState, ItemSet};
use pwsr_core::value::{Domain, Value};
use pwsr_durability::fault::{ExecFault, FaultPlan, WalFault, WalSite};
use pwsr_durability::recover::recover;
use pwsr_durability::wal::{SharedWal, SyncPolicy, Wal, WalErrorPolicy};
use pwsr_scheduler::concurrent::{replay_matches, run_threaded_occ_tuned, OccTuning};
use pwsr_scheduler::error::SchedError;
use pwsr_scheduler::exec::{run_workload, ExecConfig};
use pwsr_scheduler::policy::{MonitorSpec, PolicySpec};
use pwsr_tplang::ast::Program;
use pwsr_tplang::parser::parse_program;

fn setup() -> (Catalog, IntegrityConstraint, DbState) {
    let mut cat = Catalog::new();
    let a0 = cat.add_item("a0", Domain::int_range(-1000, 1000));
    let b0 = cat.add_item("b0", Domain::int_range(-1000, 1000));
    let ic = IntegrityConstraint::new(vec![Conjunct::new(
        0,
        Formula::le(Term::var(a0), Term::var(b0)),
    )])
    .unwrap();
    let initial = DbState::from_pairs([(a0, Value::Int(0)), (b0, Value::Int(100))]);
    (cat, ic, initial)
}

fn scopes_of(ic: &IntegrityConstraint) -> Vec<ItemSet> {
    ic.conjuncts().iter().map(|c| c.items().clone()).collect()
}

/// `n` transactions all incrementing the same hot item: every pair
/// conflicts, so one stalled writer blocks everyone behind it.
fn hot_increments(n: usize) -> Vec<Program> {
    (0..n)
        .map(|k| parse_program(&format!("H{k}"), "a0 := a0 + 1;").unwrap())
        .collect()
}

fn occ_spec(ic: &IntegrityConstraint, wal: Option<SharedWal>) -> MonitorSpec {
    MonitorSpec {
        scopes: scopes_of(ic),
        level: AdmissionLevel::Pwsr,
        certificate: None,
        wal,
        compact_every: 0,
    }
}

/// A stalled writer (no deadlines armed) must not wedge the pool or
/// lose a wakeup: waiters park on the stripe condvar, the stall ends
/// well inside the park budget, and every increment lands.
#[test]
fn stalled_writer_no_lost_wakeup() {
    let (cat, ic, initial) = setup();
    // Access 1 of H0 is the write of a0: the stall holds the dirty
    // mark for 30ms while five other writers wait.
    let plan = FaultPlan::new()
        .on_access(1, 1, ExecFault::Stall { ms: 30 })
        .share();
    let tuning = OccTuning {
        dirty_spin: 4,
        park_budget: 4096,
        park_timeout_us: 200,
        faults: Some(plan.clone()),
        ..OccTuning::default()
    };
    let out = run_threaded_occ_tuned(
        &hot_increments(6),
        &cat,
        &initial,
        &occ_spec(&ic, None),
        4,
        10_000,
        &tuning,
    )
    .unwrap();
    assert_eq!(plan.remaining(), 0, "the stall point must fire");
    assert_eq!(out.metrics.injected_faults, 1);
    assert_eq!(out.metrics.zombie_reaps, 0, "no deadlines, no reaps");
    assert_eq!(
        out.final_state.get(cat.lookup("a0").unwrap()),
        Some(&Value::Int(6)),
        "all six increments survive a 30ms stall: {}",
        out.schedule
    );
    out.schedule.check_read_coherence(&initial).unwrap();
}

/// With deadlines armed, a writer stalled far past its deadline is
/// reaped by a waiter: its write is rolled back, its suffix retracted,
/// the pool progresses, and the victim's retry still lands — nothing
/// is lost, and the run records the reap.
#[test]
fn zombie_reap_restores_progress() {
    let (cat, ic, initial) = setup();
    let plan = FaultPlan::new()
        .on_access(1, 1, ExecFault::Stall { ms: 60 })
        .share();
    let tuning = OccTuning {
        dirty_spin: 4,
        park_budget: 4096,
        park_timeout_us: 200,
        // 3ms deadline versus a 60ms stall: the victim is a zombie
        // for ~95% of its stall.
        txn_deadline_us: 3_000,
        faults: Some(plan.clone()),
        ..OccTuning::default()
    };
    let out = run_threaded_occ_tuned(
        &hot_increments(6),
        &cat,
        &initial,
        &occ_spec(&ic, None),
        4,
        10_000,
        &tuning,
    )
    .unwrap();
    assert_eq!(plan.remaining(), 0);
    assert!(
        out.metrics.zombie_reaps >= 1,
        "the stalled writer must be reaped: {}",
        out.metrics
    );
    assert!(out.metrics.txn_timeouts >= 1);
    assert_eq!(
        out.final_state.get(cat.lookup("a0").unwrap()),
        Some(&Value::Int(6)),
        "reap + retry loses no update: {}",
        out.schedule
    );
    out.schedule.check_read_coherence(&initial).unwrap();
    assert_eq!(out.final_state, out.schedule.apply(&initial));
}

/// A worker panic mid-transaction is contained: the dead transaction's
/// operations vanish (suffix retracted, writes rolled back), every
/// surviving transaction's subsequence still replays its program, and
/// the published store equals replaying the recorded schedule.
#[test]
fn panicked_worker_containment() {
    let (cat, ic, initial) = setup();
    for fault in [ExecFault::Panic, ExecFault::PanicInStripe] {
        // H2 (TxnId 3) dies at its write access.
        let plan = FaultPlan::new().on_access(3, 1, fault).share();
        let tuning = OccTuning {
            faults: Some(plan.clone()),
            ..OccTuning::default()
        };
        let programs = hot_increments(6);
        let out = run_threaded_occ_tuned(
            &programs,
            &cat,
            &initial,
            &occ_spec(&ic, None),
            3,
            10_000,
            &tuning,
        )
        .unwrap();
        assert_eq!(plan.remaining(), 0, "{fault:?} must fire");
        assert_eq!(out.metrics.worker_panics, 1, "{fault:?} contained once");
        let victim = TxnId(3);
        assert!(
            out.schedule.ops().iter().all(|o| o.txn != victim),
            "the dead transaction leaves no trace: {}",
            out.schedule
        );
        // Survivors must be byte-identical to a replay of their
        // programs against the recorded interleaving.
        for (k, program) in programs.iter().enumerate() {
            let txn = TxnId(k as u32 + 1);
            if txn == victim {
                continue;
            }
            let mine: Vec<_> = out
                .schedule
                .ops()
                .iter()
                .filter(|o| o.txn == txn)
                .cloned()
                .collect();
            assert!(
                replay_matches(program, &cat, txn, &mine),
                "{fault:?}: survivor {txn} must replay: {}",
                out.schedule
            );
        }
        assert_eq!(
            out.final_state,
            out.schedule.apply(&initial),
            "{fault:?}: store equals schedule replay"
        );
        assert_eq!(
            out.final_state.get(cat.lookup("a0").unwrap()),
            Some(&Value::Int(5)),
            "{fault:?}: exactly the victim's increment is missing"
        );
        out.schedule.check_read_coherence(&initial).unwrap();
    }
}

fn wal_file(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pwsr_fault_{}_{name}.wal", std::process::id()))
}

/// A short write under the fail-stop policy surfaces as
/// `SchedError::WalFailed` from the lock-based executor — never a
/// silent drop — and the intact log prefix still recovers.
#[test]
fn fail_stop_surfaces_through_executor() {
    let (cat, ic, initial) = setup();
    let path = wal_file("failstop");
    let plan = FaultPlan::new()
        .on_wal(WalSite::Append, 3, WalFault::ShortWrite { keep: 5 })
        .share();
    let wal = SharedWal::new(
        Wal::create(&path, SyncPolicy::PerRecord)
            .unwrap()
            .with_error_policy(WalErrorPolicy::FailStop)
            .with_faults(plan.clone()),
    );
    let policy = PolicySpec::predicate_wise_2pl(&ic)
        .monitor_admission(&ic, AdmissionLevel::Pwsr)
        .durable(wal.clone());
    let err = run_workload(
        &hot_increments(4),
        &cat,
        &initial,
        &policy,
        &ExecConfig::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, SchedError::WalFailed { .. }),
        "fail-stop must refuse success: {err}"
    );
    assert_eq!(plan.remaining(), 0);
    assert!(wal.stats().dropped_records > 0, "drops are counted");
    // The valid prefix before the torn frame recovers cleanly; the
    // torn frame itself is detected, not replayed.
    wal.sync();
    let disk = std::fs::read(&path).unwrap();
    let rec = recover(scopes_of(&ic), None, &disk).unwrap();
    assert!(rec.corruption.is_some(), "the torn frame is detected");
    assert_eq!(rec.records_applied, 3, "exactly the intact prefix");
    let _ = std::fs::remove_file(&path);
}

/// The retry policy repairs a torn frame in place: the run succeeds,
/// the incident is visible in `wal_io_errors`, and the log replays to
/// the full monitored schedule as if nothing happened.
#[test]
fn retry_policy_heals_through_executor() {
    let (cat, ic, initial) = setup();
    let path = wal_file("retry");
    let plan = FaultPlan::new()
        .on_wal(WalSite::Append, 2, WalFault::ShortWrite { keep: 3 })
        .share();
    let wal = SharedWal::new(
        Wal::create(&path, SyncPolicy::PerRecord)
            .unwrap()
            .with_error_policy(WalErrorPolicy::RetryBackoff {
                attempts: 4,
                cap_us: 50,
            })
            .with_faults(plan.clone()),
    );
    let policy = PolicySpec::predicate_wise_2pl(&ic)
        .monitor_admission(&ic, AdmissionLevel::Pwsr)
        .durable(wal.clone());
    let out = run_workload(
        &hot_increments(4),
        &cat,
        &initial,
        &policy,
        &ExecConfig::default(),
    )
    .unwrap();
    assert_eq!(plan.remaining(), 0);
    assert!(out.metrics.wal_io_errors >= 1, "the incident is counted");
    assert!(out.metrics.injected_faults >= 1);
    let bytes = wal.dump_bytes().unwrap();
    let rec = recover(scopes_of(&ic), None, &bytes).unwrap();
    assert!(rec.corruption.is_none(), "the heal leaves no torn frame");
    assert_eq!(
        rec.monitor.schedule().ops(),
        out.schedule.ops(),
        "healed log replays the full schedule"
    );
    let _ = std::fs::remove_file(&path);
}

/// The degrade policy abandons a failing sink for an in-memory one
/// mid-run: the run succeeds and `dump_bytes` (file prefix + memory
/// tail) still replays the full schedule — no record is lost.
#[test]
fn degrade_policy_loses_nothing_through_executor() {
    let (cat, ic, initial) = setup();
    let path = wal_file("degrade");
    let plan = FaultPlan::new()
        .on_wal(WalSite::Append, 4, WalFault::ShortWrite { keep: 2 })
        .share();
    let wal = SharedWal::new(
        Wal::create(&path, SyncPolicy::PerRecord)
            .unwrap()
            .with_error_policy(WalErrorPolicy::DegradeToMemory)
            .with_faults(plan.clone()),
    );
    let policy = PolicySpec::predicate_wise_2pl(&ic)
        .monitor_admission(&ic, AdmissionLevel::Pwsr)
        .durable(wal.clone());
    let out = run_workload(
        &hot_increments(4),
        &cat,
        &initial,
        &policy,
        &ExecConfig::default(),
    )
    .unwrap();
    assert_eq!(plan.remaining(), 0);
    assert!(wal.stats().degraded, "the sink degraded to memory");
    assert!(out.metrics.wal_io_errors >= 1);
    let bytes = wal.dump_bytes().unwrap();
    let rec = recover(scopes_of(&ic), None, &bytes).unwrap();
    assert!(rec.corruption.is_none());
    assert_eq!(
        rec.monitor.schedule().ops(),
        out.schedule.ops(),
        "file prefix + memory tail replays the full schedule"
    );
    let _ = std::fs::remove_file(&path);
}

/// The OCC executor under a fail-stop WAL fault also refuses success.
#[test]
fn occ_fail_stop_surfaces() {
    let (cat, ic, initial) = setup();
    let plan = FaultPlan::new()
        .on_wal(WalSite::Append, 2, WalFault::ShortWrite { keep: 1 })
        .share();
    let wal = SharedWal::new(
        Wal::in_memory(SyncPolicy::Off)
            .with_error_policy(WalErrorPolicy::FailStop)
            .with_faults(plan.clone()),
    );
    let tuning = OccTuning::default();
    let err = run_threaded_occ_tuned(
        &hot_increments(4),
        &cat,
        &initial,
        &occ_spec(&ic, Some(wal)),
        2,
        10_000,
        &tuning,
    )
    .unwrap_err();
    assert!(
        matches!(err, SchedError::WalFailed { .. }),
        "OCC fail-stop must refuse success: {err}"
    );
    assert_eq!(plan.remaining(), 0);
}
