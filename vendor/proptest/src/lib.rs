//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use, as a *generation-only* framework: strategies produce random
//! values from a deterministic per-test RNG, assertion macros abort the
//! case with a message, and failing cases report their seed — but there
//! is **no shrinking**. Reproduce a failure by re-running with
//! `PROPTEST_SEED=<printed seed>`.
//!
//! Surface covered: [`Strategy`] (`prop_map`, `prop_recursive`,
//! `prop_filter`, `boxed`), ranges and tuples as strategies, [`any`],
//! [`collection`] (`vec`, `btree_map`, `btree_set`), [`sample`]
//! (`subsequence`, `select`), [`strategy::Just`] / [`strategy::Union`],
//! and the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!` macros.
//!
//! Environment knobs:
//! * `PROPTEST_CASES` — cases per test (default: config's, itself 64).
//! * `PROPTEST_SEED` — base seed (default 0); case `k` of test `t` uses
//!   a seed derived from (base, t, k).

use std::marker::PhantomData;
use std::sync::Arc;

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped, not failed.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(_reason: impl Into<String>) -> Self {
            TestCaseError::Reject
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Maximum ratio of `prop_assume!` rejections to requested cases
        /// before the test errors out as vacuous.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }
}

use test_runner::{ProptestConfig, TestCaseError, TestRng};

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a seeded generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Recursive strategies: `f` maps a strategy for the inner level to a
    /// strategy for one level up; `depth` bounds the nesting. At each
    /// level the generator picks 50/50 between the leaf and the deeper
    /// strategy, so all depths up to the bound are exercised.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = f(cur).boxed();
            cur = strategy::Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: resamples until the predicate passes (bounded).
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: predicate rejected 1000 samples ({})",
            self.whence
        )
    }
}

// Ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::random_range(rng, self.clone())
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rand::RngCore::next_f64(rng)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Explicit strategy combinators
// ---------------------------------------------------------------------

pub mod strategy {
    use super::*;

    pub use super::{BoxedStrategy, Filter, Map, Strategy};

    /// Always produces a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-valued strategies (what `prop_oneof!`
    /// expands to).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "Union of zero strategies");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rand::Rng::random_range(rng, 0..self.variants.len());
            self.variants[k].generate(rng)
        }
    }
}

pub use strategy::Just;

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// Inclusive-lo, exclusive-hi size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        pub fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rand::Rng::random_range(rng, self.lo..self.hi)
            }
        }

        pub fn lo(&self) -> usize {
            self.lo
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: (*r.end()).max(*r.start()) + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Key collisions collapse, so the result can be smaller than
            // the sampled target — same contract as real proptest.
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 8 + 8 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 8 + 8 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Sampling helpers
// ---------------------------------------------------------------------

pub mod sample {
    use super::collection::SizeRange;
    use super::*;

    /// Order-preserving random subsequences of `items` with length drawn
    /// from `size`.
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.sample(rng).min(self.items.len());
            // Reservoir-select `want` indices, then emit in order.
            let mut picked: Vec<usize> = (0..self.items.len()).collect();
            // Partial Fisher–Yates over index positions.
            for i in 0..want {
                let j = rand::Rng::random_range(rng, i..picked.len());
                picked.swap(i, j);
            }
            let mut idx: Vec<usize> = picked[..want].to_vec();
            idx.sort_unstable();
            idx.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }

    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }

    /// Uniform choice of one element.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rand::Rng::random_range(rng, 0..self.items.len());
            self.items[k].clone()
        }
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }
}

// ---------------------------------------------------------------------
// Runner plumbing used by the proptest! expansion
// ---------------------------------------------------------------------

#[doc(hidden)]
pub mod __runner {
    use super::*;
    use rand::SeedableRng;

    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    pub fn cases(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases)
    }

    /// Stable per-(test, case) seed derivation.
    pub fn case_seed(base: u64, test_name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn rng_for(seed: u64) -> TestRng {
        TestRng::seed_from_u64(seed)
    }

    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = base_seed();
        let want = cases(config) as u64;
        let mut passed = 0u64;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while passed < want {
            let seed = case_seed(base, test_name, attempt);
            attempt += 1;
            let mut rng = rng_for(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects as u64 {
                        panic!(
                            "{test_name}: too many prop_assume! rejections \
                             ({rejected} rejects for {passed}/{want} passes) — \
                             the property is vacuous under this generator"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: property failed at case {attempt} \
                         (PROPTEST_SEED={base}, case seed {seed:#x}):\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The test-block macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::__runner::run(stringify!($name), &config, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), rng);)*
                (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3i64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(0i64..10, 2..5),
            s in crate::collection::btree_set(0u32..100, 0..6),
            sub in crate::sample::subsequence(vec![1, 2, 3, 4, 5], 1..4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(s.len() < 6);
            prop_assert!(!sub.is_empty() && sub.len() < 4);
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &sub, "subsequence preserves order");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_and_recursive_terminate(x in arb_depth()) {
            prop_assert!(x <= 3);
        }
    }

    fn arb_depth() -> impl Strategy<Value = u32> {
        Just(0u32).prop_recursive(3, 8, 2, |inner| inner.prop_map(|d| (d + 1).min(3)))
    }
}
