//! Twin-harness properties for the batched admission path.
//!
//! One monitor ingests every transaction's operations through
//! `push_batch` (amortized tickets, segment-reserved appends, one
//! undo-delta run per batch); its twin ingests the identical operation
//! sequence through singleton `push`. The two must be byte-identical
//! at **every boundary** — per-operation `PushOutcome` flags, verdict
//! ladder, per-conjunct Lemma 2/6 certificates, undo-log floors — and
//! must stay identical when batches are split by the three suffix /
//! prefix surgeries: `truncate_to`, `retract_txn`, and `compact`.

use proptest::prelude::*;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::monitor::sharded::ShardedMonitor;
use pwsr_core::monitor::OnlineMonitor;
use pwsr_core::op::Operation;
use pwsr_core::state::ItemSet;
use pwsr_core::txn::Transaction;
use pwsr_core::value::Value;

const MAX_ITEMS: u32 = 6;

/// Random well-formed transactions over items `0..MAX_ITEMS` (same
/// construction as `sharded_props.rs`: per item at most one read then
/// one write, so every suffix of a transaction is §2.2-valid even
/// after a truncation removed its prefix).
fn arb_transactions(n_txns: u32) -> impl Strategy<Value = Vec<Transaction>> {
    let per_txn = proptest::collection::btree_map(
        0..MAX_ITEMS,
        (any::<bool>(), any::<bool>(), -20i64..20),
        1..=MAX_ITEMS as usize,
    );
    proptest::collection::vec(per_txn, n_txns as usize).prop_map(move |txn_specs| {
        txn_specs
            .into_iter()
            .enumerate()
            .map(|(k, spec)| {
                let txn = TxnId(k as u32 + 1);
                let mut ops = Vec::new();
                for (item, (do_read, do_write, v)) in spec {
                    if do_read {
                        ops.push(Operation::read(txn, ItemId(item), Value::Int(v)));
                    }
                    if do_write || !do_read {
                        ops.push(Operation::write(txn, ItemId(item), Value::Int(v + 1)));
                    }
                }
                Transaction::new(txn, ops).expect("respects §2.2")
            })
            .collect()
    })
}

/// Two scopes carved out of the item universe by bitmasks.
fn scopes_from_bits(d1_bits: u32, d2_bits: u32) -> Vec<ItemSet> {
    let d1: ItemSet = (0..MAX_ITEMS)
        .filter(|i| d1_bits & (1 << i) != 0)
        .map(ItemId)
        .collect();
    let d2: ItemSet = (0..MAX_ITEMS)
        .filter(|i| d2_bits & (1 << i) != 0 && d1_bits & (1 << i) == 0)
        .map(ItemId)
        .collect();
    vec![d1, d2]
}

/// Split each transaction into contiguous program-order runs (batch
/// sizes 1..=4 drawn from `sizes`), then interleave the runs across
/// transactions by the `mix` byte stream — per-transaction run order
/// is preserved, which is exactly what the executors guarantee.
fn interleaved_runs(txns: &[Transaction], sizes: &[u8], mix: &[u8]) -> Vec<Vec<Operation>> {
    let mut si = 0usize;
    let mut queues: Vec<Vec<Vec<Operation>>> = txns
        .iter()
        .map(|t| {
            let mut runs = Vec::new();
            let mut rest = t.ops();
            while !rest.is_empty() {
                let k = (1 + (sizes.get(si).copied().unwrap_or(0) as usize) % 4).min(rest.len());
                si += 1;
                runs.push(rest[..k].to_vec());
                rest = &rest[k..];
            }
            runs.reverse(); // pop() yields program order
            runs
        })
        .collect();
    let total: usize = queues.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut mi = 0usize;
    while out.len() < total {
        let pick = (mix.get(mi).copied().unwrap_or(0) as usize) % queues.len();
        mi += 1;
        for off in 0..queues.len() {
            let k = (pick + off) % queues.len();
            if let Some(run) = queues[k].pop() {
                out.push(run);
                break;
            }
        }
    }
    out
}

/// Every observable the twins expose must agree.
fn assert_twins_agree(
    batched: &ShardedMonitor,
    singleton: &ShardedMonitor,
    n_scopes: usize,
    at: &str,
) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(batched.len(), singleton.len(), "len at {}", at);
    prop_assert_eq!(batched.verdict(), singleton.verdict(), "verdict at {}", at);
    prop_assert_eq!(batched.floor(), singleton.floor(), "floor at {}", at);
    prop_assert_eq!(
        batched.log_floor(),
        singleton.log_floor(),
        "undo floor at {}",
        at
    );
    for k in 0..n_scopes {
        prop_assert_eq!(
            batched.lemma2_holds(k),
            singleton.lemma2_holds(k),
            "Lemma 2, scope {} at {}",
            k,
            at
        );
        prop_assert_eq!(
            batched.lemma6_holds(k),
            singleton.lemma6_holds(k),
            "Lemma 6, scope {} at {}",
            k,
            at
        );
    }
    Ok(())
}

proptest! {
    /// **Sharded twins.** Batched vs singleton admission of the same
    /// run sequence, with random boundary surgeries between runs:
    /// truncations, per-transaction retractions, and checkpointed
    /// compactions — applied identically to both twins. Byte-identical
    /// per-op `PushOutcome`s, verdicts, certificates, and floors at
    /// every boundary.
    #[test]
    fn sharded_batch_twin_matches_singleton(
        txns in arb_transactions(5),
        sizes in proptest::collection::vec(any::<u8>(), 0..48),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        events in proptest::collection::vec(any::<u8>(), 0..48),
        d1_bits in 0u32..64,
        d2_bits in 0u32..64,
    ) {
        let scopes = scopes_from_bits(d1_bits, d2_bits);
        let runs = interleaved_runs(&txns, &sizes, &mix);
        let batched = ShardedMonitor::new_logged(scopes.clone());
        let singleton = ShardedMonitor::new_logged(scopes.clone());
        let mut pushed: std::collections::HashMap<TxnId, usize> =
            txns.iter().map(|t| (t.id(), 0)).collect();
        let mut summarized_prefix = false;
        for (i, run) in runs.iter().enumerate() {
            if batched.is_summarized(run[0].txn) {
                // A surgery below summarized a transaction with runs
                // still queued: both twins must refuse the batch.
                prop_assert!(batched.push_batch(run).is_err());
                prop_assert!(singleton.push(run[0].clone()).is_err());
                continue;
            }
            let a = batched.push_batch(run).expect("valid run");
            let b: Vec<_> = run
                .iter()
                .map(|op| singleton.push_outcome(op.clone()).expect("valid run"))
                .collect();
            prop_assert_eq!(&a, &b, "PushOutcome run diverged at run {}", i);
            *pushed.get_mut(&run[0].txn).unwrap() += run.len();
            assert_twins_agree(&batched, &singleton, scopes.len(), "run boundary")?;

            // Boundary surgery, decided by the event stream.
            let e = events.get(i).copied().unwrap_or(255);
            match e % 8 {
                0 => {
                    // Truncate both to the same cut above the floor.
                    let floor = batched.log_floor();
                    let cut = floor + (e as usize / 8) % (batched.len() - floor + 1);
                    let ua = batched.truncate_to(cut);
                    let ub = singleton.truncate_to(cut);
                    prop_assert_eq!(ua, ub, "truncation undo counts");
                    // The cut may have split earlier batches: reset
                    // the per-txn progress from the surviving schedule.
                    let s = batched.snapshot_schedule();
                    for t in &txns {
                        *pushed.get_mut(&t.id()).unwrap() = s.transaction(t.id()).len();
                    }
                }
                1 => {
                    // Retract one transaction from both twins.
                    let victim = txns[(e as usize / 8) % txns.len()].id();
                    let ra = batched.retract_txn(victim);
                    let rb = singleton.retract_txn(victim);
                    match (ra, rb) {
                        (Ok((ua, ra)), Ok((ub, rb))) => {
                            prop_assert_eq!((ua, ra), (ub, rb), "retraction counts");
                            *pushed.get_mut(&victim).unwrap() = 0;
                        }
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(false, "retract asymmetry: {:?} vs {:?}", a, b),
                    }
                }
                2 => {
                    // Checkpoint past the still-growing transactions,
                    // then compact — identically on both twins.
                    for t in &txns {
                        if pushed[&t.id()] == t.len() && !batched.is_summarized(t.id()) {
                            batched.finish_txn(t.id());
                            singleton.finish_txn(t.id());
                        }
                    }
                    let live: Vec<TxnId> = txns
                        .iter()
                        .map(Transaction::id)
                        .filter(|&t| pushed[&t] < txns[(t.0 - 1) as usize].len())
                        .collect();
                    let fa = batched.checkpoint(live.clone());
                    let fb = singleton.checkpoint(live);
                    prop_assert_eq!(fa, fb, "checkpoint floors");
                    let ca = batched.compact();
                    let cb = singleton.compact();
                    prop_assert_eq!(ca.frontier, cb.frontier, "compaction frontiers");
                    prop_assert_eq!(ca.txns_summarized, cb.txns_summarized);
                    summarized_prefix |= ca.frontier > 0;
                }
                _ => {}
            }
            assert_twins_agree(&batched, &singleton, scopes.len(), "after surgery")?;
        }
        // Final audit: identical recorded schedules, and — whenever no
        // prefix has been summarized away (a fresh replay would then
        // see fewer ops) — the batched schedule replays to the same
        // verdict on a fresh single writer.
        let sa = batched.snapshot_schedule();
        let sb = singleton.snapshot_schedule();
        prop_assert_eq!(sa.ops(), sb.ops(), "recorded schedules diverged");
        if !summarized_prefix {
            let mut replay = OnlineMonitor::new(scopes.clone());
            let mut last = replay.verdict();
            for op in sa.ops() {
                last = replay.push(op.clone()).expect("recorded schedule is valid");
            }
            prop_assert_eq!(last, batched.verdict(), "replay verdict");
            prop_assert!(replay.certify_prefix(), "Lemma 2/6 audit failed");
        }
    }

    /// **Single-writer twins.** `OnlineMonitor::push_batch_logged`
    /// returns the same per-op verdict sequence as `push_logged`, and
    /// the twins stay byte-identical across truncations and
    /// checkpoint-driven compactions splitting the batches.
    #[test]
    fn online_batch_twin_matches_singleton(
        txns in arb_transactions(4),
        sizes in proptest::collection::vec(any::<u8>(), 0..32),
        mix in proptest::collection::vec(any::<u8>(), 0..32),
        events in proptest::collection::vec(any::<u8>(), 0..32),
        d1_bits in 0u32..64,
        d2_bits in 0u32..64,
    ) {
        let scopes = scopes_from_bits(d1_bits, d2_bits);
        let runs = interleaved_runs(&txns, &sizes, &mix);
        let mut batched = OnlineMonitor::new(scopes.clone());
        let mut singleton = OnlineMonitor::new(scopes.clone());
        let mut pushed: std::collections::HashMap<TxnId, usize> =
            txns.iter().map(|t| (t.id(), 0)).collect();
        for (i, run) in runs.iter().enumerate() {
            if batched.is_summarized(run[0].txn) {
                prop_assert!(batched.push_batch_logged(run).is_err());
                prop_assert!(singleton.push_logged(run[0].clone()).is_err());
                continue;
            }
            let va = batched.push_batch_logged(run).expect("valid run");
            let vb: Vec<_> = run
                .iter()
                .map(|op| singleton.push_logged(op.clone()).expect("valid run"))
                .collect();
            prop_assert_eq!(&va, &vb, "verdict run diverged at run {}", i);
            prop_assert_eq!(batched.log_floor(), singleton.log_floor());
            prop_assert_eq!(batched.verdict(), singleton.verdict());
            *pushed.get_mut(&run[0].txn).unwrap() += run.len();

            let e = events.get(i).copied().unwrap_or(255);
            match e % 8 {
                0 => {
                    let floor = batched.log_floor();
                    let cut = floor + (e as usize / 8) % (batched.len() - floor + 1);
                    prop_assert_eq!(batched.truncate_to(cut), singleton.truncate_to(cut));
                    for t in &txns {
                        *pushed.get_mut(&t.id()).unwrap() =
                            batched.schedule().transaction(t.id()).len();
                    }
                }
                1 => {
                    for t in &txns {
                        if pushed[&t.id()] == t.len() && !batched.is_summarized(t.id()) {
                            batched.finish_txn(t.id());
                            singleton.finish_txn(t.id());
                        }
                    }
                    let floor = batched.compaction_frontier();
                    prop_assert_eq!(batched.checkpoint(floor), singleton.checkpoint(floor));
                    let ca = batched.compact();
                    let cb = singleton.compact();
                    prop_assert_eq!(ca.frontier, cb.frontier);
                }
                _ => {}
            }
            prop_assert_eq!(batched.verdict(), singleton.verdict(), "post-surgery verdict");
            prop_assert_eq!(batched.log_floor(), singleton.log_floor());
        }
        prop_assert_eq!(
            batched.schedule().ops(),
            singleton.schedule().ops(),
            "recorded schedules diverged"
        );
        prop_assert!(batched.certify_prefix() && singleton.certify_prefix());
    }
}
