//! Tokenizer for the transaction-program syntax.

use crate::error::{Result, TpError};

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (without quotes).
    Str(String),
    /// `:=`
    Assign,
    /// `;`
    Semi,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `=` or `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// Tokenize program source text. `#`-comments run to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Assign);
                    i += 2;
                } else {
                    return Err(TpError::Lex {
                        at: i,
                        msg: "expected ':='".into(),
                    });
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(TpError::Lex {
                        at: i,
                        msg: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(TpError::Lex {
                        at: i,
                        msg: "expected '||' (use abs(x) for absolute value)".into(),
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(TpError::Lex {
                        at: i,
                        msg: "unterminated string literal".into(),
                    });
                }
                out.push(Token::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v = text.parse::<i64>().map_err(|_| TpError::Lex {
                    at: start,
                    msg: format!("integer literal {text} out of range"),
                })?;
                out.push(Token::Int(v));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(src[start..i].to_owned()));
            }
            _ => {
                return Err(TpError::Lex {
                    at: i,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_style_program() {
        let toks = tokenize("a := 1; if (c > 0) then { b := abs(b) + 1; }").unwrap();
        assert_eq!(toks[0], Token::Ident("a".into()));
        assert_eq!(toks[1], Token::Assign);
        assert_eq!(toks[2], Token::Int(1));
        assert_eq!(toks[3], Token::Semi);
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::LBrace));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("# header\na := 1; # trailing\n").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn two_char_operators() {
        let toks = tokenize("<= >= != == && || :=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Eq,
                Token::AndAnd,
                Token::OrOr,
                Token::Assign
            ]
        );
    }

    #[test]
    fn string_literals() {
        let toks = tokenize("name := \"Jim\";").unwrap();
        assert_eq!(toks[2], Token::Str("Jim".into()));
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("a : 1").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("a := 99999999999999999999;").is_err());
        assert!(tokenize("a := 1 @").is_err());
    }

    #[test]
    fn negative_numbers_are_minus_then_int() {
        let toks = tokenize("a := -1;").unwrap();
        assert_eq!(toks[2], Token::Minus);
        assert_eq!(toks[3], Token::Int(1));
    }
}
