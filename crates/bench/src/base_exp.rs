//! BASE-1: baseline criteria vs the paper's framework.
//!
//! Three comparisons:
//!
//! 1. **Setwise serializability \[14\] ≡ PWSR** on conjunct-aligned
//!    atomic data sets — verified over random executions.
//! 2. **The \[14\] induction gap** (§3.1): count setwise-serializable
//!    executions whose per-set serialization orders are mutually
//!    incompatible; each is a schedule the \[14\]-style per-set induction
//!    cannot handle, and the gadget shows some of them really violate
//!    consistency (straight-line-ness is what saves \[14\], not the
//!    induction).
//! 3. **Degree-2 / cursor stability** admits write skew: a strict,
//!    DR, degree-2-clean schedule that violates the constraint — while
//!    PWSR correctly rejects it.

use crate::report::Table;
use pwsr_baselines::degree2::{satisfies_degree2_default, write_skew_demo};
use pwsr_baselines::setwise::{
    coincides_with_pwsr, is_setwise_serializable, per_set_orders_compatible, AtomicDataSets,
};
use pwsr_core::pwsr::is_pwsr;
use pwsr_core::solver::Solver;
use pwsr_core::strong::check_strong_correctness;
use pwsr_gen::chaos::random_execution;
use pwsr_gen::workloads::{random_workload, WorkloadConfig};
use pwsr_tplang::analysis::{is_straight_line, static_structure};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the baseline comparison.
pub fn base1(trials: u64, seed: u64) -> (bool, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = true;
    let mut t = Table::new(
        "BASE-1  Baselines: setwise [14], degree-2, straight-line",
        &["check", "expected", "measured", "match"],
    );

    // 1. Setwise ≡ PWSR on random executions (incl. gadget mixes).
    let mut agree = 0u64;
    let mut total = 0u64;
    let mut incompatible = 0u64;
    let mut setwise_ok_count = 0u64;
    for trial in 0..trials {
        let w = random_workload(
            &mut rng,
            &WorkloadConfig {
                conjuncts: 2,
                items_per_conjunct: 2,
                n_background: 3,
                cross_read_prob: 0.7,
                fixed_only: false,
                gadgets: usize::from(trial % 2 == 0),
                domain_width: 50,
            },
        );
        let Ok(s) = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng) else {
            continue;
        };
        let (sw, pw) = coincides_with_pwsr(&s, &w.ic);
        total += 1;
        agree += u64::from(sw == pw);
        if sw {
            setwise_ok_count += 1;
            let ads = AtomicDataSets::from_constraint(&w.ic).expect("disjoint");
            if per_set_orders_compatible(&s, &ads) == Some(false) {
                incompatible += 1;
            }
        }
    }
    ok &= agree == total && total > 0;
    t.row(&[
        "setwise ≡ PWSR (conjunct sets)".into(),
        format!("{total}/{total}"),
        format!("{agree}/{total}"),
        (agree == total).to_string(),
    ]);
    // The induction gap population exists.
    ok &= incompatible > 0;
    t.row(&[
        "setwise-SR with incompatible per-set orders".into(),
        "> 0 (the §3.1 gap)".into(),
        format!("{incompatible}/{setwise_ok_count}"),
        (incompatible > 0).to_string(),
    ]);

    // 2. The gadget's violating interleaving is setwise serializable —
    //    [14] without the straight-line restriction would wrongly admit
    //    it — and it is *not* straight-line.
    {
        let w = random_workload(
            &mut rng,
            &WorkloadConfig {
                conjuncts: 1,
                items_per_conjunct: 2,
                n_background: 0,
                gadgets: 1,
                ..WorkloadConfig::default()
            },
        );
        let (t1, t2) = w.gadget_txns[0];
        let s = pwsr_gen::chaos::execute_with_picks(
            &w.programs,
            &w.catalog,
            &w.initial,
            &pwsr_gen::gadgets::violating_picks(t1, t2),
        )
        .expect("gadget picks execute");
        let ads = AtomicDataSets::from_constraint(&w.ic).expect("disjoint");
        let sw = is_setwise_serializable(&s, &ads);
        let solver = Solver::new(&w.catalog, &w.ic);
        let violated = check_strong_correctness(&s, &solver, &w.initial).violation();
        let straight = w.programs.iter().all(is_straight_line);
        ok &= sw && violated && !straight;
        t.row(&[
            "gadget: setwise-SR yet violating".into(),
            "yes, and not straight-line".into(),
            format!("setwise={sw}, violated={violated}, straight-line={straight}"),
            (sw && violated && !straight).to_string(),
        ]);
        // Straight-line ⇒ fixed-structure (the inclusion [14] relies on).
        let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
        let wf = random_workload(
            &mut rng2,
            &WorkloadConfig {
                fixed_only: true,
                gadgets: 0,
                ..WorkloadConfig::default()
            },
        );
        let straight_fixed = wf
            .programs
            .iter()
            .filter(|p| is_straight_line(p))
            .all(|p| static_structure(p, &wf.catalog).is_fixed());
        ok &= straight_fixed;
        t.row(&[
            "straight-line ⊆ fixed-structure".into(),
            "yes".into(),
            straight_fixed.to_string(),
            straight_fixed.to_string(),
        ]);
    }

    // 3. Degree-2 admits write skew; PWSR rejects it.
    {
        let (catalog, ic, initial, s) = write_skew_demo();
        let solver = Solver::new(&catalog, &ic);
        let d2 = satisfies_degree2_default(&s);
        let violated = check_strong_correctness(&s, &solver, &initial).violation();
        let pwsr = is_pwsr(&s, &ic).ok();
        ok &= d2 && violated && !pwsr;
        t.row(&[
            "write skew: degree-2 clean, inconsistent, non-PWSR".into(),
            "yes / yes / yes".into(),
            format!("d2={d2}, violated={violated}, pwsr={pwsr}"),
            (d2 && violated && !pwsr).to_string(),
        ]);
    }

    (ok, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base1_matches_paper() {
        let (ok, text) = base1(40, 600);
        assert!(ok, "{text}");
    }
}
