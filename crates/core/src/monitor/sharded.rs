//! The **sharded concurrent monitor**: live certification under real
//! OS-thread parallelism, without a single big mutex — and, when
//! logging is enabled, with **speculative-suffix retraction** so an
//! optimistic executor can abort.
//!
//! [`OnlineMonitor`](super::OnlineMonitor) is single-writer: a
//! threaded executor certifying through it serializes every operation
//! behind one lock — exactly the parallelism the PWSR criterion
//! exists to permit. The paper's structure says that is unnecessary:
//! the per-conjunct projections are *independent* (Definition 2
//! quantifies per conjunct, and the conjunct data sets are disjoint in
//! every interesting instance), so per-conjunct certification state
//! can live in per-conjunct **shards**, each behind its own
//! `parking_lot` lock.
//!
//! ## The ticketed pipeline
//!
//! A monitored prefix is a *total order*, so something must define it.
//! [`ShardedMonitor::push`] splits each operation into three stages:
//!
//! 1. **sequence** (one short mutex): append to the growing
//!    [`Schedule`], update the `last_write`/reads-from entry, and
//!    claim *tickets* — one for the global stage and one per conjunct
//!    shard whose scope contains the item. This section is `O(words)`
//!    with **no graph work, no prefix-table row clones and no §2.2
//!    scans** — the per-transaction read/write totals that back the
//!    §2.2 validation live *outside* the mutex (each transaction's
//!    totals cell is touched only by the thread pushing that
//!    transaction, per the program-order contract), so the
//!    order-claiming region is the thinnest it can be.
//! 2. **global** (ticketed, own lock): delayed-read tracking
//!    (Definition 5 marks, the first-non-DR prefix, the per-conjunct
//!    Lemma-6 kills) and the global reduced conflict graph under
//!    Pearce–Kelly. Tickets are served in claim order, so this state
//!    evolves in exactly the claimed interleaving.
//! 3. **shards** (ticketed, one `RwLock` per conjunct): each touched
//!    conjunct's reduced conflict graph. Operations on *different*
//!    conjuncts proceed through different shards concurrently — this
//!    is where the parallelism the single writer forfeits comes back.
//!
//! Because every stage processes operations in claimed-position order,
//! each component's state equals the single-writer monitor's on the
//! same interleaving — the final [`ShardedMonitor::verdict`] is
//! **byte-identical** to replaying the recorded schedule through an
//! `OnlineMonitor` (pinned by the stress tests in
//! `tests/sharded_props.rs`). The stages form a pipeline: while one
//! thread runs its global stage for position `p`, another can run the
//! sequence stage for `p+1` and a third a shard stage for `p-1`, so
//! throughput is bounded by the *widest stage*, not by the sum.
//!
//! The verdict ladder is additionally mirrored into a **lock-free
//! atomic floor** (`fetch_max` over the ladder rank, `fetch_min` over
//! first-violation positions): `push` returns the floor without
//! taking any further lock, and readers get a sound "no better than"
//! answer mid-flight; the exact `Verdict` is assembled by
//! [`ShardedMonitor::verdict`] (exact at quiescence). The floor only
//! worsens between retractions; [`ShardedMonitor::truncate_to`] and
//! [`ShardedMonitor::retract_txn`] recompute it exactly.
//!
//! ## Retraction (the undo layer, sharded)
//!
//! A monitor built with [`ShardedMonitor::new_logged`] journals every
//! push through the shared [`undo`](super::undo) layer, split by
//! pipeline stage: the sequence mutex owns an `UndoLog<SeqDelta>`
//! (table rows), the global stage an `UndoLog<GlobalDelta>` (DR
//! marks plus the global graph), and each shard its own
//! `(position, GraphDelta)`
//! journal *behind the shard's existing lock*. Because each stage
//! serves tickets in claimed order, each journal is automatically in
//! position order — the LIFO retraction invariant holds per stage
//! without any cross-stage coordination.
//!
//! [`ShardedMonitor::truncate_to`] retracts a speculative suffix: it
//! holds the sequence mutex (no new positions can be claimed), waits
//! for the in-flight pipeline to drain (bounded by the ops already
//! ticketed — they complete without needing the sequence mutex), then
//! pops each stage's journal in reverse position order. A shard is
//! locked only while *its own* entries pop — a shard untouched by the
//! suffix is never locked at all — so the cost is `O(ops undone)`
//! counted per shard, not `O(schedule)`.
//! [`ShardedMonitor::retract_txn`] is the abort primitive on top:
//! truncate to the aborting transaction's first operation, then
//! re-push the surviving interleaving (which can never introduce a
//! new violation: removing operations only removes conflict edges and
//! DR marks). Both leave the monitor byte-identical to a single-writer
//! replay of the surviving schedule — pinned under real-thread abort
//! storms by `tests/sharded_props.rs`.
//!
//! [`ShardedMonitor::checkpoint`] bounds the journals' memory over a
//! long run: once the caller knows which transactions may still
//! abort, every stage's floor rises to the oldest live transaction's
//! first operation and the per-push deltas below it are reclaimed —
//! the sharded counterpart of
//! [`OnlineMonitor::checkpoint`](super::OnlineMonitor::checkpoint).
//!
//! ## Lock discipline
//!
//! The pipeline's locks carry fixed *ranks* — sequence mutex (0),
//! global stage (1), conjunct shard `k` (2 + k) — and every code path
//! acquires strictly ascending (holding a lock, only higher ranks may
//! be taken), which rules out deadlock by resource ordering. Debug
//! builds track held ranks per thread and assert the discipline on
//! every acquisition (the private `lock_order` tracker), so a
//! lock-order regression fails deterministically in tests — the
//! bounded exhaustive-interleaving model test below drives every
//! lock-taking entry point through every interleaving of a small
//! workload.

use super::journal::MonitorJournal;
use super::undo::{GlobalDelta, GraphDelta, SeqDelta, UndoLog};
use super::{AdmissionLevel, CompactStats, ProjGraph, SummarizedSet, Verdict, VerdictLevel};
use crate::error::{CoreError, Result};
use crate::ids::{ItemId, OpIndex, TxnId};
use crate::op::Action;
use crate::op::Operation;
use crate::schedule::Schedule;
use crate::state::ItemSet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

const NO_POS: u32 = u32::MAX;

/// The pipeline's deadlock-freedom discipline, made checkable: every
/// lock carries a numeric *rank* — sequence mutex [`RANK_SEQ`] = 0,
/// global stage [`RANK_GLOBAL`] = 1, shard `k` [`shard_rank`] = 2 + k
/// — and a lock may only be acquired while every lock currently held
/// by the same thread has a **strictly smaller** rank (seq → global →
/// shards, ascending). Any two threads then order their lock
/// acquisitions consistently with one global partial order, which
/// rules out deadlock by the classical resource-ordering argument.
///
/// Debug builds maintain a thread-local stack of held ranks and
/// assert the discipline on every acquisition, so a lock-order
/// regression fails deterministically in tests (see the bounded
/// exhaustive-interleaving model test); release builds compile the
/// tracking away entirely.
mod lock_order {
    #[cfg(debug_assertions)]
    use std::cell::RefCell;

    #[cfg(debug_assertions)]
    thread_local! {
        /// Ranks of the locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    /// Record (debug) that the current thread is about to acquire a
    /// lock of `rank`; panics if any held lock's rank is not strictly
    /// smaller.
    pub(super) fn acquire(rank: u32) {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.iter().max() {
                assert!(
                    rank > top,
                    "lock-order violation: acquiring rank {rank} while rank {top} is held \
                     (discipline: seq = 0 → global = 1 → shard k = 2 + k, strictly ascending)"
                );
            }
            held.push(rank);
        });
        #[cfg(not(debug_assertions))]
        let _ = rank;
    }

    /// Record (debug) that the current thread released a lock of
    /// `rank`.
    pub(super) fn release(rank: u32) {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let at = held
                .iter()
                .rposition(|&r| r == rank)
                .expect("releasing a lock rank this thread does not hold");
            held.remove(at);
        });
        #[cfg(not(debug_assertions))]
        let _ = rank;
    }
}

/// Rank of the order-claiming sequence mutex (stage 1).
const RANK_SEQ: u32 = 0;
/// Rank of the global-stage lock (stage 2).
const RANK_GLOBAL: u32 = 1;
/// Rank of conjunct shard `k`'s lock (stage 3; ascending in `k`).
const fn shard_rank(k: usize) -> u32 {
    2 + k as u32
}

/// A [`Mutex`] that checks the [`lock_order`] discipline in debug
/// builds (zero-cost passthrough in release).
#[derive(Debug)]
struct RankedMutex<T> {
    rank: u32,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    fn new(rank: u32, value: T) -> RankedMutex<T> {
        RankedMutex {
            rank,
            inner: Mutex::new(value),
        }
    }

    fn lock(&self) -> RankedGuard<impl DerefMut<Target = T> + '_> {
        lock_order::acquire(self.rank);
        RankedGuard {
            rank: self.rank,
            guard: self.inner.lock(),
        }
    }

    fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// A [`RwLock`] that checks the [`lock_order`] discipline in debug
/// builds (both reader and writer acquisitions must be ascending —
/// reader/reader sharing never deadlocks by itself, but a reader that
/// acquires against rank order can still complete a writer cycle).
#[derive(Debug)]
struct RankedRwLock<T> {
    rank: u32,
    inner: RwLock<T>,
}

impl<T> RankedRwLock<T> {
    fn new(rank: u32, value: T) -> RankedRwLock<T> {
        RankedRwLock {
            rank,
            inner: RwLock::new(value),
        }
    }

    fn read(&self) -> RankedGuard<impl Deref<Target = T> + '_> {
        lock_order::acquire(self.rank);
        RankedGuard {
            rank: self.rank,
            guard: self.inner.read(),
        }
    }

    fn write(&self) -> RankedGuard<impl DerefMut<Target = T> + '_> {
        lock_order::acquire(self.rank);
        RankedGuard {
            rank: self.rank,
            guard: self.inner.write(),
        }
    }
}

/// RAII pairing of a lock guard with its rank: releases the rank in
/// the [`lock_order`] tracker when the guard drops.
struct RankedGuard<G> {
    rank: u32,
    guard: G,
}

impl<G: Deref> Deref for RankedGuard<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for RankedGuard<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

impl<G> Drop for RankedGuard<G> {
    fn drop(&mut self) {
        lock_order::release(self.rank);
    }
}

/// One transaction's running §2.2 read/write totals. Lives *outside*
/// the sequence mutex: the push contract (one thread pushes a given
/// transaction's operations, in program order) makes each cell
/// effectively thread-private, so validating against it costs no
/// shared serial time.
#[derive(Debug, Default)]
struct TxnTotals {
    rs: ItemSet,
    ws: ItemSet,
}

/// Stage-1 state: the order-defining serial section.
#[derive(Debug)]
struct SeqState {
    /// The growing schedule — the interleaving being certified.
    schedule: Schedule,
    /// Per item: position of the latest write (`NO_POS` if none).
    last_write: Vec<u32>,
    /// Per slot: position of the transaction's first operation (the
    /// `O(1)` lookup behind [`ShardedMonitor::retract_txn`]).
    first_op: Vec<u32>,
    /// Next global-stage ticket.
    gticket: u32,
    /// Next ticket per conjunct shard.
    tickets: Vec<u32>,
    /// Sequence-half undo journal (entries only when logging).
    log: UndoLog<SeqDelta>,
    /// Durability journal: receives appends/truncations/floor raises
    /// under this mutex, so journal order is claimed schedule order
    /// (see [`MonitorJournal`]'s ordering contract).
    journal: Option<Box<dyn MonitorJournal>>,
    /// Transactions declared finished ([`ShardedMonitor::finish_txn`])
    /// but not yet summarized.
    finished: std::collections::HashSet<TxnId>,
    /// Transactions collapsed into the permanent prefix: pushes and
    /// retractions for them are rejected.
    summarized: SummarizedSet,
    /// Compaction calls that advanced the frontier / total operations
    /// reclaimed by them.
    compactions: u64,
    ops_reclaimed: u64,
}

/// Stage-2 state: everything that needs the full total order.
#[derive(Debug)]
struct GlobalState {
    /// The global reduced conflict graph (serializability).
    graph: ProjGraph,
    /// Per slot: items written that someone else has read — the
    /// writer's next operation materializes the dirty read.
    dirty_reads: Vec<ItemSet>,
    first_non_dr: Option<OpIndex>,
    /// Per conjunct: first in-scope dirty-read materialization.
    conjunct_non_dr: Vec<Option<OpIndex>>,
    /// Global-half undo journal (entries only when logging).
    log: UndoLog<GlobalDelta>,
}

/// Stage-3 state: one conjunct's reduced conflict graph plus its own
/// undo journal (position-tagged, automatically in position order
/// because the shard serves tickets in claimed order).
#[derive(Debug, Default)]
struct ShardState {
    graph: ProjGraph,
    log: Vec<(u32, GraphDelta)>,
}

/// One conjunct shard: a ticket turnstile plus the guarded state.
/// `RwLock` (not `Mutex`) so read-mostly admission probes
/// ([`ShardedMonitor::would_admit`]) never take the shard exclusively.
#[derive(Debug)]
struct Shard {
    serving: AtomicU32,
    state: RankedRwLock<ShardState>,
}

/// Ladder rank for the lock-free floor (higher = worse; between
/// retractions the ladder only ever worsens, so `fetch_max` is exact).
fn rank(level: VerdictLevel) -> u8 {
    match level {
        VerdictLevel::Serializable => 0,
        VerdictLevel::DrPreserving => 1,
        VerdictLevel::Pwsr => 2,
        VerdictLevel::Violation => 3,
    }
}

fn level_of(rank: u8) -> VerdictLevel {
    match rank {
        0 => VerdictLevel::Serializable,
        1 => VerdictLevel::DrPreserving,
        2 => VerdictLevel::Pwsr,
        _ => VerdictLevel::Violation,
    }
}

/// Spin with bounded exponential backoff, then yield: shard turns are
/// short, so the first probes re-check almost immediately, but each
/// miss doubles the `spin_loop` burst (1, 2, 4, … capped at 64 hints)
/// so a waiter behind a slow predecessor backs off the cache line
/// instead of hammering it; past the spin budget it yields — on an
/// oversubscribed (or single-core) host the predecessor needs the CPU
/// to finish its turn.
fn wait_turn(serving: &AtomicU32, ticket: u32) {
    let mut round = 0u32;
    while serving.load(Ordering::Acquire) != ticket {
        if round < 12 {
            for _ in 0..(1u32 << round.min(6)) {
                std::hint::spin_loop();
            }
            round += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// What one [`ShardedMonitor::push_outcome`] observed — the lock-free
/// floor plus *causality* flags: whether **this** push was the
/// operation that broke each rung. An optimistic executor aborts the
/// pushing transaction exactly when its own operation breached the
/// configured admission floor ([`PushOutcome::breaches`]); a floor
/// worsened by some *other* transaction's concurrent push is that
/// transaction's to repair (its own `PushOutcome` reports the breach
/// to the thread that pushed it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushOutcome {
    /// The claimed position of the pushed operation.
    pub pos: OpIndex,
    /// The lock-free verdict floor after this push.
    pub floor: VerdictLevel,
    /// This push closed the first global conflict-graph cycle.
    pub caused_non_serializable: bool,
    /// This push closed the first cycle of some conjunct projection.
    pub caused_violation: bool,
    /// This push was the first to materialize a dirty read.
    pub caused_non_dr: bool,
}

impl PushOutcome {
    /// Did this push break the verdict rung `level` protects? (A
    /// conjunct cycle uses edges the global graph also contains, so a
    /// violation always breaches the `Serializable` floor too.)
    pub fn breaches(&self, level: AdmissionLevel) -> bool {
        match level {
            AdmissionLevel::Serializable => self.caused_non_serializable || self.caused_violation,
            AdmissionLevel::Pwsr => self.caused_violation,
            AdmissionLevel::PwsrDr => self.caused_violation || self.caused_non_dr,
        }
    }
}

/// A concurrent [`OnlineMonitor`](super::OnlineMonitor): per-conjunct
/// certification shards behind their own locks, a ticketed pipeline
/// defining the total order, a lock-free verdict floor — and, when
/// constructed with [`ShardedMonitor::new_logged`], per-stage undo
/// journals enabling suffix retraction ([`ShardedMonitor::truncate_to`])
/// and transaction aborts ([`ShardedMonitor::retract_txn`]). See the
/// module docs for the stage layout and the parity argument.
///
/// `push` takes `&self` — threads share the monitor behind an `Arc`
/// and certify concurrently. Within one transaction, operations must
/// be pushed in program order by one thread at a time (the §2.2
/// validation reads the transaction's own running totals); different
/// transactions need no coordination.
#[derive(Debug)]
pub struct ShardedMonitor {
    scopes: Vec<ItemSet>,
    /// Per transaction: §2.2 running totals, outside the serial
    /// section (see [`TxnTotals`]).
    totals: RwLock<HashMap<TxnId, Arc<Mutex<TxnTotals>>>>,
    seq: RankedMutex<SeqState>,
    gserving: AtomicU32,
    gstate: RankedRwLock<GlobalState>,
    shards: Vec<Shard>,
    /// Lock-free verdict floor: worst ladder rank any push computed
    /// (recomputed exactly by retraction).
    floor: AtomicU8,
    /// Lock-free min over conjunct cycle positions (`NO_POS` = none).
    first_violation: AtomicU32,
    /// Pushes past the sequence stage that have not yet published
    /// their floor rank — the drain waits on this as well as the
    /// ticket turnstiles, so a retraction's exact floor recompute can
    /// never be clobbered by a stale in-flight `fetch_max`.
    inflight: AtomicU32,
    /// Journal pushes for retraction?
    logging: bool,
    /// Measure time spent inside the order-claiming mutex?
    time_serial: bool,
    serial_ns: AtomicU64,
    serial_ops: AtomicU64,
}

impl ShardedMonitor {
    /// A sharded monitor over explicit projection scopes, without undo
    /// journals (pushes are permanent; zero logging overhead).
    pub fn new(scopes: Vec<ItemSet>) -> ShardedMonitor {
        ShardedMonitor::build(scopes, false)
    }

    /// A sharded monitor that journals every push for retraction —
    /// the optimistic executors' constructor.
    pub fn new_logged(scopes: Vec<ItemSet>) -> ShardedMonitor {
        ShardedMonitor::build(scopes, true)
    }

    fn build(scopes: Vec<ItemSet>, logging: bool) -> ShardedMonitor {
        let n = scopes.len();
        ShardedMonitor {
            scopes,
            totals: RwLock::new(HashMap::new()),
            seq: RankedMutex::new(
                RANK_SEQ,
                SeqState {
                    schedule: Schedule::default(),
                    last_write: Vec::new(),
                    first_op: Vec::new(),
                    gticket: 0,
                    tickets: vec![0; n],
                    log: UndoLog::new(0),
                    journal: None,
                    finished: std::collections::HashSet::new(),
                    summarized: SummarizedSet::default(),
                    compactions: 0,
                    ops_reclaimed: 0,
                },
            ),
            gserving: AtomicU32::new(0),
            gstate: RankedRwLock::new(
                RANK_GLOBAL,
                GlobalState {
                    graph: ProjGraph::default(),
                    dirty_reads: Vec::new(),
                    first_non_dr: None,
                    conjunct_non_dr: vec![None; n],
                    log: UndoLog::new(0),
                },
            ),
            shards: (0..n)
                .map(|k| Shard {
                    serving: AtomicU32::new(0),
                    state: RankedRwLock::new(shard_rank(k), ShardState::default()),
                })
                .collect(),
            floor: AtomicU8::new(0),
            first_violation: AtomicU32::new(NO_POS),
            inflight: AtomicU32::new(0),
            logging,
            time_serial: false,
            serial_ns: AtomicU64::new(0),
            serial_ops: AtomicU64::new(0),
        }
    }

    /// A sharded monitor over an integrity constraint's conjuncts.
    pub fn for_constraint(ic: &crate::constraint::IntegrityConstraint) -> ShardedMonitor {
        ShardedMonitor::new(ic.conjuncts().iter().map(|c| c.items().clone()).collect())
    }

    /// Attach a durability journal: every append, truncation and
    /// checkpoint-floor raise is reported to `journal` **under the
    /// order-claiming sequence mutex**, so journal order is claimed
    /// schedule order even with many pushing threads — the property
    /// that lets a WAL written here replay deterministically into a
    /// single-writer monitor (see [`MonitorJournal`]). Attach before
    /// the first push; the builder style mirrors
    /// [`ShardedMonitor::with_serial_timing`].
    pub fn with_journal(self, journal: Box<dyn MonitorJournal>) -> ShardedMonitor {
        self.seq.lock().journal = Some(journal);
        self
    }

    /// Enable serial-stage timing: every push accumulates the
    /// nanoseconds it spent inside the order-claiming mutex, read back
    /// by [`ShardedMonitor::serial_ns_per_op`]. Costs two clock reads
    /// per push — a measurement mode, not the deployment default.
    pub fn with_serial_timing(mut self) -> ShardedMonitor {
        self.time_serial = true;
        self
    }

    /// Mean nanoseconds per push spent inside the order-claiming
    /// mutex (0.0 unless built [`ShardedMonitor::with_serial_timing`]).
    pub fn serial_ns_per_op(&self) -> f64 {
        let ops = self.serial_ops.load(Ordering::Relaxed);
        if ops == 0 {
            0.0
        } else {
            self.serial_ns.load(Ordering::Relaxed) as f64 / ops as f64
        }
    }

    /// Does this monitor journal pushes for retraction?
    pub fn logging(&self) -> bool {
        self.logging
    }

    /// The projection scopes.
    pub fn scopes(&self) -> &[ItemSet] {
        &self.scopes
    }

    /// Operations pushed so far.
    pub fn len(&self) -> usize {
        self.seq.lock().schedule.len()
    }

    /// Has nothing been pushed yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The §2.2 totals cell of `txn` (created on first use).
    fn totals_cell(&self, txn: TxnId) -> Arc<Mutex<TxnTotals>> {
        if let Some(cell) = self.totals.read().get(&txn) {
            return Arc::clone(cell);
        }
        Arc::clone(self.totals.write().entry(txn).or_default())
    }

    /// Append one operation from any thread; returns the lock-free
    /// verdict floor after this push (a sound "no better than" rung —
    /// the exact [`Verdict`] is [`ShardedMonitor::verdict`]'s, at
    /// quiescence).
    ///
    /// Errors (leaving the monitor untouched) if the operation
    /// violates its transaction's §2.2 well-formedness.
    pub fn push(&self, op: Operation) -> Result<VerdictLevel> {
        self.push_outcome(op).map(|o| o.floor)
    }

    /// [`ShardedMonitor::push`] returning the full [`PushOutcome`]:
    /// the floor plus the flags saying whether *this* operation broke
    /// a verdict rung — what an optimistic executor's abort decision
    /// keys on.
    pub fn push_outcome(&self, op: Operation) -> Result<PushOutcome> {
        let (txn, item, action) = (op.txn, op.item, op.action);
        let is_write = action == Action::Write;
        // Touched conjuncts, gathered outside every lock (tickets are
        // filled in under the sequence lock — one allocation total on
        // the hot path).
        let mut turns: Vec<(usize, u32)> = self
            .scopes
            .iter()
            .enumerate()
            .filter(|(_, scope)| scope.contains(item))
            .map(|(k, _)| (k, 0))
            .collect();

        // --- §2.2 validation: outside the serial section ---------------
        // The same check, by the same code, as the single-writer index
        // — parity by construction. The totals cell belongs to this
        // thread by the program-order contract, so no ordering is lost
        // by validating before the position is claimed.
        let cell = self.totals_cell(txn);
        {
            let mut t = cell.lock();
            super::validate_22(&t.rs, &t.ws, &op)?;
            if is_write {
                t.ws.insert(item);
            } else {
                t.rs.insert(item);
            }
        }

        // --- stage 1: claim the position -------------------------------
        let (p, slot, rf_slot, gticket) = {
            let mut s = self.seq.lock();
            if s.summarized.contains(txn) {
                // Roll back the §2.2 bit set above: the push never
                // claimed a position, so the totals must not remember
                // it.
                drop(s);
                let mut t = cell.lock();
                if is_write {
                    t.ws.remove(item);
                } else {
                    t.rs.remove(item);
                }
                return Err(CoreError::SummarizedTransaction { txn });
            }
            let t0 = self.time_serial.then(Instant::now);
            if let Some(journal) = s.journal.as_deref_mut() {
                journal.appended(&op);
            }
            let claimed = self.stage_seq(&mut s, op, &mut turns);
            // Claimed under the sequence lock, released after the
            // floor publication below: a retraction's drain waits for
            // this to reach zero, so it can never interleave between
            // a push's stage work and its (stale-state) `fetch_max`.
            self.inflight.fetch_add(1, Ordering::AcqRel);
            if let Some(t0) = t0 {
                self.serial_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.serial_ops.fetch_add(1, Ordering::Relaxed);
            }
            claimed
        };

        // --- stage 2: global graph + delayed-read, in position order ---
        wait_turn(&self.gserving, gticket);
        let (ser_now, dr_now, caused_non_serializable, caused_non_dr) = {
            let mut g = self.gstate.write();
            self.stage_global(&mut g, slot, item, is_write, rf_slot, p)
        };
        self.gserving.store(gticket + 1, Ordering::Release);

        // --- stage 3: touched conjunct shards, per-shard order ---------
        let mut caused_violation = false;
        for &(k, t) in &turns {
            let shard = &self.shards[k];
            wait_turn(&shard.serving, t);
            caused_violation |= self.stage_shard(k, slot, item, is_write, p);
            shard.serving.store(t + 1, Ordering::Release);
        }

        // --- lock-free floor -------------------------------------------
        let violation = self.first_violation.load(Ordering::Acquire) != NO_POS;
        let level = VerdictLevel::compose(ser_now, dr_now, !violation);
        let mine = rank(level);
        let prev = self.floor.fetch_max(mine, Ordering::AcqRel);
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        Ok(PushOutcome {
            pos: p,
            floor: level_of(prev.max(mine)),
            caused_non_serializable,
            caused_violation,
            caused_non_dr,
        })
    }

    /// **Batch admission**: append one transaction's program-ordered
    /// run of operations, paying each serial cost **once per batch**
    /// instead of once per operation — one sequence-mutex entry that
    /// claims a contiguous segment of positions `[p0, p0 + k)` (a
    /// segment-reserved `Schedule` append) together with the whole
    /// run's global and per-shard tickets, one global-turnstile wait
    /// plus one `gstate` write lock for all `k` operations, and one
    /// turnstile wait plus one write lock per **touched conjunct
    /// shard** rather than per operation. Ticket *numbering* is
    /// unchanged — every operation still owns one global ticket and
    /// one ticket per touched shard, claimed atomically in program
    /// order — so the undo journals stay per-op LIFO and
    /// [`ShardedMonitor::truncate_to`] / [`ShardedMonitor::retract_txn`]
    /// retract batch-admitted operations individually, exactly as if
    /// they had been pushed one by one.
    ///
    /// Returns one [`PushOutcome`] per operation, in program order,
    /// byte-identical to what `k` singleton [`ShardedMonitor::push_outcome`]
    /// calls would have returned for the same interleaving (pinned by
    /// the twin-harness proptests in `tests/batch_props.rs`): per-op
    /// positions, causality flags, and floors — an executor's culprit
    /// identification and abort decisions need no batch-size cases.
    /// An attached [`MonitorJournal`] receives the run as **one**
    /// `appended_batch` call under the sequence mutex (the WAL frames
    /// it as a single multi-op record).
    ///
    /// The slice must be nonempty operations of a **single
    /// transaction** in program order (panics otherwise — the batch
    /// unit is the transaction, per the push contract). Errors, with
    /// the monitor and the §2.2 totals untouched, if any operation
    /// violates well-formedness or the transaction was summarized.
    /// An empty slice returns an empty vector.
    pub fn push_batch(&self, ops: &[Operation]) -> Result<Vec<PushOutcome>> {
        let Some(first) = ops.first() else {
            return Ok(Vec::new());
        };
        let txn = first.txn;
        assert!(
            ops.iter().all(|o| o.txn == txn),
            "push_batch requires a single-transaction batch (the program-order unit)"
        );
        let n = self.scopes.len();
        // Touched conjuncts per shard, gathered outside every lock;
        // tickets are assigned under the sequence lock. Entries are in
        // program order within each shard, so per-shard ticket order
        // equals singleton claim order.
        let mut by_shard: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for (i, op) in ops.iter().enumerate() {
            for (k, scope) in self.scopes.iter().enumerate() {
                if scope.contains(op.item) {
                    by_shard[k].push((i, 0));
                }
            }
        }

        // --- §2.2 validation: the whole run, atomically ----------------
        // One totals-cell lookup and one lock for the batch; on any
        // failure the bits set for earlier operations roll back, so a
        // rejected batch leaves no trace (validate_22 rejects
        // duplicates, hence every bit set here was fresh).
        let cell = self.totals_cell(txn);
        {
            let mut t = cell.lock();
            for (i, op) in ops.iter().enumerate() {
                if let Err(e) = super::validate_22(&t.rs, &t.ws, op) {
                    for prior in &ops[..i] {
                        if prior.is_write() {
                            t.ws.remove(prior.item);
                        } else {
                            t.rs.remove(prior.item);
                        }
                    }
                    return Err(e);
                }
                if op.is_write() {
                    t.ws.insert(op.item);
                } else {
                    t.rs.insert(op.item);
                }
            }
        }

        // --- stage 1: claim the segment, once ---------------------------
        let (p0, slot, rf_slots, g0) = {
            let mut s = self.seq.lock();
            if s.summarized.contains(txn) {
                drop(s);
                let mut t = cell.lock();
                for op in ops {
                    if op.is_write() {
                        t.ws.remove(op.item);
                    } else {
                        t.rs.remove(op.item);
                    }
                }
                return Err(CoreError::SummarizedTransaction { txn });
            }
            let t0 = self.time_serial.then(Instant::now);
            if let Some(journal) = s.journal.as_deref_mut() {
                journal.appended_batch(ops);
            }
            let claimed = self.stage_seq_batch(&mut s, ops, &mut by_shard);
            // One in-flight token covers the whole batch: the drain
            // only needs to know the pipeline has unpublished floors,
            // not how many.
            self.inflight.fetch_add(1, Ordering::AcqRel);
            if let Some(t0) = t0 {
                self.serial_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.serial_ops
                    .fetch_add(ops.len() as u64, Ordering::Relaxed);
            }
            claimed
        };

        // --- stage 2: one global turn for the run -----------------------
        // Per-op results are captured in program order inside the one
        // write-lock hold, so each operation's (serializable, dr)
        // snapshot is prefix-exact — identical to singleton pushes.
        wait_turn(&self.gserving, g0);
        let mut global_out = Vec::with_capacity(ops.len());
        {
            let mut g = self.gstate.write();
            for (i, op) in ops.iter().enumerate() {
                global_out.push(self.stage_global(
                    &mut g,
                    slot,
                    op.item,
                    op.is_write(),
                    rf_slots[i],
                    OpIndex(p0 + i),
                ));
            }
        }
        self.gserving
            .store(g0 + ops.len() as u32, Ordering::Release);

        // --- stage 3: one turn per touched shard ------------------------
        // The lock-free violation floor moves only through this
        // batch's own `caused` flags in a single-writer interleaving,
        // so capturing it before the shard turns and prefix-OR-ing the
        // per-op flags reproduces exactly what each singleton push
        // would have loaded after its own shard stages.
        let viol_pre = self.first_violation.load(Ordering::Acquire) != NO_POS;
        let mut caused_violation = vec![false; ops.len()];
        for (k, entries) in by_shard.iter().enumerate() {
            let Some(&(_, t0k)) = entries.first() else {
                continue;
            };
            let shard = &self.shards[k];
            wait_turn(&shard.serving, t0k);
            {
                let mut sh = shard.state.write();
                for &(i, _) in entries {
                    caused_violation[i] |= self.stage_shard_locked(
                        &mut sh,
                        slot,
                        ops[i].item,
                        ops[i].is_write(),
                        OpIndex(p0 + i),
                    );
                }
            }
            shard
                .serving
                .store(t0k + entries.len() as u32, Ordering::Release);
        }

        // --- lock-free floor, per op in program order -------------------
        let mut viol_run = viol_pre;
        let mut outcomes = Vec::with_capacity(ops.len());
        for (i, &(ser_now, dr_now, caused_non_serializable, caused_non_dr)) in
            global_out.iter().enumerate()
        {
            viol_run |= caused_violation[i];
            let level = VerdictLevel::compose(ser_now, dr_now, !viol_run);
            let mine = rank(level);
            let prev = self.floor.fetch_max(mine, Ordering::AcqRel);
            outcomes.push(PushOutcome {
                pos: OpIndex(p0 + i),
                floor: level_of(prev.max(mine)),
                caused_non_serializable,
                caused_violation: caused_violation[i],
                caused_non_dr,
            });
        }
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        Ok(outcomes)
    }

    /// Stage 1 of the batch path, under the (held) sequence lock:
    /// reserve the segment `[len, len + k)` in one `Schedule` append,
    /// record one [`SeqDelta`] per operation (computed arithmetically
    /// from the pre-batch snapshot — within a single-transaction run,
    /// operation `i`'s previous-slot-last is simply `p0 + i - 1`, and
    /// §2.2's read-after-write rejection guarantees no read in the run
    /// resolves against a writer inside the run), and claim every
    /// global and per-shard ticket atomically. The per-op deltas keep
    /// `truncate_locked`'s one-pop-per-op rollback valid unchanged.
    fn stage_seq_batch(
        &self,
        s: &mut SeqState,
        ops: &[Operation],
        by_shard: &mut [Vec<(usize, u32)>],
    ) -> (usize, usize, Vec<Option<usize>>, u32) {
        let p0 = s.schedule.len();
        let base = s.schedule.base();
        let existing = s.schedule.txn_slot(ops[0].txn);
        let pre_slot_last = existing.map_or(0, |sl| s.schedule.slot_last_raw(sl));
        let mut cur_ub = s.schedule.item_ub();
        let mut rf_slots = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let idx = op.item.index();
            let delta = SeqDelta {
                new_slot: existing.is_none() && i == 0,
                prev_item_ub: cur_ub,
                prev_last_write: s.last_write.get(idx).copied().unwrap_or(NO_POS),
                prev_slot_last: if i == 0 {
                    pre_slot_last
                } else {
                    (p0 + i - 1) as u32
                },
            };
            cur_ub = cur_ub.max(idx + 1);
            let rf = if op.is_write() {
                if s.last_write.len() <= idx {
                    s.last_write.resize(idx + 1, NO_POS);
                }
                s.last_write[idx] = (p0 + i) as u32;
                None
            } else {
                let w = s.last_write.get(idx).copied().unwrap_or(NO_POS);
                (w != NO_POS && w as usize >= base)
                    .then(|| s.schedule.slot_of_op(OpIndex(w as usize)))
            };
            rf_slots.push(rf);
            if self.logging {
                s.log.record(delta);
            }
        }
        let slot = s.schedule.push_segment_unchecked(ops);
        if slot == s.first_op.len() {
            s.first_op.push(p0 as u32);
        }
        let g0 = s.gticket;
        s.gticket += ops.len() as u32;
        for (k, entries) in by_shard.iter_mut().enumerate() {
            for entry in entries.iter_mut() {
                entry.1 = s.tickets[k];
                s.tickets[k] += 1;
            }
        }
        (p0, slot, rf_slots, g0)
    }

    /// Stage 1 under the (held) sequence lock: append, maintain the
    /// order tables, claim tickets, record the sequence-half undo
    /// delta. The caller has already reported the append to the
    /// durability journal (hoisted so the batch path can report one
    /// framed multi-op record instead of per-op calls).
    fn stage_seq(
        &self,
        s: &mut SeqState,
        op: Operation,
        turns: &mut [(usize, u32)],
    ) -> (OpIndex, usize, Option<usize>, u32) {
        let (item, is_write) = (op.item, op.is_write());
        let existing = s.schedule.txn_slot(op.txn);
        let delta = SeqDelta {
            new_slot: existing.is_none(),
            prev_item_ub: s.schedule.item_ub(),
            prev_last_write: s.last_write.get(item.index()).copied().unwrap_or(NO_POS),
            prev_slot_last: existing.map_or(0, |sl| s.schedule.slot_last_raw(sl)),
        };
        let p = OpIndex(s.schedule.len());
        s.schedule.push_op_unchecked(op);
        let slot = s.schedule.slot_of_op(p);
        if slot == s.first_op.len() {
            s.first_op.push(p.0 as u32);
        }
        let rf_slot = if is_write {
            if s.last_write.len() <= item.index() {
                s.last_write.resize(item.index() + 1, NO_POS);
            }
            s.last_write[item.index()] = p.0 as u32;
            None
        } else {
            // A writer below the compaction base is summarized, hence
            // finished: its dirty-read mark could never trip, so
            // skipping it keeps verdict parity with an uncompacted
            // replay (its row was reclaimed).
            let w = s.last_write.get(item.index()).copied().unwrap_or(NO_POS);
            (w != NO_POS && w as usize >= s.schedule.base())
                .then(|| s.schedule.slot_of_op(OpIndex(w as usize)))
        };
        let gticket = s.gticket;
        s.gticket += 1;
        for (k, ticket) in turns.iter_mut() {
            *ticket = s.tickets[*k];
            s.tickets[*k] += 1;
        }
        if self.logging {
            s.log.record(delta);
        }
        (p, slot, rf_slot, gticket)
    }

    /// Stage 2 under the (held) global lock. Returns `(serializable,
    /// dr, caused_non_serializable, caused_non_dr)` for the prefix
    /// ending at `p` — exact, because tickets serve in position order.
    fn stage_global(
        &self,
        g: &mut GlobalState,
        slot: usize,
        item: ItemId,
        is_write: bool,
        rf_slot: Option<usize>,
        p: OpIndex,
    ) -> (bool, bool, bool, bool) {
        let mut delta = GlobalDelta::default();
        if g.dirty_reads.len() <= slot {
            g.dirty_reads.resize_with(slot + 1, ItemSet::new);
        }
        let mut caused_non_dr = false;
        if !g.dirty_reads[slot].is_empty() {
            if g.first_non_dr.is_none() {
                g.first_non_dr = Some(p);
                delta.set_first_non_dr = true;
                caused_non_dr = true;
            }
            for (k, scope) in self.scopes.iter().enumerate() {
                if g.conjunct_non_dr[k].is_none() && !scope.is_disjoint(&g.dirty_reads[slot]) {
                    g.conjunct_non_dr[k] = Some(p);
                    delta.conjunct_non_dr_set.push(k as u32);
                }
            }
        }
        if !is_write {
            if let Some(w_slot) = rf_slot {
                if w_slot != slot && g.dirty_reads[w_slot].insert(item) {
                    delta.dr_mark = Some(w_slot as u32);
                }
            }
        }
        if self.logging {
            delta.graph = g.graph.apply_logged(slot, item.index(), is_write, p);
        } else {
            g.graph.apply(slot, item.index(), is_write, p);
        }
        let caused_non_serializable = g.graph.cyclic_at == Some(p);
        let out = (
            g.graph.serializable(),
            g.first_non_dr.is_none(),
            caused_non_serializable,
            caused_non_dr,
        );
        if self.logging {
            g.log.record(delta);
        }
        out
    }

    /// Stage 3 for shard `k` (takes the shard's write lock; the caller
    /// holds its ticket). Returns whether this access closed the
    /// conjunct's first cycle.
    fn stage_shard(&self, k: usize, slot: usize, item: ItemId, is_write: bool, p: OpIndex) -> bool {
        let mut sh = self.shards[k].state.write();
        self.stage_shard_locked(&mut sh, slot, item, is_write, p)
    }

    /// Stage 3's body against an already-locked shard — the batch path
    /// holds one write lock per touched shard and runs its whole run
    /// of in-scope operations through this, in ticket order.
    fn stage_shard_locked(
        &self,
        sh: &mut ShardState,
        slot: usize,
        item: ItemId,
        is_write: bool,
        p: OpIndex,
    ) -> bool {
        if self.logging {
            let d = sh.graph.apply_logged(slot, item.index(), is_write, p);
            sh.log.push((p.0 as u32, d));
        } else {
            sh.graph.apply(slot, item.index(), is_write, p);
        }
        let closed = sh.graph.cyclic_at == Some(p);
        if closed {
            self.first_violation.fetch_min(p.0 as u32, Ordering::AcqRel);
        }
        closed
    }

    /// Wait for every in-flight push to clear the pipeline *and*
    /// publish its floor rank. Must be called with the sequence lock
    /// held (no new positions can be claimed, and the in-flight count
    /// cannot grow); the already-ticketed pushes finish without
    /// needing that lock, so this terminates after at most `threads`
    /// turns.
    fn drain(&self, s: &SeqState) {
        wait_turn(&self.gserving, s.gticket);
        for (k, shard) in self.shards.iter().enumerate() {
            wait_turn(&shard.serving, s.tickets[k]);
        }
        wait_turn(&self.inflight, 0);
    }

    /// Retract the logged suffix until `n` operations remain, in
    /// `O(ops undone)` — each stage's journal pops in reverse position
    /// order (the per-stage LIFO the undo layer requires), and a shard
    /// is locked only while its own entries pop. Concurrent pushes
    /// stall at the sequence stage for the duration; however, because
    /// the §2.2 totals are owner-maintained, the transactions whose
    /// operations fall in the truncated suffix must have no push in
    /// flight (coordinated rollback / bench use). The concurrent-safe
    /// abort primitive is [`ShardedMonitor::retract_txn`], which only
    /// ever rewrites the calling thread's own totals. Returns the
    /// number of operations undone.
    ///
    /// Panics if the monitor does not journal
    /// ([`ShardedMonitor::new_logged`]), `n` exceeds the current
    /// length, or `n` undercuts a [`ShardedMonitor::checkpoint`]ed
    /// floor (those entries were reclaimed as permanent).
    pub fn truncate_to(&self, n: usize) -> usize {
        let mut s = self.seq.lock();
        self.drain(&s);
        self.truncate_locked(&mut s, n, None)
    }

    /// Raise every stage journal's retraction floor to the oldest
    /// *live* transaction's first operation (the whole trace when none
    /// are live), dropping the per-push deltas below it: those pushes
    /// become permanent and their memory is reclaimed — the long-run
    /// memory bound for OCC servers, matching
    /// [`OnlineMonitor::checkpoint`](super::OnlineMonitor::checkpoint)
    /// as surfaced by the scheduler's `MonitorAdmission`. Returns the
    /// new floor.
    ///
    /// Quiesces the pipeline for the duration (holds the sequence
    /// mutex and drains in-flight pushes), so the three journals —
    /// sequence, global, per-shard — advance to the same floor
    /// atomically; a shard is locked only long enough to drop its own
    /// below-floor entries.
    ///
    /// The contract is on the caller's `live` set: after the
    /// checkpoint, [`ShardedMonitor::truncate_to`] and
    /// [`ShardedMonitor::retract_txn`] **panic** if asked to reach
    /// below the floor, so `live` must include every transaction that
    /// may yet abort. An unlogged monitor has nothing to reclaim and
    /// reports its current length.
    pub fn checkpoint<I: IntoIterator<Item = TxnId>>(&self, live: I) -> usize {
        let mut s = self.seq.lock();
        self.drain(&s);
        if !self.logging {
            return s.schedule.len();
        }
        let floor = live
            .into_iter()
            .filter_map(|t| s.schedule.txn_slot(t).map(|slot| s.first_op[slot] as usize))
            .min()
            .unwrap_or(s.schedule.len());
        let floor = s.log.checkpoint(floor);
        if let Some(journal) = s.journal.as_deref_mut() {
            journal.floor_raised(floor);
        }
        self.gstate.write().log.checkpoint(floor);
        for shard in &self.shards {
            let mut sh = shard.state.write();
            let below = sh.log.partition_point(|&(pos, _)| (pos as usize) < floor);
            sh.log.drain(..below);
        }
        floor
    }

    /// The journals' retraction floor: the prefix length below which
    /// pushes are permanent (0 until a checkpoint raises it; equal to
    /// [`ShardedMonitor::len`] on an unlogged monitor).
    pub fn log_floor(&self) -> usize {
        let s = self.seq.lock();
        if self.logging {
            s.log.base()
        } else {
            s.schedule.len()
        }
    }

    /// Sequence-journal entries currently held — one per retractable
    /// push, bounded by `len() - log_floor()` (the checkpoint test
    /// pins this).
    pub fn logged_len(&self) -> usize {
        self.seq.lock().log.len()
    }

    /// Declare `txn` finished: it will issue no further operations.
    /// Committed-prefix compaction ([`ShardedMonitor::compact`]) only
    /// advances over finished transactions. Advisory until the
    /// transaction is summarized — a later push for it is still
    /// accepted and simply holds the frontier back.
    pub fn finish_txn(&self, txn: TxnId) {
        let mut s = self.seq.lock();
        if s.schedule.txn_slot(txn).is_some() {
            s.finished.insert(txn);
        }
    }

    /// The **compaction frontier**: the longest prefix in which every
    /// operation belongs to a finished transaction whose *last*
    /// operation also lies in that prefix, clamped to the journals'
    /// retraction floor (a compacted push must already be permanent —
    /// the frontier-safety condition shared with
    /// [`ShardedMonitor::checkpoint`] and WAL truncation).
    pub fn compaction_frontier(&self) -> usize {
        let s = self.seq.lock();
        self.frontier_locked(&s)
    }

    /// The frontier scan, under the held sequence lock. On a logged
    /// monitor the limit is the checkpoint floor (`log.base()`); an
    /// unlogged monitor's pushes are all permanent, so the whole
    /// schedule is eligible.
    fn frontier_locked(&self, s: &SeqState) -> usize {
        let limit = if self.logging {
            s.log.base()
        } else {
            s.schedule.len()
        };
        let mut hi = s.schedule.base();
        let mut frontier = s.schedule.base();
        for p in s.schedule.base()..limit {
            let slot = s.schedule.slot_of_op(OpIndex(p));
            if !s.finished.contains(&s.schedule.txn_ids()[slot]) {
                break;
            }
            let last = s.schedule.slot_last_raw(slot) as usize;
            if last >= limit {
                break;
            }
            hi = hi.max(last + 1);
            if p + 1 == hi {
                frontier = p + 1;
            }
        }
        frontier
    }

    /// **Committed-prefix compaction**, sharded: collapse the prefix
    /// below [`ShardedMonitor::compaction_frontier`] into a summary —
    /// per-item last-writer/last-reader boundary facts plus the
    /// condensed reachability of the global and per-conjunct conflict
    /// graphs — reclaiming schedule segments, graph nodes,
    /// Pearce–Kelly order slots, delayed-read rows and the summarized
    /// transactions' §2.2 totals cells.
    ///
    /// Quiesces the pipeline for the duration (sequence mutex held,
    /// in-flight pushes drained), then walks the stages in lock-rank
    /// order — global, then each shard ascending — so the discipline
    /// that rules out deadlock covers compaction too. Every verdict,
    /// certificate and [`PushOutcome`] after the call is
    /// byte-identical to an uncompacted twin's (pinned by the twin
    /// harness in `tests/sharded_props.rs`); pushes and retractions
    /// for summarized transactions are rejected with
    /// [`CoreError::SummarizedTransaction`].
    pub fn compact(&self) -> CompactStats {
        let mut s = self.seq.lock();
        self.drain(&s);
        let frontier = self.frontier_locked(&s);
        let base = s.schedule.base();
        if frontier <= base {
            return CompactStats {
                frontier: base,
                ops_reclaimed: 0,
                txns_summarized: 0,
            };
        }
        // Global stage: nodes a retained undo entry references must
        // survive the condensation (the entry has to stay replayable
        // in LIFO order).
        let mut g = self.gstate.write();
        let mut kept_global = vec![false; g.graph.dag.len()];
        for delta in g.log.iter() {
            delta.mark_nodes(&mut kept_global);
        }
        let summarized = s.schedule.compact_prefix(frontier);
        let s_cut = summarized.len();
        s.first_op.drain(..s_cut);
        let gmap = g.graph.compact(s_cut, kept_global);
        for delta in g.log.iter_mut() {
            delta.remap(&gmap, s_cut as u32);
        }
        let rows = g.dirty_reads.len();
        g.dirty_reads.drain(..s_cut.min(rows));
        drop(g);
        // Conjunct shards, ascending rank.
        for shard in &self.shards {
            let mut sh = shard.state.write();
            let mut kept = vec![false; sh.graph.dag.len()];
            for (_, d) in &sh.log {
                d.mark_nodes(&mut kept);
            }
            let map = sh.graph.compact(s_cut, kept);
            for (_, d) in &mut sh.log {
                d.remap_nodes(&map);
            }
        }
        // The summarized transactions can never push again, so their
        // §2.2 totals cells are dead weight — reclaim them. (The
        // totals map is unranked; taking it under the sequence mutex
        // is safe because no path acquires the sequence mutex while
        // holding it.)
        {
            let mut totals = self.totals.write();
            for t in &summarized {
                totals.remove(t);
            }
        }
        for t in &summarized {
            s.finished.remove(t);
            s.summarized.insert(*t);
        }
        s.compactions += 1;
        s.ops_reclaimed += (frontier - base) as u64;
        CompactStats {
            frontier,
            ops_reclaimed: frontier - base,
            txns_summarized: s_cut,
        }
    }

    /// Compaction calls that actually advanced the frontier.
    pub fn compactions(&self) -> u64 {
        self.seq.lock().compactions
    }

    /// Total operations reclaimed across all compactions.
    pub fn ops_reclaimed(&self) -> u64 {
        self.seq.lock().ops_reclaimed
    }

    /// Was `txn` summarized into the permanent prefix?
    pub fn is_summarized(&self, txn: TxnId) -> bool {
        self.seq.lock().summarized.contains(txn)
    }

    /// A structural estimate of the monitor's resident heap, in bytes:
    /// rows × element sizes across the schedule, order tables, stage
    /// journals, graphs, delayed-read rows and totals cells. Not
    /// allocator-exact — its job is to make the compaction plateau
    /// measurable (the `compact` experiment) without an allocator
    /// hook. Quiesces briefly (takes each stage's lock in rank order).
    pub fn resident_bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        let itemset = |set: &ItemSet| size_of::<ItemSet>() + set.len().div_ceil(8);
        let s = self.seq.lock();
        let mut total = std::mem::size_of_val(s.schedule.ops())
            + s.schedule.txn_ids().len()
                * (size_of::<TxnId>() + size_of::<u32>() + 2 * size_of::<usize>());
        total += (s.last_write.len() + s.first_op.len()) * size_of::<u32>();
        total += s.log.len() * size_of::<SeqDelta>();
        total += s.summarized.resident_bytes();
        {
            let g = self.gstate.read();
            total += g.graph.resident_bytes();
            total += g.dirty_reads.iter().map(itemset).sum::<usize>();
            total += g.log.len() * size_of::<GlobalDelta>();
        }
        for shard in &self.shards {
            let sh = shard.state.read();
            total += sh.graph.resident_bytes();
            total += sh.log.len() * (size_of::<u32>() + size_of::<GraphDelta>());
        }
        total += self.totals.read().len()
            * (size_of::<TxnId>() + size_of::<Arc<Mutex<TxnTotals>>>() + size_of::<TxnTotals>());
        total
    }

    /// The truncation body, under the held sequence lock after a
    /// drain. `victim` selects whose §2.2 totals to strip: `None`
    /// (plain [`ShardedMonitor::truncate_to`]) strips every popped
    /// operation's bit — correct only when the affected transactions'
    /// pushers are quiescent; `Some(txn)` ([`ShardedMonitor::retract_txn`])
    /// strips only the victim's, leaving survivors' totals untouched
    /// because their operations are re-pushed immediately *and* their
    /// owning threads may hold already-validated bits for in-flight
    /// pushes parked at the sequence mutex (the totals cells are
    /// owner-maintained; a retraction must not rewrite another
    /// thread's cell under it).
    fn truncate_locked(&self, s: &mut SeqState, n: usize, victim: Option<TxnId>) -> usize {
        assert!(self.logging, "truncate_to on an unlogged ShardedMonitor");
        assert!(
            n <= s.schedule.len(),
            "truncate_to({n}) beyond length {}",
            s.schedule.len()
        );
        assert!(
            n >= s.log.base(),
            "truncate_to({n}) below the checkpoint floor {} (those deltas were reclaimed; \
             the checkpoint's live set must cover every transaction that may abort, and the \
             compaction frontier — which never exceeds this floor — is permanent)",
            s.log.base()
        );
        debug_assert!(
            n >= s.schedule.base(),
            "truncate_to({n}) below the compaction frontier {}",
            s.schedule.base()
        );
        let undone = s.schedule.len() - n;
        if undone > 0 {
            if let Some(journal) = s.journal.as_deref_mut() {
                journal.truncated(n);
            }
        }
        for _ in 0..undone {
            let p = s.schedule.len() - 1;
            let op = s.schedule.op(OpIndex(p)).clone();
            let slot = s.schedule.slot_of_op(OpIndex(p));
            let (item, is_write) = (op.item, op.is_write());
            let sd = s.log.pop().expect("one sequence entry per logged push");
            // Shards first (reverse of push order); ticket turnstiles
            // roll back one step so re-claimed tickets line up.
            for (k, scope) in self.scopes.iter().enumerate().rev() {
                if !scope.contains(item) {
                    continue;
                }
                {
                    let mut sh = self.shards[k].state.write();
                    let (pos, d) = sh.log.pop().expect("one shard entry per touched push");
                    debug_assert_eq!(pos as usize, p);
                    sh.graph.undo(slot, item.index(), is_write, d);
                }
                s.tickets[k] -= 1;
                self.shards[k]
                    .serving
                    .store(s.tickets[k], Ordering::Release);
            }
            // Global stage.
            {
                let mut g = self.gstate.write();
                let gd = g.log.pop().expect("one global entry per logged push");
                g.graph.undo(slot, item.index(), is_write, gd.graph);
                if let Some(w_slot) = gd.dr_mark {
                    g.dirty_reads[w_slot as usize].remove(item);
                }
                for k in gd.conjunct_non_dr_set {
                    g.conjunct_non_dr[k as usize] = None;
                }
                if gd.set_first_non_dr {
                    g.first_non_dr = None;
                }
                if sd.new_slot {
                    g.dirty_reads.truncate(slot);
                }
            }
            s.gticket -= 1;
            self.gserving.store(s.gticket, Ordering::Release);
            // Sequence tables and §2.2 totals (see the `victim`
            // contract above).
            if is_write {
                s.last_write[item.index()] = sd.prev_last_write;
            }
            s.schedule
                .pop_op_unchecked(sd.new_slot, sd.prev_slot_last, sd.prev_item_ub);
            if sd.new_slot {
                s.first_op.pop();
            }
            let strip_totals = victim.is_none_or(|v| v == op.txn);
            if strip_totals {
                if sd.new_slot {
                    self.totals.write().remove(&op.txn);
                } else {
                    let cell = self
                        .totals
                        .read()
                        .get(&op.txn)
                        .map(Arc::clone)
                        .expect("totals cell exists for a pushed transaction");
                    let mut t = cell.lock();
                    if is_write {
                        t.ws.remove(item);
                    } else {
                        t.rs.remove(item);
                    }
                }
            }
        }
        if undone > 0 {
            self.recompute_floor();
        }
        undone
    }

    /// Recompute the lock-free floor and first-violation mirror from
    /// the per-stage state (retraction can *improve* the verdict, so
    /// the monotone `fetch_max`/`fetch_min` floors must be reset).
    /// Requires the pipeline to be quiescent under the sequence lock.
    fn recompute_floor(&self) {
        let mut fv = NO_POS;
        for shard in &self.shards {
            if let Some(c) = shard.state.read().graph.cyclic_at {
                fv = fv.min(c.0 as u32);
            }
        }
        self.first_violation.store(fv, Ordering::Release);
        let g = self.gstate.read();
        let level = VerdictLevel::compose(
            g.graph.serializable(),
            g.first_non_dr.is_none(),
            fv == NO_POS,
        );
        self.floor.store(rank(level), Ordering::Release);
    }

    /// Abort `txn`: truncate to its first operation and re-push the
    /// surviving interleaving (every retracted operation of another
    /// transaction, in its original order). No new *cycle* can appear
    /// — the survivors' conflict edges are a subset of those already
    /// certified. Delayed-read marks, however, can be **reassigned**:
    /// a survivor read that took its value from the victim's write is
    /// re-recorded as reading from the earlier writer, which can mint
    /// a DR break that no [`PushOutcome`] ever reported (the verdict
    /// and floor reflect it exactly; only the per-push causality is
    /// gone). An executor holding a DR-sensitive floor must therefore
    /// prevent reads of the victim's writes from being admitted at
    /// all — the OCC executor does so by keeping written items dirty
    /// (reader-blocking) until the writer commits, and by retracting
    /// *before* rolling the store back. Atomic with respect to
    /// concurrent pushes (they stall at the sequence stage). Returns
    /// `(ops undone, ops re-pushed)` — the abort's cost, proportional
    /// to the suffix after the transaction's first operation, not to
    /// the schedule.
    ///
    /// A transaction the monitor has never seen retracts nothing. A
    /// transaction summarized by committed-prefix compaction
    /// ([`ShardedMonitor::compact`]) is rejected with
    /// [`CoreError::SummarizedTransaction`]: its operations live in
    /// the collapsed, permanent prefix and can no longer be undone.
    pub fn retract_txn(&self, txn: TxnId) -> Result<(usize, usize)> {
        let mut s = self.seq.lock();
        if s.summarized.contains(txn) {
            return Err(CoreError::SummarizedTransaction { txn });
        }
        self.drain(&s);
        let Some(slot) = s.schedule.txn_slot(txn) else {
            return Ok((0, 0));
        };
        let first = s.first_op[slot] as usize;
        let survivors: Vec<Operation> = (first..s.schedule.len())
            .map(|p| s.schedule.op(OpIndex(p)).clone())
            .filter(|o| o.txn != txn)
            .collect();
        let undone = self.truncate_locked(&mut s, first, Some(txn));
        let repushed = survivors.len();
        for op in survivors {
            self.push_locked(&mut s, op);
        }
        if repushed > 0 {
            // One exact recompute after the whole re-push (the
            // truncation already recomputed; per-op floors would be
            // overwritten anyway and cost O(shards) locks each).
            self.recompute_floor();
        }
        Ok((undone, repushed))
    }

    /// Run the whole pipeline inline for one operation while the
    /// sequence lock is held and the pipeline is quiescent (the
    /// re-push half of [`ShardedMonitor::retract_txn`]): every ticket
    /// is claimed and served immediately, so the journals stay in
    /// position order. Does **not** touch the §2.2 totals: the
    /// truncation it follows left the survivors' bits in place (their
    /// owning threads may be mid-push against those very cells).
    fn push_locked(&self, s: &mut SeqState, op: Operation) {
        let (item, is_write) = (op.item, op.is_write());
        let mut turns: Vec<(usize, u32)> = self
            .scopes
            .iter()
            .enumerate()
            .filter(|(_, scope)| scope.contains(item))
            .map(|(k, _)| (k, 0))
            .collect();
        if let Some(journal) = s.journal.as_deref_mut() {
            journal.appended(&op);
        }
        let (p, slot, rf_slot, gticket) = self.stage_seq(s, op, &mut turns);
        {
            let mut g = self.gstate.write();
            self.stage_global(&mut g, slot, item, is_write, rf_slot, p);
        }
        self.gserving.store(gticket + 1, Ordering::Release);
        for &(k, t) in &turns {
            self.stage_shard(k, slot, item, is_write, p);
            self.shards[k].serving.store(t + 1, Ordering::Release);
        }
    }

    /// The current lock-free verdict floor — no locks taken.
    pub fn floor(&self) -> VerdictLevel {
        level_of(self.floor.load(Ordering::Acquire))
    }

    /// Would admitting this access keep `level`? Read-only on the
    /// shards (`RwLock::read`), exclusive nowhere. Like the
    /// single-writer probe this is exact against the *current* state;
    /// under concurrent pushes the caller must hold the item's
    /// conflict domain (as the lock-based executors do) for the
    /// answer to stay binding. A summarized transaction is never
    /// admitted: its push would be rejected
    /// ([`CoreError::SummarizedTransaction`]) regardless of what the
    /// graphs say.
    pub fn would_admit(
        &self,
        txn: TxnId,
        item: ItemId,
        is_write: bool,
        level: AdmissionLevel,
    ) -> bool {
        let slot = {
            let s = self.seq.lock();
            if s.summarized.contains(txn) {
                return false;
            }
            s.schedule.txn_slot(txn)
        };
        match level {
            AdmissionLevel::Serializable => {
                self.gstate
                    .read()
                    .graph
                    .admits(slot, item.index(), is_write)
            }
            AdmissionLevel::Pwsr => self.admits_conjuncts(slot, item, is_write),
            AdmissionLevel::PwsrDr => {
                let clean = {
                    let g = self.gstate.read();
                    slot.and_then(|s| g.dirty_reads.get(s))
                        .is_none_or(ItemSet::is_empty)
                };
                clean && self.admits_conjuncts(slot, item, is_write)
            }
        }
    }

    fn admits_conjuncts(&self, slot: Option<usize>, item: ItemId, is_write: bool) -> bool {
        self.scopes
            .iter()
            .enumerate()
            .filter(|(_, scope)| scope.contains(item))
            .all(|(k, _)| {
                self.shards[k]
                    .state
                    .read()
                    .graph
                    .admits(slot, item.index(), is_write)
            })
    }

    /// The full verdict, assembled from every stage's state. **Exact
    /// at quiescence** (no push in flight — e.g. after joining the
    /// worker threads); mid-flight it is a consistent lower bound in
    /// the same sense as [`ShardedMonitor::floor`]. At quiescence it
    /// is byte-identical to the verdict of a single-writer
    /// [`OnlineMonitor`](super::OnlineMonitor) fed the same
    /// interleaving.
    pub fn verdict(&self) -> Verdict {
        let len = self.seq.lock().schedule.len();
        let g = self.gstate.read();
        let mut first_violation: Option<OpIndex> = None;
        for shard in &self.shards {
            if let Some(c) = shard.state.read().graph.cyclic_at {
                first_violation = Some(first_violation.map_or(c, |f| f.min(c)));
            }
        }
        let serializable = g.graph.serializable();
        let pwsr = first_violation.is_none();
        let dr = g.first_non_dr.is_none();
        let level = VerdictLevel::compose(serializable, dr, pwsr);
        Verdict {
            len,
            level,
            serializable,
            dr,
            first_violation,
            first_non_serializable: g.graph.cyclic_at,
            first_non_dr: g.first_non_dr,
            lemma2_certified: pwsr,
            lemma6_certified: pwsr && g.conjunct_non_dr.iter().all(Option::is_none),
        }
    }

    /// Does the Lemma 2 certificate hold for conjunct `k` (module
    /// equivalence: the projection is still serializable)?
    pub fn lemma2_holds(&self, k: usize) -> bool {
        self.shards[k].state.read().graph.cyclic_at.is_none()
    }

    /// Does the Lemma 6 certificate hold for conjunct `k`?
    pub fn lemma6_holds(&self, k: usize) -> bool {
        self.lemma2_holds(k) && self.gstate.read().conjunct_non_dr[k].is_none()
    }

    /// A snapshot of the certified interleaving so far.
    pub fn snapshot_schedule(&self) -> Schedule {
        self.seq.lock().schedule.clone()
    }

    /// Consume the monitor: the certified interleaving plus the final
    /// (exact — the monitor is owned, so necessarily quiescent)
    /// verdict.
    pub fn into_parts(self) -> (Schedule, Verdict) {
        let verdict = self.verdict();
        (self.seq.into_inner().schedule, verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::super::OnlineMonitor;
    use super::*;
    use crate::value::Value;
    use std::sync::Arc;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn example2_scopes() -> Vec<ItemSet> {
        vec![
            ItemSet::from_iter([ItemId(0), ItemId(1)]),
            ItemSet::from_iter([ItemId(2)]),
        ]
    }

    fn example2_ops() -> Vec<Operation> {
        vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ]
    }

    /// Sequential pushes: the sharded verdict equals the single-writer
    /// verdict at every prefix (same interleaving by construction) —
    /// with and without logging.
    #[test]
    fn sequential_parity_at_every_prefix() {
        for logged in [false, true] {
            for ops in [
                example2_ops(),
                vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)],
                vec![wr(1, 0, 1), rd(1, 2, 1), rd(2, 0, 1), wr(2, 2, 2)],
            ] {
                let sharded = if logged {
                    ShardedMonitor::new_logged(example2_scopes())
                } else {
                    ShardedMonitor::new(example2_scopes())
                };
                let mut single = OnlineMonitor::new(example2_scopes());
                for op in ops {
                    let floor = sharded.push(op.clone()).unwrap();
                    let v = single.push(op).unwrap();
                    assert_eq!(sharded.verdict(), v);
                    // The floor is sound: never better than the truth.
                    assert!(rank(floor) >= rank(v.level));
                }
            }
        }
    }

    #[test]
    fn threaded_pushes_are_certified_and_parity_checked() {
        // Three transactions on three disjoint items, one thread each:
        // any interleaving is serializable; the recorded schedule must
        // replay to the identical verdict.
        let scopes: Vec<ItemSet> = (0..3u32).map(|i| ItemSet::from_iter([ItemId(i)])).collect();
        let monitor = Arc::new(ShardedMonitor::new(scopes.clone()));
        std::thread::scope(|scope| {
            for t in 1..=3u32 {
                let monitor = Arc::clone(&monitor);
                scope.spawn(move || {
                    for step in 0..20i64 {
                        // §2.2: one read and one write per (txn, item);
                        // use per-step fresh transactions.
                        let txn = t + 3 * step as u32;
                        monitor.push(rd(txn, t - 1, step)).unwrap();
                        monitor.push(wr(txn, t - 1, step + 1)).unwrap();
                    }
                });
            }
        });
        let monitor = Arc::try_unwrap(monitor).expect("threads joined");
        let (schedule, verdict) = monitor.into_parts();
        assert_eq!(schedule.len(), 3 * 20 * 2);
        assert_eq!(verdict.level, VerdictLevel::Serializable);
        let mut replay = OnlineMonitor::new(scopes);
        let mut last = None;
        for op in schedule.ops() {
            last = Some(replay.push(op.clone()).unwrap());
        }
        assert_eq!(last.unwrap(), verdict);
    }

    #[test]
    fn sharded_rejects_malformed_transactions_untouched() {
        let m = ShardedMonitor::new(example2_scopes());
        m.push(rd(1, 0, 0)).unwrap();
        m.push(wr(1, 1, 1)).unwrap();
        assert!(m.push(rd(1, 0, 0)).is_err(), "duplicate read");
        assert!(m.push(rd(1, 1, 1)).is_err(), "read after write");
        assert!(m.push(wr(1, 1, 2)).is_err(), "duplicate write");
        assert_eq!(m.len(), 2);
        m.push(rd(2, 0, 0)).unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn floor_is_monotone_and_reaches_the_verdict() {
        let m = ShardedMonitor::new(example2_scopes());
        let mut worst = 0u8;
        for op in example2_ops() {
            let floor = m.push(op).unwrap();
            assert!(rank(floor) >= worst, "floor regressed");
            worst = rank(floor);
        }
        assert_eq!(m.floor(), VerdictLevel::Pwsr);
        assert_eq!(m.verdict().level, VerdictLevel::Pwsr);
        assert!(!m.verdict().dr && !m.verdict().serializable);
    }

    #[test]
    fn would_admit_matches_single_writer_semantics() {
        // Same scenario as the single-writer test: the cycle in {a, b}
        // closes at r1(b); admission at Pwsr must reject exactly it.
        let ops = [wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)];
        let m = ShardedMonitor::new(example2_scopes());
        for (k, op) in ops.iter().enumerate() {
            let ok = m.would_admit(op.txn, op.item, op.is_write(), AdmissionLevel::Pwsr);
            if k < 3 {
                assert!(ok, "op {k} must be admitted");
                m.push(op.clone()).unwrap();
            } else {
                assert!(!ok, "the cycle-closing read must be rejected");
            }
        }
        assert_eq!(m.len(), 3);
        assert!(m.verdict().pwsr());
        // DR probe: after w1(a), r2(a), T1's next op materializes the
        // dirty read; PwsrDr rejects it.
        let m = ShardedMonitor::new(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(rd(2, 0, 1)).unwrap();
        assert!(!m.would_admit(TxnId(1), ItemId(2), false, AdmissionLevel::PwsrDr));
        assert!(m.would_admit(TxnId(1), ItemId(2), false, AdmissionLevel::Pwsr));
        assert!(m.would_admit(TxnId(3), ItemId(2), true, AdmissionLevel::PwsrDr));
    }

    #[test]
    fn empty_monitor_is_trivially_serializable() {
        let m = ShardedMonitor::new(example2_scopes());
        assert!(m.is_empty());
        let v = m.verdict();
        assert_eq!(v.level, VerdictLevel::Serializable);
        assert!(v.dr && v.lemma2_certified && v.lemma6_certified);
        assert!(m.lemma2_holds(0) && m.lemma6_holds(1));
        assert!(m.snapshot_schedule().is_empty());
    }

    /// Push every op logged, truncate back to every length, and check
    /// the monitor equals a fresh single-writer replay of the
    /// shortened prefix — verdict, certificates, and future behaviour.
    #[test]
    fn truncate_to_equals_fresh_replay() {
        let runs = [
            example2_ops(),
            vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)],
            vec![
                wr(1, 1, 1),
                wr(2, 1, 2),
                rd(2, 0, 0),
                rd(3, 1, 2),
                rd(1, 0, 0),
            ],
        ];
        for ops in runs {
            for cut in 0..=ops.len() {
                let m = ShardedMonitor::new_logged(example2_scopes());
                for op in &ops {
                    m.push(op.clone()).unwrap();
                }
                assert_eq!(m.truncate_to(cut), ops.len() - cut);
                let mut fresh = OnlineMonitor::new(example2_scopes());
                for op in &ops[..cut] {
                    fresh.push(op.clone()).unwrap();
                }
                assert_eq!(m.verdict(), fresh.verdict(), "cut {cut}");
                assert_eq!(m.snapshot_schedule(), *fresh.schedule());
                for k in 0..2 {
                    assert_eq!(m.lemma2_holds(k), fresh.lemma2_holds(k));
                    assert_eq!(m.lemma6_holds(k), fresh.lemma6_holds(k));
                }
                // The truncated monitor keeps working: floor resets
                // and further pushes agree with the fresh monitor.
                assert_eq!(m.floor(), fresh.verdict().level);
                for op in &ops[cut..] {
                    m.push(op.clone()).unwrap();
                    fresh.push(op.clone()).unwrap();
                }
                assert_eq!(m.verdict(), fresh.verdict());
            }
        }
    }

    /// Aborting a transaction removes exactly its operations; the
    /// surviving interleaving certifies identically to a single-writer
    /// replay, and the previously-broken rung heals when the aborted
    /// transaction caused the break.
    #[test]
    fn retract_txn_filters_and_heals() {
        // The canonical non-PWSR interleaving: r1(b) closes the {a,b}
        // cycle. Retract T1 — the survivor (T2 alone) is serializable.
        let ops = [wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2), rd(1, 1, 2)];
        let m = ShardedMonitor::new_logged(example2_scopes());
        let mut last = None;
        for op in &ops {
            last = Some(m.push_outcome(op.clone()).unwrap());
        }
        let out = last.unwrap();
        assert!(out.caused_violation && out.breaches(AdmissionLevel::Pwsr));
        assert_eq!(m.verdict().level, VerdictLevel::Violation);
        let (undone, repushed) = m.retract_txn(TxnId(1)).unwrap();
        assert_eq!((undone, repushed), (4, 2));
        let schedule = m.snapshot_schedule();
        assert!(schedule.ops().iter().all(|o| o.txn == TxnId(2)));
        let mut replay = OnlineMonitor::new(example2_scopes());
        for op in schedule.ops() {
            replay.push(op.clone()).unwrap();
        }
        assert_eq!(m.verdict(), replay.verdict());
        assert_eq!(m.verdict().level, VerdictLevel::Serializable);
        assert_eq!(m.floor(), VerdictLevel::Serializable);
        // An unknown transaction retracts nothing.
        assert_eq!(m.retract_txn(TxnId(99)).unwrap(), (0, 0));
        // T2 can be retracted too, emptying the monitor.
        let (undone, repushed) = m.retract_txn(TxnId(2)).unwrap();
        assert_eq!((undone, repushed), (2, 0));
        assert!(m.is_empty());
        assert_eq!(m.verdict().level, VerdictLevel::Serializable);
    }

    /// After a retraction, the §2.2 totals are restored: the aborted
    /// transaction can re-push the same accesses, and survivors'
    /// duplicate protections still hold.
    #[test]
    fn retraction_restores_totals() {
        let m = ShardedMonitor::new_logged(example2_scopes());
        m.push(rd(1, 0, 0)).unwrap();
        m.push(wr(2, 1, 1)).unwrap();
        m.push(wr(1, 2, 2)).unwrap();
        m.retract_txn(TxnId(1)).unwrap();
        // T1's totals are gone: the same accesses are valid again.
        m.push(rd(1, 0, 0)).unwrap();
        m.push(wr(1, 2, 2)).unwrap();
        // T2 survived with its totals intact.
        assert!(m.push(wr(2, 1, 9)).is_err(), "duplicate write kept");
        assert_eq!(m.len(), 3);
    }

    /// The non-DR causality flag: the writer's next operation
    /// materializes the dirty read and reports `caused_non_dr`.
    #[test]
    fn push_outcome_reports_dr_causality() {
        let m = ShardedMonitor::new_logged(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(rd(2, 0, 1)).unwrap();
        let out = m.push_outcome(rd(1, 2, 0)).unwrap();
        assert!(out.caused_non_dr && !out.caused_violation);
        assert!(out.breaches(AdmissionLevel::PwsrDr));
        assert!(!out.breaches(AdmissionLevel::Pwsr));
        // Retract the materializing transaction: DR is restored.
        m.retract_txn(TxnId(1)).unwrap();
        assert!(m.verdict().dr);
        assert_eq!(m.floor(), VerdictLevel::Serializable);
    }

    #[test]
    fn serial_timing_accumulates() {
        let m = ShardedMonitor::new(example2_scopes()).with_serial_timing();
        for op in example2_ops() {
            m.push(op).unwrap();
        }
        assert!(m.serial_ns_per_op() > 0.0);
        let untimed = ShardedMonitor::new(example2_scopes());
        untimed.push(wr(1, 0, 1)).unwrap();
        assert_eq!(untimed.serial_ns_per_op(), 0.0);
    }

    #[test]
    #[should_panic(expected = "unlogged ShardedMonitor")]
    fn truncate_unlogged_panics() {
        let m = ShardedMonitor::new(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.truncate_to(0);
    }

    /// `checkpoint` raises every stage journal's floor to the oldest
    /// live transaction's first operation, shrinking the sequence,
    /// global and per-shard journals to the live suffix; the live
    /// suffix still aborts incrementally afterwards.
    #[test]
    fn checkpoint_bounds_journals_to_the_live_suffix() {
        let m = ShardedMonitor::new_logged(example2_scopes());
        // 30 settled single-op transactions across both scopes, then
        // one live straggler.
        for k in 0..30u32 {
            m.push(wr(k + 10, k % 3, 1)).unwrap();
        }
        let live = TxnId(500);
        m.push(rd(live.0, 0, 1)).unwrap();
        // Unbounded: one sequence entry per push, shard entries at
        // every position each shard saw.
        assert_eq!(m.logged_len(), 31);
        assert_eq!(m.log_floor(), 0);
        let floor = m.checkpoint([live]);
        assert_eq!(floor, 30, "oldest live txn's first op");
        assert_eq!(m.log_floor(), 30);
        assert_eq!(m.logged_len(), 1);
        assert_eq!(m.len(), 31, "checkpoint retracts nothing");
        for shard in &m.shards {
            let sh = shard.state.read();
            assert!(
                sh.log.iter().all(|&(pos, _)| pos as usize >= 30),
                "below-floor shard deltas must be reclaimed"
            );
        }
        assert_eq!(m.gstate.read().log.base(), 30);
        // The live suffix still aborts incrementally, and the monitor
        // stays parity-exact with a fresh single-writer replay.
        let (undone, repushed) = m.retract_txn(live).unwrap();
        assert_eq!((undone, repushed), (1, 0));
        let mut fresh = OnlineMonitor::new(example2_scopes());
        for op in m.snapshot_schedule().ops() {
            fresh.push(op.clone()).unwrap();
        }
        assert_eq!(m.verdict(), fresh.verdict());
        // Nothing live: the whole journal drains.
        let floor = m.checkpoint([]);
        assert_eq!(floor, m.len());
        assert_eq!(m.logged_len(), 0);
        // A transaction the schedule has never seen does not lower
        // the floor (it contributes no first-op position).
        assert_eq!(m.checkpoint([TxnId(9999)]), m.len());
        // Unlogged monitors have nothing to reclaim.
        let u = ShardedMonitor::new(example2_scopes());
        u.push(wr(1, 0, 1)).unwrap();
        assert_eq!(u.checkpoint([]), 1);
        assert_eq!(u.log_floor(), 1);
    }

    /// Reaching below a checkpointed floor is a caller bug (the live
    /// set under-approximated the abortable transactions) and fails
    /// loudly rather than corrupting state.
    #[test]
    #[should_panic(expected = "below the checkpoint floor")]
    fn truncating_below_the_floor_panics() {
        let m = ShardedMonitor::new_logged(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(wr(2, 1, 1)).unwrap();
        assert_eq!(m.checkpoint([TxnId(2)]), 1);
        m.truncate_to(0);
    }

    /// Every interleaving (bounded, exhaustive) of a small
    /// three-transaction workload, driven through every lock-taking
    /// entry point — push, admission probe, verdict, retraction,
    /// checkpoint — under the debug lock-rank asserts: a lock-order
    /// regression anywhere in the pipeline fails this test
    /// deterministically, and each surviving state stays
    /// parity-exact with the single-writer monitor.
    #[test]
    fn exhaustive_interleavings_exercise_the_lock_discipline() {
        // Three 2-op transactions spanning both scopes ({0,1} and
        // {2}): writes and reads cross conjuncts so the global stage,
        // both shards, and the DR tracking all participate.
        let seqs: Vec<Vec<Operation>> = vec![
            vec![wr(1, 0, 1), rd(1, 2, 3)],
            vec![rd(2, 0, 1), wr(2, 1, 2)],
            vec![wr(3, 2, 3), rd(3, 1, 2)],
        ];
        fn merges(
            queues: &mut Vec<std::collections::VecDeque<Operation>>,
            current: &mut Vec<Operation>,
            out: &mut Vec<Vec<Operation>>,
        ) {
            if queues.iter().all(std::collections::VecDeque::is_empty) {
                out.push(current.clone());
                return;
            }
            for i in 0..queues.len() {
                if let Some(op) = queues[i].pop_front() {
                    current.push(op.clone());
                    merges(queues, current, out);
                    current.pop();
                    queues[i].push_front(op);
                }
            }
        }
        let mut queues: Vec<std::collections::VecDeque<Operation>> =
            seqs.into_iter().map(Into::into).collect();
        let mut all = Vec::new();
        merges(&mut queues, &mut Vec::new(), &mut all);
        assert_eq!(all.len(), 90, "6! / (2!)^3 interleavings");
        for ops in &all {
            let m = ShardedMonitor::new_logged(example2_scopes());
            let mut single = OnlineMonitor::new(example2_scopes());
            for op in ops {
                // Admission probes nest global + shard read locks.
                m.would_admit(op.txn, op.item, op.is_write(), AdmissionLevel::PwsrDr);
                m.push(op.clone()).unwrap();
                single.push(op.clone()).unwrap();
                // `verdict` holds the global lock across ascending
                // shard reads — the deepest read-side nesting.
                assert_eq!(m.verdict(), single.verdict());
            }
            // Retraction nests seq → global → shards (pops descend,
            // but locks are taken one at a time under seq).
            m.retract_txn(TxnId(2)).unwrap();
            // Checkpoint nests seq → global → each shard ascending.
            let floor = m.checkpoint([TxnId(1), TxnId(3)]);
            assert!(floor <= m.len());
            assert_eq!(m.truncate_to(m.len()), 0);
        }
    }

    /// The rank tracker itself rejects out-of-order acquisition — the
    /// deterministic failure mode every lock-order regression hits.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn out_of_order_acquisition_is_rejected() {
        super::lock_order::acquire(shard_rank(1));
        super::lock_order::acquire(RANK_GLOBAL);
    }

    /// Committed-prefix compaction on the sharded monitor: the
    /// compacted monitor's verdicts, certificates and `PushOutcome`s
    /// stay byte-identical to an uncompacted twin's, summarized
    /// transactions are rejected, and the resident footprint shrinks.
    #[test]
    fn sharded_compaction_matches_uncompacted_twin() {
        let ops1 = [wr(1, 0, 1), rd(2, 0, 1), wr(2, 2, 5), rd(1, 2, 5)];
        let ops2 = [wr(3, 1, 7), rd(4, 1, 7), wr(4, 2, 8), rd(3, 2, 8)];
        let m = ShardedMonitor::new(example2_scopes());
        let twin = ShardedMonitor::new(example2_scopes());
        for op in &ops1 {
            assert_eq!(
                m.push_outcome(op.clone()).unwrap(),
                twin.push_outcome(op.clone()).unwrap()
            );
        }
        m.finish_txn(TxnId(1));
        m.finish_txn(TxnId(2));
        assert_eq!(m.compaction_frontier(), 4);
        let stats = m.compact();
        assert_eq!(
            stats,
            CompactStats {
                frontier: 4,
                ops_reclaimed: 4,
                txns_summarized: 2
            }
        );
        assert!(m.is_summarized(TxnId(1)) && !m.is_summarized(TxnId(3)));
        assert_eq!(m.verdict(), twin.verdict());
        assert!(m.resident_bytes_estimate() < twin.resident_bytes_estimate());
        // A summarized transaction can no longer push — twice, to
        // prove the §2.2 totals bit of the rejected push rolled back
        // (a leaked bit would turn the second try into a
        // well-formedness error).
        for _ in 0..2 {
            assert!(matches!(
                m.push(wr(1, 5, 9)),
                Err(CoreError::SummarizedTransaction { txn: TxnId(1) })
            ));
        }
        // Fresh transactions continue with full parity.
        for op in &ops2 {
            assert_eq!(
                m.push_outcome(op.clone()).unwrap(),
                twin.push_outcome(op.clone()).unwrap()
            );
            assert_eq!(m.verdict(), twin.verdict());
        }
        for k in 0..2 {
            assert_eq!(m.lemma2_holds(k), twin.lemma2_holds(k));
            assert_eq!(m.lemma6_holds(k), twin.lemma6_holds(k));
        }
        // Second compaction (exercises the kept-summary-node path).
        m.finish_txn(TxnId(3));
        m.finish_txn(TxnId(4));
        m.compact();
        assert_eq!((m.compactions(), m.ops_reclaimed()), (2, 8));
        assert_eq!(m.verdict(), twin.verdict());
    }

    /// On a logged monitor the frontier is clamped to the checkpoint
    /// floor, and compaction composes with retraction: summarized
    /// transactions reject `retract_txn` with a descriptive error
    /// while the live suffix still aborts.
    #[test]
    fn sharded_compaction_respects_floor_and_rejects_summarized_retract() {
        let m = ShardedMonitor::new_logged(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(wr(2, 1, 1)).unwrap();
        m.finish_txn(TxnId(1));
        // No checkpoint yet: every push is retractable, so nothing is
        // eligible for the permanent prefix.
        assert_eq!(m.compaction_frontier(), 0);
        assert_eq!(m.compact(), CompactStats::default());
        assert_eq!(m.checkpoint([TxnId(2)]), 1);
        assert_eq!(m.compaction_frontier(), 1);
        let stats = m.compact();
        assert_eq!((stats.frontier, stats.txns_summarized), (1, 1));
        let err = m.retract_txn(TxnId(1)).unwrap_err();
        assert!(
            err.to_string().contains("summarized"),
            "descriptive rejection, got: {err}"
        );
        // The live transaction still aborts incrementally.
        assert_eq!(m.retract_txn(TxnId(2)).unwrap(), (1, 0));
        assert_eq!(m.len(), 1);
    }

    /// Satellite regression: reaching below the compaction frontier is
    /// impossible to do quietly — the frontier never exceeds the
    /// checkpoint floor, so the floor assert fires first and names the
    /// compacted prefix as permanent.
    #[test]
    #[should_panic(expected = "below the checkpoint floor")]
    fn truncating_below_the_compaction_frontier_panics() {
        let m = ShardedMonitor::new_logged(example2_scopes());
        m.push(wr(1, 0, 1)).unwrap();
        m.push(wr(2, 1, 1)).unwrap();
        m.finish_txn(TxnId(1));
        m.checkpoint([TxnId(2)]);
        assert_eq!(m.compact().frontier, 1);
        m.truncate_to(0);
    }
}
