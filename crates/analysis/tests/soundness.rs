//! Soundness harness for the static analyzer: over random small
//! workloads, a `Safe` verdict must agree with **exhaustive**
//! enumeration of every interleaving replayed through the
//! [`OnlineMonitor`] (zero breaches at the analyzed level), and every
//! `Unsafe` verdict must carry a counterexample that actually
//! breaches on replay. `Unknown` asserts nothing — that is its
//! meaning.
//!
//! [`OnlineMonitor`]: pwsr_core::monitor::OnlineMonitor

use proptest::prelude::*;
use pwsr_analysis::{analyze, breaches, AnalyzerConfig, StaticSafety};
use pwsr_core::catalog::Catalog;
use pwsr_core::ids::TxnId;
use pwsr_core::monitor::{AdmissionLevel, OnlineMonitor, Verdict};
use pwsr_core::schedule::Schedule;
use pwsr_core::state::{DbState, ItemSet};
use pwsr_core::value::{Domain, Value};
use pwsr_gen::chaos::enumerate_executions;
use pwsr_tplang::ast::Program;
use pwsr_tplang::parser::parse_program;

/// Two conjunct scopes over four items (mirrors the scheduler's test
/// fixture: d0 = {a0, b0}, d1 = {a1, b1}).
fn setup() -> (Catalog, Vec<ItemSet>, DbState) {
    let mut cat = Catalog::new();
    let a0 = cat.add_item("a0", Domain::int_range(-100_000, 100_000));
    let b0 = cat.add_item("b0", Domain::int_range(-100_000, 100_000));
    let a1 = cat.add_item("a1", Domain::int_range(-100_000, 100_000));
    let b1 = cat.add_item("b1", Domain::int_range(-100_000, 100_000));
    let scopes = vec![ItemSet::from_iter([a0, b0]), ItemSet::from_iter([a1, b1])];
    let initial = DbState::from_pairs([
        (a0, Value::Int(1)),
        (b0, Value::Int(10)),
        (a1, Value::Int(1)),
        (b1, Value::Int(10)),
    ]);
    (cat, scopes, initial)
}

/// Small single-write program bodies (≤ 4 operations each, no double
/// writes) spanning the interesting shapes: blind writes, RMWs,
/// cross-item and cross-conjunct reads, and a state-dependent branch.
const POOL: &[&str] = &[
    "a0 := a0 + 1;",
    "b0 := 1;",
    "b0 := a0 + 1;",
    "a1 := a1 + 2;",
    "b1 := a1 + 1;",
    "touch a0;",
    "a1 := 5;",
    "if (a0 > 0) then { b0 := 2; } else { b0 := 3; }",
    "a0 := b1 + 1;",
];

fn programs_from(picks: &[usize]) -> Vec<Program> {
    picks
        .iter()
        .enumerate()
        .map(|(k, &i)| parse_program(&format!("P{k}"), POOL[i]).unwrap())
        .collect()
}

fn replay(schedule: &Schedule, scopes: &[ItemSet]) -> Verdict {
    let mut monitor = OnlineMonitor::new(scopes.to_vec());
    let mut verdict = monitor.verdict();
    for op in schedule.ops() {
        verdict = monitor.push(op.clone()).unwrap();
    }
    verdict
}

const LEVELS: [AdmissionLevel; 3] = [
    AdmissionLevel::Serializable,
    AdmissionLevel::Pwsr,
    AdmissionLevel::PwsrDr,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Safe(level)` ⇒ no interleaving breaches `level`; `Unsafe` ⇒
    /// the carried counterexample breaches on an independent replay.
    #[test]
    fn safe_never_coexists_with_a_breach(
        picks in proptest::collection::vec(0usize..POOL.len(), 1..=3),
        lvl in 0usize..3,
    ) {
        let (cat, scopes, initial) = setup();
        let programs = programs_from(&picks);
        let level = LEVELS[lvl];
        let cfg = AnalyzerConfig {
            enumeration_cap: 60_000,
            random_trials: 32,
            seed: 7,
        };
        let analysis = analyze(&programs, &cat, &scopes, &initial, level, &cfg);

        // Independent oracle: every complete interleaving, replayed.
        let all = enumerate_executions(&programs, &cat, &initial, 60_000)
            .unwrap()
            .expect("pool workloads stay under the enumeration cap");
        let any_breach = all.iter().any(|s| breaches(&replay(s, &scopes), level));

        match &analysis.safety {
            StaticSafety::Safe(witness) => {
                prop_assert!(
                    !any_breach,
                    "Safe({witness:?}) but a breaching interleaving exists: {picks:?} @ {level:?}"
                );
            }
            StaticSafety::Unsafe(cex) => {
                prop_assert!(breaches(&cex.verdict, level));
                // Re-confirm independently: the schedule really is an
                // execution, and really breaches.
                cex.schedule.check_read_coherence(&initial).unwrap();
                prop_assert!(breaches(&replay(&cex.schedule, &scopes), level));
                prop_assert!(any_breach, "the oracle must agree a breach exists");
            }
            StaticSafety::Unknown => {
                // Unknown promises nothing — but with the oracle in
                // hand we can at least confirm the analyzer did not
                // miss a *trivially* certifiable case.
                prop_assert!(!all.is_empty());
            }
        }
    }

    /// The certified subset composes: running **only** the certified
    /// programs (their component is conflict-closed) can never breach
    /// the level, under any interleaving — even when the full mix was
    /// `Unsafe` or `Unknown`.
    #[test]
    fn certified_components_are_robust_in_isolation(
        picks in proptest::collection::vec(0usize..POOL.len(), 1..=3),
        lvl in 0usize..3,
    ) {
        let (cat, scopes, initial) = setup();
        let programs = programs_from(&picks);
        let level = LEVELS[lvl];
        let cfg = AnalyzerConfig {
            enumeration_cap: 60_000,
            random_trials: 32,
            seed: 11,
        };
        let analysis = analyze(&programs, &cat, &scopes, &initial, level, &cfg);
        let certified: Vec<Program> = programs
            .iter()
            .enumerate()
            .filter(|(k, _)| analysis.certified().contains(&TxnId(*k as u32 + 1)))
            .map(|(_, p)| p.clone())
            .collect();
        prop_assume!(!certified.is_empty());
        let all = enumerate_executions(&certified, &cat, &initial, 60_000)
            .unwrap()
            .expect("sub-mixes stay under the enumeration cap");
        for s in &all {
            prop_assert!(
                !breaches(&replay(s, &scopes), level),
                "certified sub-mix breached {level:?}: {picks:?}"
            );
        }
    }
}
