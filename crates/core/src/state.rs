//! Database states as partial variable assignments, and item sets.
//!
//! §2.1: a database state is a set of pairs `DS = {(d′, v′)}` assigning a
//! value to every item; its *restriction* `DS^d` keeps only the items in
//! `d ⊆ D`. Because restrictions are everywhere in the paper (read sets,
//! write effects, view sets, per-conjunct states), [`DbState`] is a
//! **partial** assignment; a "full" state is simply one that is total for
//! the catalog.
//!
//! The union `DS^{d1}_1 ⊔ DS^{d2}_2` is the paper's ⊔: set union that is
//! *undefined* (here: an error) when the operands disagree on an item.

use crate::error::{CoreError, Result};
use crate::ids::ItemId;
use crate::value::Value;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;

/// A set of data items `d ⊆ D` (a "data set" in the paper).
///
/// Backed by a dense bitset indexed by [`ItemId`]: item ids are
/// interned catalog indices (small and dense), so membership is a bit
/// test and union/difference/subset are word-wise loops. The first 64
/// ids live in an **inline** word; only ids ≥ 64 spill to a heap
/// vector — so for the common case (conjunct scopes, per-transaction
/// read/write sets over small catalogs) every set operation is
/// allocation-free. Iteration remains in ascending id order, matching
/// the previous `BTreeSet`-backed representation.
///
/// Invariant: the trailing spill word, when present, is nonzero — so
/// the derived `PartialEq`/`Eq`/`Hash` see a canonical form.
#[derive(Default, PartialEq, Eq, Hash)]
pub struct ItemSet {
    /// Bits for ids 0..64.
    word0: u64,
    /// Bits for ids ≥ 64: `rest[k]` covers ids `64(k+1)..64(k+2)`.
    rest: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl Clone for ItemSet {
    fn clone(&self) -> Self {
        ItemSet {
            word0: self.word0,
            rest: self.rest.clone(),
        }
    }

    /// Reuses the spill vector's allocation (hot-path `clone_from`s
    /// into scratch sets never reallocate).
    fn clone_from(&mut self, source: &Self) {
        self.word0 = source.word0;
        self.rest.clone_from(&source.rest);
    }
}

impl ItemSet {
    /// The empty set.
    pub fn new() -> Self {
        ItemSet::default()
    }

    /// Build from anything yielding [`ItemId`]s.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        let mut out = ItemSet::new();
        for id in iter {
            out.insert(id);
        }
        out
    }

    /// Drop trailing zero spill words to keep the canonical form.
    fn normalize(&mut self) {
        while self.rest.last() == Some(&0) {
            self.rest.pop();
        }
    }

    /// The spill word covering `id`, or 0.
    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w == 0 {
            self.word0
        } else {
            self.rest.get(w - 1).copied().unwrap_or(0)
        }
    }

    /// Insert an item; returns whether it was newly inserted.
    pub fn insert(&mut self, id: ItemId) -> bool {
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        let word = if w == 0 {
            &mut self.word0
        } else {
            if w > self.rest.len() {
                self.rest.resize(w, 0);
            }
            &mut self.rest[w - 1]
        };
        let fresh = *word & (1 << b) == 0;
        *word |= 1 << b;
        fresh
    }

    /// Remove an item; returns whether it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        if w == 0 {
            let present = self.word0 & (1 << b) != 0;
            self.word0 &= !(1 << b);
            return present;
        }
        if w > self.rest.len() {
            return false;
        }
        let present = self.rest[w - 1] & (1 << b) != 0;
        self.rest[w - 1] &= !(1 << b);
        self.normalize();
        present
    }

    /// Remove every item (keeps the spill allocation for reuse).
    pub fn clear(&mut self) {
        self.word0 = 0;
        self.rest.clear();
    }

    /// Membership test.
    pub fn contains(&self, id: ItemId) -> bool {
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        self.word(w) & (1 << b) != 0
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.word0.count_ones() as usize
            + self
                .rest
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.word0 == 0 && self.rest.is_empty()
    }

    /// Iterate items in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        std::iter::once(self.word0)
            .chain(self.rest.iter().copied())
            .enumerate()
            .flat_map(|(wi, word)| {
                let mut bits = word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ItemId((wi * WORD_BITS) as u32 + b))
                })
            })
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// `self − other`.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place `self ∪= other` (no allocation when capacity suffices).
    pub fn union_with(&mut self, other: &ItemSet) {
        self.word0 |= other.word0;
        if other.rest.len() > self.rest.len() {
            self.rest.resize(other.rest.len(), 0);
        }
        for (w, &o) in self.rest.iter_mut().zip(&other.rest) {
            *w |= o;
        }
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &ItemSet) {
        self.word0 &= other.word0;
        self.rest.truncate(other.rest.len());
        for (w, &o) in self.rest.iter_mut().zip(&other.rest) {
            *w &= o;
        }
        self.normalize();
    }

    /// In-place `self −= other`.
    pub fn difference_with(&mut self, other: &ItemSet) {
        self.word0 &= !other.word0;
        for (w, &o) in self.rest.iter_mut().zip(&other.rest) {
            *w &= !o;
        }
        self.normalize();
    }

    /// Are the two sets disjoint (`self ∩ other = ∅`)?
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        self.word0 & other.word0 == 0
            && self.rest.iter().zip(&other.rest).all(|(&a, &b)| a & b == 0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &ItemSet) -> bool {
        self.word0 & !other.word0 == 0
            && self.rest.len() <= other.rest.len()
            && self
                .rest
                .iter()
                .zip(&other.rest)
                .all(|(&a, &b)| a & !b == 0)
    }

    /// In-place `self ∪= other ∩ mask` in one word-wise pass (the
    /// Lemma 6 update for a completed predecessor).
    pub fn union_with_masked(&mut self, other: &ItemSet, mask: &ItemSet) {
        self.word0 |= other.word0 & mask.word0;
        let n = other.rest.len().min(mask.rest.len());
        if n > self.rest.len() {
            self.rest.resize(n, 0);
        }
        for i in 0..n {
            self.rest[i] |= other.rest[i] & mask.rest[i];
        }
        self.normalize();
    }

    /// In-place `self −= other ∩ mask` in one word-wise pass (the
    /// Lemma 6 update for an incomplete predecessor).
    pub fn difference_with_masked(&mut self, other: &ItemSet, mask: &ItemSet) {
        self.word0 &= !(other.word0 & mask.word0);
        for (i, w) in self.rest.iter_mut().enumerate() {
            let o = other.rest.get(i).copied().unwrap_or(0);
            let m = mask.rest.get(i).copied().unwrap_or(0);
            *w &= !(o & m);
        }
        self.normalize();
    }

    /// In-place `self −= (a − b) ∩ mask` in one word-wise pass — the
    /// Lemma 2 update `VS −= WS(after(T^d, p, S))` with the suffix
    /// write set expressed as total − prefix.
    pub fn difference_with_masked_diff(&mut self, a: &ItemSet, b: &ItemSet, mask: &ItemSet) {
        self.word0 &= !(a.word0 & !b.word0 & mask.word0);
        for (i, w) in self.rest.iter_mut().enumerate() {
            let aw = a.rest.get(i).copied().unwrap_or(0);
            let bw = b.rest.get(i).copied().unwrap_or(0);
            let m = mask.rest.get(i).copied().unwrap_or(0);
            *w &= !(aw & !bw & m);
        }
        self.normalize();
    }

    /// Is `self ∩ mask ⊆ other`? The projected-subset test the lemma
    /// checkers run on their hot path, fused into one word-wise pass.
    pub fn masked_subset(&self, mask: &ItemSet, other: &ItemSet) -> bool {
        self.word0 & mask.word0 & !other.word0 == 0
            && self.rest.iter().enumerate().all(|(i, &a)| {
                let m = mask.rest.get(i).copied().unwrap_or(0);
                let o = other.rest.get(i).copied().unwrap_or(0);
                a & m & !o == 0
            })
    }

    /// An arbitrary element shared with `other`, if any.
    pub fn common_item(&self, other: &ItemSet) -> Option<ItemId> {
        let both0 = self.word0 & other.word0;
        if both0 != 0 {
            return Some(ItemId(both0.trailing_zeros()));
        }
        self.rest
            .iter()
            .zip(&other.rest)
            .enumerate()
            .find_map(|(wi, (&a, &b))| {
                let both = a & b;
                (both != 0).then(|| ItemId(((wi + 1) * WORD_BITS) as u32 + both.trailing_zeros()))
            })
    }
}

/// Order as element-lexicographic over ascending ids, matching the
/// previous `BTreeSet` representation's derived `Ord`.
impl PartialOrd for ItemSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ItemSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl FromIterator<ItemId> for ItemSet {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        ItemSet::from_iter(iter)
    }
}

impl<const N: usize> From<[ItemId; N]> for ItemSet {
    fn from(items: [ItemId; N]) -> Self {
        ItemSet::from_iter(items)
    }
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id:?}")?;
        }
        write!(f, "}}")
    }
}

/// A (partial) database state: a finite map from items to values.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DbState(BTreeMap<ItemId, Value>);

impl DbState {
    /// The empty assignment `∅`.
    pub fn new() -> Self {
        DbState::default()
    }

    /// Build from `(item, value)` pairs. Later pairs overwrite earlier
    /// ones (use [`DbState::union`] for the paper's conflict-checking ⊔).
    pub fn from_pairs<I: IntoIterator<Item = (ItemId, Value)>>(pairs: I) -> Self {
        DbState(pairs.into_iter().collect())
    }

    /// Assign `item := value`, returning the previous value if any.
    pub fn set(&mut self, item: ItemId, value: Value) -> Option<Value> {
        self.0.insert(item, value)
    }

    /// The value of `item`, if assigned.
    pub fn get(&self, item: ItemId) -> Option<&Value> {
        self.0.get(&item)
    }

    /// The value of `item`, or a [`CoreError::MissingItem`] error.
    pub fn require(&self, item: ItemId) -> Result<&Value> {
        self.get(item).ok_or(CoreError::MissingItem(item))
    }

    /// Remove `item` from the assignment.
    pub fn unset(&mut self, item: ItemId) -> Option<Value> {
        self.0.remove(&item)
    }

    /// Number of assigned items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is nothing assigned?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The set of assigned items.
    pub fn items(&self) -> ItemSet {
        ItemSet::from_iter(self.0.keys().copied())
    }

    /// Iterate `(item, value)` pairs in ascending item order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &Value)> + '_ {
        self.0.iter().map(|(k, v)| (*k, v))
    }

    /// The restriction `DS^d`: keep only items in `d`.
    pub fn restrict(&self, d: &ItemSet) -> DbState {
        // Iterate the smaller side.
        if d.len() < self.0.len() {
            DbState(
                d.iter()
                    .filter_map(|id| self.0.get(&id).map(|v| (id, v.clone())))
                    .collect(),
            )
        } else {
            DbState(
                self.0
                    .iter()
                    .filter(|(id, _)| d.contains(**id))
                    .map(|(id, v)| (*id, v.clone()))
                    .collect(),
            )
        }
    }

    /// `DS^{D−d}`: drop the items in `d`.
    pub fn without(&self, d: &ItemSet) -> DbState {
        DbState(
            self.0
                .iter()
                .filter(|(id, _)| !d.contains(**id))
                .map(|(id, v)| (*id, v.clone()))
                .collect(),
        )
    }

    /// The paper's ⊔: union of two assignments, **undefined** (an error)
    /// if they disagree on any item.
    pub fn union(&self, other: &DbState) -> Result<DbState> {
        let mut out = self.0.clone();
        for (&item, v) in &other.0 {
            match out.entry(item) {
                Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                Entry::Occupied(e) => {
                    if e.get() != v {
                        return Err(CoreError::UnionConflict {
                            item,
                            left: e.get().clone(),
                            right: v.clone(),
                        });
                    }
                }
            }
        }
        Ok(DbState(out))
    }

    /// Right-biased overwrite: `self` updated with every pair of
    /// `updates`. This is the state-transformer form used in
    /// Definition 4 (`state^{d−WS} ∪ write(T^d)`), where overwriting is
    /// intended rather than an error.
    pub fn updated_with(&self, updates: &DbState) -> DbState {
        let mut out = self.0.clone();
        for (&item, v) in &updates.0 {
            out.insert(item, v.clone());
        }
        DbState(out)
    }

    /// Do `self` and `other` agree on every item they both assign?
    pub fn compatible(&self, other: &DbState) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(id, v)| large.get(id).is_none_or(|w| w == v))
    }

    /// Is the state total for the given item set (assigns all of `d`)?
    pub fn is_total_for(&self, d: &ItemSet) -> bool {
        d.iter().all(|id| self.0.contains_key(&id))
    }

    /// Does `self` extend `other` (assign everything `other` does, with
    /// equal values)?
    pub fn extends(&self, other: &DbState) -> bool {
        other.iter().all(|(id, v)| self.get(id) == Some(v))
    }
}

impl FromIterator<(ItemId, Value)> for DbState {
    fn from_iter<I: IntoIterator<Item = (ItemId, Value)>>(iter: I) -> Self {
        DbState::from_pairs(iter)
    }
}

impl fmt::Debug for DbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({id:?}, {v})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn itemset_algebra() {
        let a = ItemSet::from_iter([id(1), id(2), id(3)]);
        let b = ItemSet::from_iter([id(3), id(4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.common_item(&b), Some(id(3)));
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn itemset_canonical_after_removals() {
        // Removing a high bit must not leave trailing zero words behind
        // (Eq/Hash are derived over the canonical word vector).
        let mut a = ItemSet::from_iter([id(1), id(200)]);
        a.remove(id(200));
        assert_eq!(a, ItemSet::from_iter([id(1)]));
        let mut b = ItemSet::from_iter([id(300)]);
        b.difference_with(&ItemSet::from_iter([id(300)]));
        assert_eq!(b, ItemSet::new());
        assert!(b.is_empty());
        let mut c = ItemSet::from_iter([id(70)]);
        c.intersect_with(&ItemSet::from_iter([id(1)]));
        assert_eq!(c, ItemSet::new());
    }

    #[test]
    fn itemset_inplace_ops_match_pure_ops() {
        let a = ItemSet::from_iter([id(1), id(65), id(200)]);
        let b = ItemSet::from_iter([id(65), id(3)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn itemset_fused_masked_ops_match_composed_ops() {
        let base = ItemSet::from_iter([id(0), id(2), id(70), id(200)]);
        let other = ItemSet::from_iter([id(0), id(70), id(130)]);
        let mask = ItemSet::from_iter([id(0), id(1), id(70), id(130), id(200)]);
        let b = ItemSet::from_iter([id(0)]);

        let mut fused = base.clone();
        fused.union_with_masked(&other, &mask);
        assert_eq!(fused, base.union(&other.intersection(&mask)));

        let mut fused = base.clone();
        fused.difference_with_masked(&other, &mask);
        assert_eq!(fused, base.difference(&other.intersection(&mask)));

        let mut fused = base.clone();
        fused.difference_with_masked_diff(&other, &b, &mask);
        assert_eq!(
            fused,
            base.difference(&other.difference(&b).intersection(&mask))
        );
    }

    #[test]
    fn itemset_masked_subset() {
        let a = ItemSet::from_iter([id(1), id(2), id(80)]);
        let mask = ItemSet::from_iter([id(1), id(80)]);
        let big = ItemSet::from_iter([id(1), id(80), id(99)]);
        let small = ItemSet::from_iter([id(1)]);
        assert!(a.masked_subset(&mask, &big)); // {1,80} ⊆ {1,80,99}
        assert!(!a.masked_subset(&mask, &small)); // 80 escapes
        assert!(a.masked_subset(&ItemSet::new(), &ItemSet::new()));
    }

    #[test]
    fn itemset_iter_ascending_and_ord() {
        let a = ItemSet::from_iter([id(200), id(3), id(64)]);
        let got: Vec<u32> = a.iter().map(|i| i.0).collect();
        assert_eq!(got, vec![3, 64, 200]);
        // Element-lexicographic order, as with the old BTreeSet backing.
        let b = ItemSet::from_iter([id(3), id(65)]);
        assert!(a < b); // [3,64,..] < [3,65]
        assert!(ItemSet::new() < a);
    }

    #[test]
    fn restriction_keeps_only_d() {
        // Paper §2.1: DS^d = {(d′,v′) : d′ ∈ d and (d′,v′) ∈ DS}.
        let ds = DbState::from_pairs([
            (id(0), Value::Int(5)),
            (id(1), Value::Int(6)),
            (id(2), Value::Int(7)),
        ]);
        let d = ItemSet::from_iter([id(0), id(2), id(9)]);
        let r = ds.restrict(&d);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(id(0)), Some(&Value::Int(5)));
        assert_eq!(r.get(id(2)), Some(&Value::Int(7)));
        assert_eq!(r.get(id(1)), None);
    }

    #[test]
    fn union_agrees_ok() {
        let l = DbState::from_pairs([(id(0), Value::Int(5)), (id(1), Value::Int(1))]);
        let r = DbState::from_pairs([(id(0), Value::Int(5)), (id(2), Value::Int(9))]);
        let u = l.union(&r).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn union_conflict_is_undefined() {
        // §2.1: DS1^{d1} ⊔ DS2^{d2} is undefined if they disagree.
        let l = DbState::from_pairs([(id(0), Value::Int(5))]);
        let r = DbState::from_pairs([(id(0), Value::Int(6))]);
        let err = l.union(&r).unwrap_err();
        assert!(matches!(err, CoreError::UnionConflict { item, .. } if item == id(0)));
    }

    #[test]
    fn updated_with_overwrites() {
        let base = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        let upd = DbState::from_pairs([(id(1), Value::Int(9)), (id(2), Value::Int(3))]);
        let out = base.updated_with(&upd);
        assert_eq!(out.get(id(0)), Some(&Value::Int(1)));
        assert_eq!(out.get(id(1)), Some(&Value::Int(9)));
        assert_eq!(out.get(id(2)), Some(&Value::Int(3)));
    }

    #[test]
    fn compatible_and_extends() {
        let small = DbState::from_pairs([(id(0), Value::Int(1))]);
        let big = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        let clash = DbState::from_pairs([(id(0), Value::Int(7))]);
        assert!(small.compatible(&big));
        assert!(big.extends(&small));
        assert!(!small.extends(&big));
        assert!(!clash.compatible(&big));
    }

    #[test]
    fn without_drops_items() {
        let ds = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        let out = ds.without(&ItemSet::from_iter([id(0)]));
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(id(1)), Some(&Value::Int(2)));
    }

    #[test]
    fn total_for() {
        let ds = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        assert!(ds.is_total_for(&ItemSet::from_iter([id(0), id(1)])));
        assert!(!ds.is_total_for(&ItemSet::from_iter([id(0), id(2)])));
        assert!(ds.is_total_for(&ItemSet::new()));
    }

    #[test]
    fn require_missing() {
        let ds = DbState::new();
        assert!(matches!(
            ds.require(id(5)),
            Err(CoreError::MissingItem(i)) if i == id(5)
        ));
    }
}
