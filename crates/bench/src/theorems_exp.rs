//! THM-1 / THM-2 / THM-3: randomized validation of the theorems.
//!
//! For each theorem, two sampling arms over random executions:
//!
//! * **positive** — executions satisfying the theorem's hypotheses
//!   (PWSR + fixed-structure / DR / acyclic DAG, disjoint conjuncts):
//!   strong correctness must hold on **every** one;
//! * **control** — executions that are PWSR but *drop* the hypothesis:
//!   violations are expected, and a guaranteed witness (the Example-2
//!   gadget under its adversarial interleaving) is verified explicitly.
//!
//! A third arm runs the *scheduler*: policies whose outputs carry the
//! hypothesis by construction (PW-2PL hold-to-end ⇒ DR) must also be
//! violation-free.

use crate::report::Table;
use pwsr_core::dag::data_access_graph;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::pwsr::is_pwsr;
use pwsr_core::solver::Solver;
use pwsr_core::strong::check_strong_correctness;
use pwsr_gen::chaos::{execute_with_picks, random_execution};
use pwsr_gen::gadgets::violating_picks;
use pwsr_gen::workloads::{random_workload, Workload, WorkloadConfig};
use pwsr_scheduler::exec::{run_workload, ExecConfig};
use pwsr_scheduler::policy::PolicySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counters for one theorem experiment.
#[derive(Clone, Debug, Default)]
pub struct TheoremOutcome {
    /// Positive-arm executions satisfying all hypotheses.
    pub qualifying: u64,
    /// Positive-arm strong-correctness failures (must be 0).
    pub violations: u64,
    /// Control-arm executions (PWSR, hypothesis dropped).
    pub control_qualifying: u64,
    /// Control-arm violations (expected > 0 overall).
    pub control_violations: u64,
    /// Scheduler-arm runs.
    pub scheduler_runs: u64,
    /// Scheduler-arm violations (must be 0).
    pub scheduler_violations: u64,
    /// Was the guaranteed gadget witness confirmed?
    pub witness_confirmed: bool,
}

impl TheoremOutcome {
    /// The theorem's prediction holds: clean positive & scheduler arms,
    /// and the control arm produced at least one witness.
    pub fn matches_paper(&self) -> bool {
        self.violations == 0
            && self.scheduler_violations == 0
            && self.qualifying > 0
            && self.witness_confirmed
    }
}

fn strong_violation(w: &Workload, s: &pwsr_core::schedule::Schedule) -> bool {
    let solver = Solver::new(&w.catalog, &w.ic);
    check_strong_correctness(s, &solver, &w.initial).violation()
}

/// The gadget witness: a PWSR execution of an Example-2 workload under
/// the paper's interleaving, violating consistency while (non-fixed /
/// non-DR / cyclic-DAG) as required. Returns whether it behaves as the
/// paper says.
fn gadget_witness(rng: &mut StdRng) -> bool {
    let w = random_workload(
        rng,
        &WorkloadConfig {
            conjuncts: 1,
            items_per_conjunct: 2,
            n_background: 0,
            gadgets: 1,
            ..WorkloadConfig::default()
        },
    );
    let (t1, t2) = w.gadget_txns[0];
    let Ok(s) = execute_with_picks(
        &w.programs,
        &w.catalog,
        &w.initial,
        &violating_picks(t1, t2),
    ) else {
        return false;
    };
    is_pwsr(&s, &w.ic).ok()
        && !is_delayed_read(&s)
        && !data_access_graph(&s, &w.ic).is_acyclic()
        && !w.all_fixed_structure
        && strong_violation(&w, &s)
}

/// Run one theorem experiment. `which` ∈ {1, 2, 3}.
pub fn theorem(
    which: u8,
    trials: u64,
    execs_per_trial: u64,
    seed: u64,
) -> (TheoremOutcome, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = TheoremOutcome::default();

    // Positive + control sampling.
    for trial in 0..trials {
        // Theorem 1 alternates all-fixed workloads (positive arm) with
        // gadget-bearing non-fixed ones (control arm); the other
        // theorems sample mixed workloads (with occasional gadgets, so
        // non-DR / cyclic executions appear for the control arm).
        let positive_trial = trial % 2 == 0;
        let cfg = WorkloadConfig {
            conjuncts: 2,
            items_per_conjunct: 2,
            n_background: 3,
            cross_read_prob: 0.6,
            fixed_only: which == 1 && positive_trial,
            gadgets: usize::from(!positive_trial || which != 1),
            domain_width: 50,
        };
        let w = random_workload(&mut rng, &cfg);
        for _ in 0..execs_per_trial {
            let Ok(s) = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng) else {
                continue;
            };
            if !is_pwsr(&s, &w.ic).ok() || !w.ic.is_disjoint() {
                continue;
            }
            let hypothesis = match which {
                1 => w.all_fixed_structure,
                2 => is_delayed_read(&s),
                3 => data_access_graph(&s, &w.ic).is_acyclic(),
                _ => unreachable!("theorems are numbered 1..=3"),
            };
            let violated = strong_violation(&w, &s);
            if hypothesis {
                out.qualifying += 1;
                out.violations += u64::from(violated);
            } else {
                out.control_qualifying += 1;
                out.control_violations += u64::from(violated);
            }
        }
    }

    // Control witness: the gadget always violates under its picks.
    out.witness_confirmed = gadget_witness(&mut rng);

    // Scheduler arm: a policy that carries the hypothesis by
    // construction.
    for seed2 in 0..trials.min(20) {
        let cfg = WorkloadConfig {
            conjuncts: 2,
            items_per_conjunct: 2,
            n_background: 4,
            cross_read_prob: 0.5,
            fixed_only: which == 1,
            gadgets: 0,
            domain_width: 50,
        };
        let w = random_workload(&mut rng, &cfg);
        let policy = match which {
            1 => PolicySpec::predicate_wise_2pl_early(&w.ic),
            2 => PolicySpec::predicate_wise_2pl_early(&w.ic).dr_blocking(),
            _ => PolicySpec::predicate_wise_2pl(&w.ic),
        };
        let exec_cfg = ExecConfig {
            seed: seed2,
            ..ExecConfig::default()
        };
        let Ok(run) = run_workload(&w.programs, &w.catalog, &w.initial, &policy, &exec_cfg) else {
            continue;
        };
        // Check that the policy delivered the hypothesis it promises.
        let hypothesis = match which {
            1 => w.all_fixed_structure && is_pwsr(&run.schedule, &w.ic).ok(),
            2 => is_delayed_read(&run.schedule) && is_pwsr(&run.schedule, &w.ic).ok(),
            3 => is_pwsr(&run.schedule, &w.ic).ok(),
            _ => unreachable!(),
        };
        if !hypothesis {
            continue;
        }
        out.scheduler_runs += 1;
        out.scheduler_violations += u64::from(strong_violation(&w, &run.schedule));
    }

    let hyp_name = match which {
        1 => "fixed-structure programs",
        2 => "delayed-read schedule",
        3 => "acyclic DAG(S, IC)",
        _ => unreachable!(),
    };
    let mut t = Table::new(
        &format!("THM-{which}  PWSR + {hyp_name} ⇒ strongly correct"),
        &["arm", "executions", "violations", "as paper predicts"],
    );
    t.row(&[
        "positive (hypotheses hold)".into(),
        out.qualifying.to_string(),
        out.violations.to_string(),
        (out.violations == 0).to_string(),
    ]);
    t.row(&[
        "control (hypothesis dropped)".into(),
        out.control_qualifying.to_string(),
        out.control_violations.to_string(),
        "violations expected".into(),
    ]);
    t.row(&[
        "gadget witness (guaranteed violation)".into(),
        "1".into(),
        u64::from(out.witness_confirmed).to_string(),
        out.witness_confirmed.to_string(),
    ]);
    t.row(&[
        "scheduler (policy ⇒ hypothesis)".into(),
        out.scheduler_runs.to_string(),
        out.scheduler_violations.to_string(),
        (out.scheduler_violations == 0).to_string(),
    ]);
    (out, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm1_matches_paper() {
        let (out, text) = theorem(1, 12, 6, 101);
        assert!(out.matches_paper(), "{text}\n{out:?}");
    }

    #[test]
    fn thm2_matches_paper() {
        let (out, text) = theorem(2, 12, 6, 102);
        assert!(out.matches_paper(), "{text}\n{out:?}");
    }

    #[test]
    fn thm3_matches_paper() {
        let (out, text) = theorem(3, 12, 6, 103);
        assert!(out.matches_paper(), "{text}\n{out:?}");
    }

    #[test]
    fn gadget_witness_is_reliable() {
        let mut rng = StdRng::seed_from_u64(999);
        for _ in 0..5 {
            assert!(gadget_witness(&mut rng));
        }
    }
}
