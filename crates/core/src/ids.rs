//! Compact identifier newtypes.
//!
//! Data items, transactions, conjuncts and schedule positions are all
//! referred to through `u32`-sized newtypes. Interning keeps the hot
//! checker paths free of string hashing (names live in the
//! [`Catalog`](crate::catalog::Catalog) side table), per the usual
//! database-engine idiom.

use std::fmt;

/// Identifier of a data item (a variable of the database, §2.1).
///
/// Produced by [`Catalog::add_item`](crate::catalog::Catalog::add_item);
/// the numeric value indexes the catalog's dense side tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// Identifier of a transaction within a schedule (§2.2).
///
/// The paper writes `T_1, T_2, …`; we keep the subscript.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

/// Identifier of a conjunct `C_e` of the integrity constraint (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConjunctId(pub u32);

/// Position of an operation inside a schedule.
///
/// The paper's `depth(p, S)` — the number of operations preceding `p` —
/// is exactly the numeric value of the operation's `OpIndex`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpIndex(pub usize);

impl ItemId {
    /// Index into dense per-item tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TxnId {
    /// Raw numeric id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl ConjunctId {
    /// Index into dense per-conjunct tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl OpIndex {
    /// `depth(p, S)`: number of operations strictly preceding `p`.
    #[inline]
    pub fn depth(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for ConjunctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ConjunctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Debug for OpIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_matches_index() {
        assert_eq!(OpIndex(0).depth(), 0);
        assert_eq!(OpIndex(7).depth(), 7);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ItemId(3)), "d3");
        assert_eq!(format!("{:?}", TxnId(1)), "T1");
        assert_eq!(format!("{}", ConjunctId(2)), "C2");
        assert_eq!(format!("{:?}", OpIndex(4)), "p@4");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ItemId(1) < ItemId(2));
        assert!(TxnId(1) < TxnId(10));
        assert!(OpIndex(0) < OpIndex(1));
    }
}
