//! One-call diagnosis: everything the toolkit knows about a schedule.
//!
//! [`diagnose`] runs the complete checker pipeline — serializability,
//! PWSR, recovery class, data access graph, setwise baseline, theorem
//! guarantees, optional fixed-structure analysis of the generating
//! programs and optional strong-correctness verification against an
//! initial state — and renders a human-readable report. This is the
//! "Elle-style" entry point for users who just have a history and want
//! to know what holds.

use pwsr_baselines::setwise::{is_setwise_serializable, AtomicDataSets};
use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::IntegrityConstraint;
use pwsr_core::dr::{classify_recovery, RecoveryClass};
use pwsr_core::schedule::Schedule;
use pwsr_core::serializability::is_conflict_serializable;
use pwsr_core::solver::Solver;
use pwsr_core::state::DbState;
use pwsr_core::strong::{check_strong_correctness, StrongReport};
use pwsr_core::theorems::{classify, Guarantee, ProgramTraits, Verdict};
use pwsr_tplang::analysis::static_structure;
use pwsr_tplang::ast::Program;
use std::fmt;

/// The combined analysis of one schedule.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// Is the schedule conflict-serializable outright?
    pub serializable: bool,
    /// PWSR / DR / DAG / theorem-guarantee verdict.
    pub verdict: Verdict,
    /// Recovery classification (strict / ACA / DR / unrestricted).
    pub recovery: RecoveryClass,
    /// Setwise serializability over conjunct-aligned atomic data sets
    /// (`None` when conjuncts overlap, since \[14\] requires disjoint
    /// sets).
    pub setwise: Option<bool>,
    /// Per-program fixed-structure verdicts, when programs were given.
    pub program_fixedness: Option<Vec<(String, bool)>>,
    /// Strong correctness of this execution, when an initial state was
    /// given.
    pub strong: Option<StrongReport>,
}

impl Diagnosis {
    /// Is strong correctness established? When an initial state was
    /// given, the concrete verification is authoritative (the theorem
    /// guarantees presuppose *correct* transaction programs — §2.3 —
    /// which a raw schedule cannot promise); otherwise fall back to the
    /// theorem guarantees.
    pub fn correct(&self) -> bool {
        match &self.strong {
            Some(report) => report.ok(),
            None => self.verdict.strongly_correct_guaranteed(),
        }
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let yn = |b: bool| if b { "yes" } else { "no" };
        writeln!(f, "conflict-serializable : {}", yn(self.serializable))?;
        writeln!(f, "PWSR                  : {}", yn(self.verdict.pwsr.ok()))?;
        for cv in &self.verdict.pwsr.per_conjunct {
            match (&cv.order, &cv.cycle) {
                (Some(order), _) => {
                    let names: Vec<String> = order.iter().map(|t| t.to_string()).collect();
                    writeln!(f, "  {} serializable: {}", cv.conjunct, names.join(" → "))?;
                }
                (None, Some(cycle)) => {
                    let names: Vec<String> = cycle.iter().map(|t| t.to_string()).collect();
                    writeln!(f, "  {} CYCLE: {}", cv.conjunct, names.join(" → "))?;
                }
                (None, None) => writeln!(f, "  {} not serializable", cv.conjunct)?,
            }
        }
        writeln!(f, "delayed-read          : {}", yn(self.verdict.dr))?;
        writeln!(f, "recovery class        : {:?}", self.recovery)?;
        writeln!(
            f,
            "DAG(S, IC) acyclic    : {}",
            yn(self.verdict.dag.is_acyclic())
        )?;
        if let Some(sw) = self.setwise {
            writeln!(f, "setwise-SR [14]       : {}", yn(sw))?;
        }
        if let Some(fx) = &self.program_fixedness {
            for (name, fixed) in fx {
                writeln!(f, "  program {name}: fixed-structure = {}", yn(*fixed))?;
            }
        }
        let gs: Vec<&str> = self
            .verdict
            .guarantees
            .iter()
            .map(|g| match g {
                Guarantee::Theorem1FixedStructure => "Theorem 1 (fixed structure)",
                Guarantee::Theorem2DelayedRead => "Theorem 2 (delayed read)",
                Guarantee::Theorem3AcyclicDag => "Theorem 3 (acyclic DAG)",
            })
            .collect();
        writeln!(
            f,
            "guarantees            : {}",
            if gs.is_empty() {
                "none".to_owned()
            } else {
                gs.join(", ")
            }
        )?;
        if let Some(strong) = &self.strong {
            writeln!(f, "strongly correct here : {}", yn(strong.ok()))?;
            if strong.violation() {
                let bad: Vec<String> = strong
                    .inconsistent_readers()
                    .iter()
                    .map(|t| t.to_string())
                    .collect();
                writeln!(
                    f,
                    "  VIOLATION — final consistent: {}, inconsistent readers: [{}]",
                    yn(strong.final_consistent),
                    bad.join(", ")
                )?;
            }
        }
        Ok(())
    }
}

/// Run the full pipeline. `programs` (when given) are analyzed for
/// fixed structure and feed Theorem 1; `initial` (when given) enables
/// the concrete strong-correctness check.
pub fn diagnose(
    schedule: &Schedule,
    ic: &IntegrityConstraint,
    catalog: &Catalog,
    programs: Option<&[Program]>,
    initial: Option<&DbState>,
) -> Diagnosis {
    let program_fixedness = programs.map(|ps| {
        ps.iter()
            .map(|p| (p.name.clone(), static_structure(p, catalog).is_fixed()))
            .collect::<Vec<_>>()
    });
    let traits = match &program_fixedness {
        Some(fx) => {
            if fx.iter().all(|(_, fixed)| *fixed) {
                ProgramTraits::fixed_structure()
            } else {
                ProgramTraits::not_fixed_structure()
            }
        }
        None => ProgramTraits::unknown(),
    };
    let verdict = classify(schedule, ic, traits);
    let setwise = AtomicDataSets::from_constraint(ic)
        .ok()
        .map(|ads| is_setwise_serializable(schedule, &ads));
    let strong = initial.map(|ds| {
        let solver = Solver::new(catalog, ic);
        check_strong_correctness(schedule, &solver, ds)
    });
    Diagnosis {
        serializable: is_conflict_serializable(schedule),
        verdict,
        recovery: classify_recovery(schedule),
        setwise,
        program_fixedness,
        strong,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_tplang::programs::{example2, example5};

    #[test]
    fn diagnose_example2_tells_the_whole_story() {
        let sc = example2();
        let s = sc.schedule.as_ref().unwrap();
        let d = diagnose(
            s,
            &sc.ic,
            &sc.catalog,
            Some(&sc.programs),
            Some(&sc.initial),
        );
        assert!(!d.serializable);
        assert!(d.verdict.pwsr.ok());
        assert!(!d.verdict.dr);
        assert_eq!(d.setwise, Some(true));
        assert!(!d.correct());
        let text = d.to_string();
        assert!(text.contains("PWSR                  : yes"), "{text}");
        assert!(text.contains("VIOLATION"), "{text}");
        assert!(text.contains("fixed-structure = no"), "{text}");
    }

    #[test]
    fn diagnose_example5_reports_overlap_effects() {
        let sc = example5();
        let s = sc.schedule.as_ref().unwrap();
        let d = diagnose(
            s,
            &sc.ic,
            &sc.catalog,
            Some(&sc.programs),
            Some(&sc.initial),
        );
        // Overlapping conjuncts: no setwise verdict, no guarantees.
        assert_eq!(d.setwise, None);
        assert!(d.verdict.guarantees.is_empty());
        assert!(!d.correct());
        // All programs individually fixed.
        assert!(d
            .program_fixedness
            .as_ref()
            .unwrap()
            .iter()
            .all(|(_, f)| *f));
    }

    #[test]
    fn diagnose_without_optional_inputs() {
        let sc = example2();
        let s = sc.schedule.as_ref().unwrap();
        let d = diagnose(s, &sc.ic, &sc.catalog, None, None);
        assert!(d.strong.is_none());
        assert!(d.program_fixedness.is_none());
        // Unknown programs ⇒ no Theorem 1; non-DR + cyclic DAG ⇒ none.
        assert!(!d.correct());
        let text = d.to_string();
        assert!(text.contains("guarantees            : none"));
    }

    #[test]
    fn diagnose_guaranteed_case() {
        use pwsr_core::ids::TxnId;
        use pwsr_core::op::Operation;
        use pwsr_core::value::Value;
        let sc = example2();
        let a = sc.catalog.lookup("a").unwrap();
        // A trivially serial, DR schedule.
        let s = Schedule::new(vec![
            Operation::read(TxnId(1), a, Value::Int(-1)),
            Operation::write(TxnId(2), a, Value::Int(1)),
        ])
        .unwrap();
        let d = diagnose(&s, &sc.ic, &sc.catalog, None, Some(&sc.initial));
        // DR + PWSR ⇒ Theorem 2's hypotheses hold…
        assert!(d.verdict.strongly_correct_guaranteed());
        // …but the theorems presuppose *correct* programs (§2.3), and
        // this raw write (a := 1 with b = −1) is not one: the concrete
        // check is authoritative and flags the violation.
        assert!(!d.strong.as_ref().unwrap().ok());
        assert!(!d.correct());
    }
}
