//! # pwsr-scheduler — concurrency-control substrate
//!
//! The paper motivates PWSR with long-duration transactions (CAD) and
//! autonomous multidatabases: global serializability forces long waits,
//! while per-conjunct serializability permits far more interleaving.
//! This crate makes that comparison measurable by *generating* schedules
//! under lock-based policies:
//!
//! * [`lock`] — a shared/exclusive lock table partitioned into lock
//!   *spaces* (one space = one unit of serializability).
//! * [`policy`] — policy specifications: global strict 2PL (the
//!   serializability baseline), predicate-wise 2PL (one lock space per
//!   conjunct — Definition 2 made operational), optional early
//!   per-conjunct lock release (the long-transaction win), and optional
//!   delayed-read blocking (Theorem 2 made operational).
//! * [`plan`] — access plans: exact operation structures for
//!   fixed-structure programs (Theorem 1's class), enabling sound early
//!   release.
//! * [`exec`] — a deterministic, seeded, discrete-event executor with
//!   waits-for deadlock detection, victim selection, cascading aborts
//!   and restarts; produces the committed schedule plus metrics.
//! * [`dag_admission`] — static Theorem-3 admission: conjunct access
//!   ordering from the program set's syntactic read/write sets.
//! * [`mdbs`] — the §4 multidatabase scenario: each site is a lock
//!   space; local serializability everywhere ⇒ the global schedule is
//!   PWSR over the site partition.
//! * [`concurrent`] — a genuinely threaded executor (parking_lot) for
//!   demonstration that the discrete-event results are not an artifact
//!   of simulation; its certified path runs on the sharded concurrent
//!   monitor with an item-striped database — no global mutex.

pub mod concurrent;
pub mod dag_admission;
pub mod error;
pub mod exec;
pub mod lock;
pub mod mdbs;
pub mod metrics;
pub mod occ;
pub mod plan;
pub mod policy;
pub mod sgt;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::concurrent::{
        replay_matches, run_threaded, run_threaded_certified, run_threaded_occ_certified,
        run_threaded_occ_spec, run_threaded_occ_tuned, OccThreadedOutcome, OccTuning,
    };
    pub use crate::dag_admission::{check_static_dag, StaticDag};
    pub use crate::error::SchedError;
    pub use crate::exec::{run_workload, ExecConfig, ExecOutcome};
    pub use crate::lock::{LockMode, LockTable, SpaceId};
    pub use crate::mdbs::{run_mdbs, MdbsOutcome, Site};
    pub use crate::metrics::Metrics;
    pub use crate::occ::{run_occ, OccOutcome, OccStats};
    pub use crate::plan::{access_plan, PlanMode};
    pub use crate::policy::{MonitorAdmission, MonitorSpec, PolicySpec};
    pub use crate::sgt::{run_sgt, SgtOutcome, SgtStats};
    pub use pwsr_core::monitor::AdmissionLevel;
}
