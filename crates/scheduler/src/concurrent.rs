//! A genuinely threaded executor (demonstration substrate).
//!
//! The discrete-event executor in [`crate::exec`] is the measurement
//! instrument; this module shows the same policies working under real
//! OS-thread parallelism with `parking_lot` mutexes. Each transaction
//! runs on its own thread; per-conjunct space mutexes are acquired in
//! ascending space order for a transaction's whole lifetime
//! (conservative per-space 2PL — deadlock-free by lock ordering), and
//! the produced interleaving is recorded through a shared trace.
//!
//! The output schedule is PWSR by construction; tests verify it with
//! the checker rather than trusting the construction.

use crate::error::{Result, SchedError};
use crate::policy::PolicySpec;
use parking_lot::Mutex;
use pwsr_core::catalog::Catalog;
use pwsr_core::ids::TxnId;
use pwsr_core::monitor::{OnlineMonitor, Verdict};
use pwsr_core::op::Operation;
use pwsr_core::schedule::Schedule;
use pwsr_core::state::{DbState, ItemSet};
use pwsr_tplang::ast::Program;
use pwsr_tplang::interp::{run_with_reads, RunOutcome};
use pwsr_tplang::session::{Pending, ProgramSession};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Shared execution state behind one mutex (the database, trace and
/// live monitor are updated together; contention here is irrelevant to
/// the semantics).
struct Shared {
    db: DbState,
    trace: Vec<Operation>,
    /// When present, every recorded operation is pushed through the
    /// online monitor *inside* the critical section, so the verdict
    /// evolves in exactly the recorded interleaving.
    monitor: Option<OnlineMonitor>,
}

/// Run each program on its own OS thread under conservative per-space
/// two-phase locking: every thread first computes its syntactic space
/// set, locks those spaces in ascending order, executes, then releases.
/// Returns the recorded (committed) schedule and the final state.
pub fn run_threaded(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    policy: &PolicySpec,
) -> Result<(Schedule, DbState)> {
    let (schedule, db, _) = run_threaded_inner(programs, catalog, initial, policy, None)?;
    Ok((schedule, db))
}

/// [`run_threaded`] with an [`OnlineMonitor`] certifying the verdict
/// live, operation by operation, under real OS-thread parallelism.
/// Returns the schedule, final state, and the monitor's final verdict
/// over exactly the interleaving the threads produced.
pub fn run_threaded_certified(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    policy: &PolicySpec,
    scopes: Vec<ItemSet>,
) -> Result<(Schedule, DbState, Verdict)> {
    let monitor = OnlineMonitor::new(scopes);
    let (schedule, db, verdict) =
        run_threaded_inner(programs, catalog, initial, policy, Some(monitor))?;
    Ok((schedule, db, verdict.expect("monitor was supplied")))
}

fn run_threaded_inner(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    policy: &PolicySpec,
    monitor: Option<OnlineMonitor>,
) -> Result<(Schedule, DbState, Option<Verdict>)> {
    let n_spaces = programs
        .iter()
        .flat_map(|p| {
            let (r, w) = crate::dag_admission::may_access_sets(p, catalog);
            r.union(&w)
                .iter()
                .map(|i| policy.space_of(i).0)
                .collect::<Vec<_>>()
        })
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(1);
    let space_locks: Arc<Vec<Mutex<()>>> =
        Arc::new((0..n_spaces).map(|_| Mutex::new(())).collect());
    let shared = Arc::new(Mutex::new(Shared {
        db: initial.clone(),
        trace: Vec::new(),
        monitor,
    }));

    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for (k, program) in programs.iter().enumerate() {
            let txn = TxnId(k as u32 + 1);
            let shared = Arc::clone(&shared);
            let space_locks = Arc::clone(&space_locks);
            handles.push(scope.spawn(move || -> Result<()> {
                // Conservative: lock every space the program may touch,
                // in ascending order (global order ⇒ no deadlock).
                let (r, w) = crate::dag_admission::may_access_sets(program, catalog);
                let spaces: BTreeSet<u32> =
                    r.union(&w).iter().map(|i| policy.space_of(i).0).collect();
                let guards: Vec<_> = spaces
                    .iter()
                    .map(|&s| space_locks[s as usize].lock())
                    .collect();
                let mut session = ProgramSession::new(program, catalog, txn);
                loop {
                    match session.pending()? {
                        Pending::NeedRead(item) => {
                            let mut sh = shared.lock();
                            let v = sh.db.require(item)?.clone();
                            let op = session.feed_read(v)?;
                            if let Some(m) = sh.monitor.as_mut() {
                                m.push(op.clone())?;
                            }
                            sh.trace.push(op);
                        }
                        Pending::Write(op) => {
                            let mut sh = shared.lock();
                            sh.db.set(op.item, op.value.clone());
                            if let Some(m) = sh.monitor.as_mut() {
                                m.push(op.clone())?;
                            }
                            sh.trace.push(op);
                            session.advance_write()?;
                        }
                        Pending::Done => break,
                    }
                    // Encourage interleaving across threads.
                    std::thread::yield_now();
                }
                drop(guards);
                Ok(())
            }));
        }
        for h in handles {
            h.join().map_err(|_| SchedError::Stalled)??;
        }
        Ok(())
    })?;

    let shared = Arc::try_unwrap(shared)
        .map_err(|_| SchedError::Stalled)?
        .into_inner();
    let verdict = shared.monitor.as_ref().map(OnlineMonitor::verdict);
    let schedule = Schedule::new(shared.trace)?;
    Ok((schedule, shared.db, verdict))
}

/// Sanity helper for tests: replay a program against the values its
/// operations recorded, confirming the trace is a genuine execution.
pub fn replay_matches(program: &Program, catalog: &Catalog, txn: TxnId, ops: &[Operation]) -> bool {
    let reads: Vec<_> = ops
        .iter()
        .filter(|o| o.is_read())
        .map(|o| o.value.clone())
        .collect();
    match run_with_reads(program, catalog, txn, &reads) {
        Ok(RunOutcome::Complete { ops: replayed }) => replayed == ops,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
    use pwsr_core::ids::ItemId;
    use pwsr_core::pwsr::is_pwsr;
    use pwsr_core::value::{Domain, Value};
    use pwsr_tplang::parser::parse_program;

    fn setup() -> (Catalog, IntegrityConstraint, DbState) {
        let mut cat = Catalog::new();
        let a0 = cat.add_item("a0", Domain::int_range(-1000, 1000));
        let b0 = cat.add_item("b0", Domain::int_range(-1000, 1000));
        let a1 = cat.add_item("a1", Domain::int_range(-1000, 1000));
        let b1 = cat.add_item("b1", Domain::int_range(-1000, 1000));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(0, Formula::le(Term::var(a0), Term::var(b0))),
            Conjunct::new(1, Formula::le(Term::var(a1), Term::var(b1))),
        ])
        .unwrap();
        let initial = DbState::from_pairs([
            (a0, Value::Int(0)),
            (b0, Value::Int(100)),
            (a1, Value::Int(0)),
            (b1, Value::Int(100)),
        ]);
        (cat, ic, initial)
    }

    #[test]
    fn threaded_run_is_pwsr_and_coherent() {
        let (cat, ic, initial) = setup();
        let programs = vec![
            parse_program("T1", "a0 := a0 + 1; a1 := a1 + 1;").unwrap(),
            parse_program("T2", "b0 := b0 + 1;").unwrap(),
            parse_program("T3", "b1 := b1 + 1; a1 := a1 + 2;").unwrap(),
            parse_program("T4", "a0 := a0 + 3;").unwrap(),
        ];
        let policy = PolicySpec::predicate_wise_2pl(&ic);
        for _ in 0..5 {
            let (schedule, final_state) = run_threaded(&programs, &cat, &initial, &policy).unwrap();
            schedule.check_read_coherence(&initial).unwrap();
            assert!(is_pwsr(&schedule, &ic).ok());
            // All effects present regardless of interleaving.
            assert_eq!(
                final_state.get(cat.lookup("a0").unwrap()),
                Some(&Value::Int(4))
            );
            assert_eq!(
                final_state.get(cat.lookup("a1").unwrap()),
                Some(&Value::Int(3))
            );
        }
    }

    #[test]
    fn certified_threaded_run_reports_live_verdict() {
        use pwsr_core::monitor::VerdictLevel;
        let (cat, ic, initial) = setup();
        let programs = vec![
            parse_program("T1", "a0 := a0 + 1; a1 := a1 + 1;").unwrap(),
            parse_program("T2", "b0 := b0 + 1;").unwrap(),
            parse_program("T3", "b1 := b1 + 1; a1 := a1 + 2;").unwrap(),
        ];
        let policy = PolicySpec::predicate_wise_2pl(&ic);
        let scopes: Vec<ItemSet> = ic.conjuncts().iter().map(|c| c.items().clone()).collect();
        for _ in 0..5 {
            let (schedule, _, verdict) =
                run_threaded_certified(&programs, &cat, &initial, &policy, scopes.clone()).unwrap();
            // Conservative per-space 2PL holds every touched space for
            // the transaction's lifetime: the live verdict must land at
            // PWSR-or-better with DR preserved, and agree with the
            // batch checkers on the recorded schedule.
            assert_ne!(verdict.level, VerdictLevel::Violation);
            assert!(verdict.dr, "{schedule}");
            assert!(verdict.pwsr());
            assert_eq!(verdict.len, schedule.len());
            assert!(is_pwsr(&schedule, &ic).ok());
            assert!(pwsr_core::dr::is_delayed_read(&schedule));
        }
    }

    #[test]
    fn per_transaction_traces_replay() {
        let (cat, ic, initial) = setup();
        let programs = vec![
            parse_program("T1", "a0 := a0 + 1;").unwrap(),
            parse_program("T2", "a0 := a0 + 1;").unwrap(),
        ];
        let policy = PolicySpec::predicate_wise_2pl(&ic);
        let (schedule, _) = run_threaded(&programs, &cat, &initial, &policy).unwrap();
        for (k, p) in programs.iter().enumerate() {
            let txn = TxnId(k as u32 + 1);
            let t = schedule.transaction(txn);
            assert!(replay_matches(p, &cat, txn, t.ops()));
        }
    }

    #[test]
    fn empty_program_set() {
        let (cat, _ic, initial) = setup();
        let (schedule, final_state) =
            run_threaded(&[], &cat, &initial, &PolicySpec::global_2pl()).unwrap();
        assert!(schedule.is_empty());
        assert_eq!(final_state, initial);
        let _ = ItemId(0);
    }
}
