//! The `fix_structure` rewrite: §3.1's TP1 → TP1′ generalized.
//!
//! The paper notes that the non-fixed-structure `TP1` of Example 2
//! *"can be converted into the following fixed-structured transaction
//! program TP1′"* by giving the `if` an `else` branch with the identity
//! assignment `b := b`. This module mechanizes that conversion:
//!
//! * every `if` whose branches have different operation footprints is
//!   **canonicalized**: both branches first `touch` the union of the
//!   items either branch reads (plus items only one branch writes),
//!   sorted by item; then both write the union of the items either
//!   branch writes, sorted, using the branch's own expression where it
//!   has one and the identity `x := x` where it does not;
//! * `while` loops must already be operation-silent (their structure
//!   cannot be fixed by padding).
//!
//! The rewrite preserves semantics under two checkable restrictions
//! (violations yield [`TpError::CannotCanonicalize`]): branch bodies
//! must be flat `assign`/`touch` sequences (canonicalize inner `if`s
//! first — the walk is bottom-up, so only *still-unbalanced* nested
//! `if`s are rejected), and no branch expression may read a data item
//! written earlier in the same branch (reordering writes would change
//! the value seen). Identity writes are semantically neutral; `touch`
//! reads do not change the database.

use crate::analysis::sym_block;
use crate::ast::{Expr, Program, Stmt};
use crate::error::{Result, TpError};
use pwsr_core::catalog::Catalog;
use pwsr_core::ids::ItemId;
use std::collections::{BTreeMap, BTreeSet};

/// Rewrite `program` into a fixed-structure equivalent, or explain why
/// the canonicalization does not apply.
pub fn fix_structure(program: &Program, catalog: &Catalog) -> Result<Program> {
    let mut cached: BTreeSet<ItemId> = BTreeSet::new();
    let body = fix_block(&program.body, catalog, &mut cached)?;
    Ok(Program::new(&format!("{}_fixed", program.name), body))
}

fn fix_block(
    stmts: &[Stmt],
    catalog: &Catalog,
    cached: &mut BTreeSet<ItemId>,
) -> Result<Vec<Stmt>> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign { target, expr } => {
                note_expr_reads(expr, catalog, cached);
                if let Ok(item) = catalog.lookup(target) {
                    cached.insert(item);
                }
                out.push(s.clone());
            }
            Stmt::Touch(name) => {
                if let Ok(item) = catalog.lookup(name) {
                    cached.insert(item);
                }
                out.push(s.clone());
            }
            Stmt::While { cond, body, limit } => {
                note_cond_reads(cond, catalog, cached);
                let mut body_cache = cached.clone();
                let ops = sym_block(body, catalog, &mut body_cache)
                    .map_err(TpError::CannotCanonicalize)?;
                if !ops.is_empty() {
                    return Err(TpError::CannotCanonicalize(
                        "while body performs data-item operations; padding cannot fix a \
                         state-dependent iteration count"
                            .to_owned(),
                    ));
                }
                out.push(Stmt::While {
                    cond: cond.clone(),
                    body: body.clone(),
                    limit: *limit,
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                note_cond_reads(cond, catalog, cached);
                // Bottom-up: canonicalize nested structure first.
                let then_fixed = fix_block(then_branch, catalog, &mut cached.clone())?;
                let else_fixed = fix_block(else_branch, catalog, &mut cached.clone())?;
                // Already balanced?
                let then_ops = sym_block(&then_fixed, catalog, &mut cached.clone())
                    .map_err(TpError::CannotCanonicalize)?;
                let else_ops = sym_block(&else_fixed, catalog, &mut cached.clone())
                    .map_err(TpError::CannotCanonicalize)?;
                if then_ops == else_ops {
                    for op in &then_ops {
                        cached.insert(op.item);
                    }
                    out.push(Stmt::If {
                        cond: cond.clone(),
                        then_branch: then_fixed,
                        else_branch: else_fixed,
                    });
                    continue;
                }
                // Canonicalize the two (flat) branches.
                let a = BranchShape::analyze(&then_fixed, catalog, cached)?;
                let b = BranchShape::analyze(&else_fixed, catalog, cached)?;
                let all_writes: BTreeSet<ItemId> =
                    a.writes.keys().chain(b.writes.keys()).copied().collect();
                let sym_diff: BTreeSet<ItemId> = all_writes
                    .iter()
                    .filter(|i| a.writes.contains_key(i) != b.writes.contains_key(i))
                    .copied()
                    .collect();
                let mut touch_set: BTreeSet<ItemId> = a
                    .reads
                    .iter()
                    .chain(b.reads.iter())
                    .chain(sym_diff.iter())
                    .copied()
                    .collect();
                touch_set.retain(|i| !cached.contains(i));
                let new_then = a.canonical_body(catalog, &touch_set, &all_writes);
                let new_else = b.canonical_body(catalog, &touch_set, &all_writes);
                cached.extend(touch_set.iter().copied());
                cached.extend(all_writes.iter().copied());
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_branch: new_then,
                    else_branch: new_else,
                });
            }
        }
    }
    Ok(out)
}

/// The reorderable shape of a flat branch.
struct BranchShape {
    /// Items read anywhere in the branch (incl. local-assign exprs).
    reads: BTreeSet<ItemId>,
    /// Item → its assignment expression.
    writes: BTreeMap<ItemId, Expr>,
    /// Local assignments and original touches, in original order.
    locals: Vec<Stmt>,
}

impl BranchShape {
    fn analyze(
        stmts: &[Stmt],
        catalog: &Catalog,
        entry_cache: &BTreeSet<ItemId>,
    ) -> Result<BranchShape> {
        let mut shape = BranchShape {
            reads: BTreeSet::new(),
            writes: BTreeMap::new(),
            locals: Vec::new(),
        };
        for s in stmts {
            match s {
                Stmt::Assign { target, expr } => {
                    // Reject expressions reading items written earlier
                    // in this branch: reordering would change values.
                    let mut names = Vec::new();
                    expr.var_names(&mut names);
                    for n in &names {
                        if let Ok(item) = catalog.lookup(n) {
                            if shape.writes.contains_key(&item) {
                                return Err(TpError::CannotCanonicalize(format!(
                                    "branch reads item {n:?} after writing it; write \
                                     reordering would change semantics"
                                )));
                            }
                            shape.reads.insert(item);
                        }
                    }
                    match catalog.lookup(target) {
                        Ok(item) => {
                            if shape.writes.insert(item, expr.clone()).is_some() {
                                return Err(TpError::DoubleWrite(item));
                            }
                        }
                        Err(_) => shape.locals.push(s.clone()),
                    }
                }
                Stmt::Touch(name) => {
                    if let Ok(item) = catalog.lookup(name) {
                        shape.reads.insert(item);
                    } else {
                        shape.locals.push(s.clone());
                    }
                }
                Stmt::If { .. } | Stmt::While { .. } => {
                    return Err(TpError::CannotCanonicalize(
                        "branch still contains control flow after bottom-up canonicalization"
                            .to_owned(),
                    ));
                }
            }
        }
        let _ = entry_cache;
        Ok(shape)
    }

    /// Rebuild the branch: sorted touches, then locals, then the sorted
    /// union of writes (identity where this branch has no expression).
    fn canonical_body(
        &self,
        catalog: &Catalog,
        touch_set: &BTreeSet<ItemId>,
        all_writes: &BTreeSet<ItemId>,
    ) -> Vec<Stmt> {
        let mut body: Vec<Stmt> = touch_set
            .iter()
            .map(|&i| Stmt::Touch(catalog.name(i).to_owned()))
            .collect();
        body.extend(self.locals.iter().cloned());
        for &item in all_writes {
            let name = catalog.name(item).to_owned();
            let expr = self
                .writes
                .get(&item)
                .cloned()
                .unwrap_or(Expr::Var(name.clone()));
            body.push(Stmt::Assign { target: name, expr });
        }
        body
    }
}

fn note_expr_reads(expr: &Expr, catalog: &Catalog, cached: &mut BTreeSet<ItemId>) {
    let mut names = Vec::new();
    expr.var_names(&mut names);
    for n in names {
        if let Ok(item) = catalog.lookup(&n) {
            cached.insert(item);
        }
    }
}

fn note_cond_reads(cond: &crate::ast::Cond, catalog: &Catalog, cached: &mut BTreeSet<ItemId>) {
    let mut names = Vec::new();
    cond.var_names(&mut names);
    for n in names {
        if let Ok(item) = catalog.lookup(&n) {
            cached.insert(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{is_fixed_structure_exhaustive, static_structure};
    use crate::interp::execute_and_apply;
    use crate::parser::parse_program;
    use pwsr_core::ids::TxnId;
    use pwsr_core::state::DbState;
    use pwsr_core::value::{Domain, Value};

    fn catalog_abc(lo: i64, hi: i64) -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.add_item(name, Domain::int_range(lo, hi));
        }
        cat
    }

    /// Every total state over the (small) catalog.
    fn all_states(cat: &Catalog) -> Vec<DbState> {
        let items: Vec<_> = cat.items().collect();
        let mut out = vec![DbState::new()];
        for &i in &items {
            let mut next = Vec::new();
            for st in &out {
                for v in cat.domain(i).iter() {
                    let mut s2 = st.clone();
                    s2.set(i, v);
                    next.push(s2);
                }
            }
            out = next;
        }
        out
    }

    #[test]
    fn tp1_becomes_fixed_and_matches_tp1_prime_semantics() {
        let cat = catalog_abc(-2, 2);
        let tp1 = parse_program("TP1", "a := 1; if (c > 0) then b := abs(b) + 1;").unwrap();
        let fixed = fix_structure(&tp1, &cat).unwrap();
        assert!(static_structure(&fixed, &cat).is_fixed());
        assert_eq!(
            is_fixed_structure_exhaustive(&fixed, &cat, 100_000).unwrap(),
            Some(true)
        );
        // Semantics preserved on every state.
        for st in all_states(&cat) {
            let (_, out_orig) = execute_and_apply(&tp1, &cat, TxnId(1), &st).unwrap();
            let (_, out_fixed) = execute_and_apply(&fixed, &cat, TxnId(1), &st).unwrap();
            assert_eq!(out_orig, out_fixed, "divergence from {st:?}");
        }
    }

    #[test]
    fn fixed_tp1_has_paper_tp1_prime_structure() {
        // The paper's TP1′ writes b on both branches; ours additionally
        // touches b first (the read that `b := |b|+1` performs anyway).
        let cat = catalog_abc(-2, 2);
        let tp1 = parse_program("TP1", "a := 1; if (c > 0) then b := abs(b) + 1;").unwrap();
        let fixed = fix_structure(&tp1, &cat).unwrap();
        let b = cat.lookup("b").unwrap();
        let st = DbState::from_pairs([
            (b, Value::Int(1)),
            (cat.lookup("c").unwrap(), Value::Int(-1)),
        ]);
        let t = execute_and_apply(&fixed, &cat, TxnId(1), &st).unwrap().0;
        // Else path now emits r(b), w(b) — the identity write.
        let shown: Vec<String> = t.ops().iter().map(|o| o.display(&cat)).collect();
        assert_eq!(shown, vec!["w1(a, 1)", "r1(c, -1)", "r1(b, 1)", "w1(b, 1)"]);
    }

    #[test]
    fn asymmetric_write_sets_are_unified() {
        let cat = catalog_abc(-2, 2);
        let p = parse_program("P", "if (c > 0) then { a := 1; } else { b := 2; }").unwrap();
        let fixed = fix_structure(&p, &cat).unwrap();
        assert!(static_structure(&fixed, &cat).is_fixed());
        for st in all_states(&cat) {
            let (_, o1) = execute_and_apply(&p, &cat, TxnId(1), &st).unwrap();
            let (_, o2) = execute_and_apply(&fixed, &cat, TxnId(1), &st).unwrap();
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn locals_survive_canonicalization() {
        let cat = catalog_abc(-4, 4);
        let p = parse_program(
            "P",
            "if (c > 0) then { t := c + 1; a := t; } else { a := a; }",
        )
        .unwrap();
        let fixed = fix_structure(&p, &cat).unwrap();
        assert!(static_structure(&fixed, &cat).is_fixed());
        for st in all_states(&cat) {
            let (_, o1) = execute_and_apply(&p, &cat, TxnId(1), &st).unwrap();
            let (_, o2) = execute_and_apply(&fixed, &cat, TxnId(1), &st).unwrap();
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn nested_ifs_canonicalize_bottom_up() {
        // The inner if is unbalanced; after its canonicalization the
        // outer branches have identical footprints (r(a), r(b), w(b))
        // and need no further padding.
        let cat = catalog_abc(-2, 2);
        let p = parse_program(
            "P",
            "if (c > 0) then { if (a > 0) then { b := 1; } } \
             else { touch a; b := b; }",
        )
        .unwrap();
        let fixed = fix_structure(&p, &cat).unwrap();
        assert!(static_structure(&fixed, &cat).is_fixed());
        for st in all_states(&cat) {
            let (_, o1) = execute_and_apply(&p, &cat, TxnId(1), &st).unwrap();
            let (_, o2) = execute_and_apply(&fixed, &cat, TxnId(1), &st).unwrap();
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn unbalanced_outer_with_inner_control_flow_is_rejected() {
        // Known limitation: if the outer branches still differ after
        // bottom-up canonicalization and one of them contains control
        // flow, the flat-branch rewrite cannot apply.
        let cat = catalog_abc(-2, 2);
        let p = parse_program(
            "P",
            "if (c > 0) then { if (a > 0) then { b := 1; } } else { b := 0; }",
        )
        .unwrap();
        let err = fix_structure(&p, &cat).unwrap_err();
        assert!(matches!(err, TpError::CannotCanonicalize(_)));
    }

    #[test]
    fn write_then_read_in_branch_is_rejected() {
        let cat = catalog_abc(-2, 2);
        // Branch writes a then reads it into b: reordering unsafe.
        let p = parse_program(
            "P",
            "if (c > 0) then { a := 1; b := a + 1; } else { b := 0; }",
        )
        .unwrap();
        let err = fix_structure(&p, &cat).unwrap_err();
        assert!(matches!(err, TpError::CannotCanonicalize(_)));
    }

    #[test]
    fn state_dependent_loop_is_rejected() {
        let cat = catalog_abc(-2, 2);
        let p = parse_program("P", "while (a > 0) do { a := a - 1; }").unwrap();
        // Double write aside, the loop itself is un-fixable.
        let err = fix_structure(&p, &cat).unwrap_err();
        assert!(matches!(err, TpError::CannotCanonicalize(_)));
    }

    #[test]
    fn already_fixed_program_is_unchanged_in_structure() {
        let cat = catalog_abc(-2, 2);
        let p = parse_program("P", "b := c - 1;").unwrap();
        let fixed = fix_structure(&p, &cat).unwrap();
        assert_eq!(fixed.body, p.body);
    }
}
