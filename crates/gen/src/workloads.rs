//! Assembled workload families.
//!
//! * [`random_workload`] — the THM-1/2/3 harness input: chain
//!   conjuncts, correct background templates (optionally restricted to
//!   fixed-structure kinds), and optionally embedded Example-2 gadgets
//!   whose interleavings can violate consistency.
//! * [`cad_workload`] — §1's motivating scenario: design objects as
//!   conjuncts, long transactions spanning several objects, short
//!   touch-up transactions.
//! * [`registration_workload`] — the §2.3 course-registration schema.
//! * [`mdbs_workload`] — the §4 multidatabase scenario (sites =
//!   conjuncts; local and global transactions).
//! * [`analyzer_workload`] — the static-analyzer scenario: blind-write
//!   chains whose conflict graph is a provable forest, plus optional
//!   contended read-modify-write pairs that defeat the criterion.

use crate::constraints::{banking_ic, random_ic, BankConfig, GeneratedIc, IcConfig};
use crate::gadgets::{example2_gadget, Example2Gadget};
use crate::templates::{audit_program, correct_chain_program, transfer_program, TemplateKind};
use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
use pwsr_core::ids::TxnId;
use pwsr_core::state::{DbState, ItemSet};
use pwsr_core::value::{Domain, Value};
use pwsr_tplang::analysis::static_structure;
use pwsr_tplang::ast::Program;
use pwsr_tplang::parser::parse_program;
use rand::Rng;

/// A complete experiment input.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Items and domains.
    pub catalog: Catalog,
    /// The constraint (disjoint conjuncts).
    pub ic: IntegrityConstraint,
    /// Programs (program `k` runs as transaction `k+1`).
    pub programs: Vec<Program>,
    /// A consistent initial state.
    pub initial: DbState,
    /// Does the static prover certify every program fixed-structure?
    pub all_fixed_structure: bool,
    /// Transaction-id pairs of embedded Example-2 gadgets.
    pub gadget_txns: Vec<(TxnId, TxnId)>,
}

/// Parameters for [`random_workload`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Chain conjuncts to generate.
    pub conjuncts: usize,
    /// Items per chain.
    pub items_per_conjunct: usize,
    /// Number of background (always-correct) transactions.
    pub n_background: usize,
    /// Probability that a background transaction reads across
    /// conjuncts (creates data-access-graph edges).
    pub cross_read_prob: f64,
    /// Restrict background templates to fixed-structure kinds.
    pub fixed_only: bool,
    /// Number of Example-2 gadgets (2 transactions each) to embed.
    pub gadgets: usize,
    /// Item domain half-width (`[-w, w]`); smaller widths make the
    /// restriction-consistency solver's search cheaper.
    pub domain_width: i64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            conjuncts: 3,
            items_per_conjunct: 3,
            n_background: 4,
            cross_read_prob: 0.5,
            fixed_only: false,
            gadgets: 0,
            domain_width: 100,
        }
    }
}

/// Generate a randomized workload per `cfg`.
pub fn random_workload<R: Rng>(rng: &mut R, cfg: &WorkloadConfig) -> Workload {
    let GeneratedIc {
        mut catalog,
        ic,
        shapes,
        mut initial,
    } = random_ic(
        rng,
        &IcConfig {
            conjuncts: cfg.conjuncts,
            items_per_conjunct: cfg.items_per_conjunct,
            domain_width: cfg.domain_width,
        },
    );
    let mut conjuncts: Vec<Conjunct> = ic.conjuncts().to_vec();
    let mut programs = Vec::new();
    let kinds: Vec<TemplateKind> = TemplateKind::ALL
        .into_iter()
        .filter(|k| !cfg.fixed_only || k.is_fixed_structure())
        .collect();
    for t in 0..cfg.n_background {
        let ci = rng.random_range(0..shapes.len());
        let kind = kinds[rng.random_range(0..kinds.len())];
        let cross = if rng.random_bool(cfg.cross_read_prob) && shapes.len() > 1 {
            let mut other = rng.random_range(0..shapes.len());
            if other == ci {
                other = (other + 1) % shapes.len();
            }
            let items = shapes[other].items();
            Some(items[rng.random_range(0..items.len())])
        } else {
            None
        };
        programs.push(correct_chain_program(
            rng,
            &catalog,
            &shapes[ci],
            kind,
            cross,
            &format!("B{t}"),
        ));
    }
    let mut gadget_txns = Vec::new();
    for gi in 0..cfg.gadgets {
        let next_conjunct = conjuncts.len() as u32;
        let Example2Gadget {
            g1,
            g2,
            conjuncts: gc,
            ..
        } = example2_gadget(&mut catalog, &mut initial, &format!("_{gi}"), next_conjunct);
        conjuncts.extend(gc);
        let t1 = TxnId(programs.len() as u32 + 1);
        programs.push(g1);
        let t2 = TxnId(programs.len() as u32 + 1);
        programs.push(g2);
        gadget_txns.push((t1, t2));
    }
    let ic = IntegrityConstraint::new(conjuncts).expect("scopes stay disjoint");
    let all_fixed_structure = programs
        .iter()
        .all(|p| static_structure(p, &catalog).is_fixed());
    Workload {
        catalog,
        ic,
        programs,
        initial,
        all_fixed_structure,
        gadget_txns,
    }
}

/// The CAD scenario: `n_objects` design objects (chain conjuncts),
/// `n_long` long transactions each spanning `long_span` objects (one
/// correct template per object), and `n_short` single-object
/// transactions. All templates are fixed-structure so Theorem 1 applies
/// and early lock release is available.
pub fn cad_workload<R: Rng>(
    rng: &mut R,
    n_objects: usize,
    n_long: usize,
    long_span: usize,
    n_short: usize,
) -> Workload {
    let g = random_ic(
        rng,
        &IcConfig {
            conjuncts: n_objects,
            items_per_conjunct: 3,
            domain_width: 10_000,
        },
    );
    let fixed_kinds: Vec<TemplateKind> = TemplateKind::ALL
        .into_iter()
        .filter(|k| k.is_fixed_structure())
        .collect();
    let mut programs = Vec::new();
    for t in 0..n_long {
        // Pick `long_span` distinct objects; one template body each.
        let mut objs: Vec<usize> = (0..n_objects).collect();
        for i in 0..long_span.min(n_objects) {
            let j = rng.random_range(i..objs.len());
            objs.swap(i, j);
        }
        let mut body = String::new();
        for &ci in objs.iter().take(long_span.min(n_objects)) {
            let kind = fixed_kinds[rng.random_range(0..fixed_kinds.len())];
            let sub = correct_chain_program(rng, &g.catalog, &g.shapes[ci], kind, None, "part");
            // Concatenate the template's text (distinct conjuncts ⇒ no
            // double writes across parts).
            for stmt in &sub.body {
                body.push_str(&stmt_text(stmt));
            }
        }
        programs.push(parse_program(&format!("LONG{t}"), &body).expect("generated text parses"));
    }
    for t in 0..n_short {
        let ci = rng.random_range(0..n_objects);
        let kind = fixed_kinds[rng.random_range(0..fixed_kinds.len())];
        programs.push(correct_chain_program(
            rng,
            &g.catalog,
            &g.shapes[ci],
            kind,
            None,
            &format!("SHORT{t}"),
        ));
    }
    let all_fixed_structure = programs
        .iter()
        .all(|p| static_structure(p, &g.catalog).is_fixed());
    Workload {
        catalog: g.catalog,
        ic: g.ic,
        programs,
        initial: g.initial,
        all_fixed_structure,
        gadget_txns: Vec::new(),
    }
}

fn stmt_text(stmt: &pwsr_tplang::ast::Stmt) -> String {
    // Statements render with trailing newlines via Program's Display;
    // single statements are rebuilt from a throwaway program.
    let p = Program::new("x", vec![stmt.clone()]);
    let text = p.to_string();
    text.lines().skip(1).collect::<Vec<_>>().join(" ")
}

/// The §2.3 registration schema: per-course seat counters with
/// capacity constraints and per-student hour counters with an upper
/// bound. Each student's registration saga is flattened into one
/// enroll transaction per chosen course plus one hours update.
/// `balanced` selects fixed-structure (padded) enrolls.
pub fn registration_workload<R: Rng>(
    rng: &mut R,
    n_students: usize,
    n_courses: usize,
    capacity: i64,
    max_hours: i64,
    courses_per_student: usize,
    balanced: bool,
) -> Workload {
    let mut catalog = Catalog::new();
    let mut conjuncts = Vec::new();
    let mut initial = DbState::new();
    let mut course_items = Vec::new();
    for ci in 0..n_courses {
        let item = catalog.add_item(&format!("course{ci}"), Domain::int_range(0, capacity + 10));
        course_items.push(item);
        conjuncts.push(Conjunct::new(
            ci as u32,
            Formula::and(vec![
                Formula::ge(Term::var(item), Term::int(0)),
                Formula::le(Term::var(item), Term::int(capacity)),
            ]),
        ));
        initial.set(item, Value::Int(0));
    }
    for si in 0..n_students {
        let item = catalog.add_item(
            &format!("hours_s{si}"),
            Domain::int_range(0, max_hours + 10),
        );
        conjuncts.push(Conjunct::new(
            (n_courses + si) as u32,
            Formula::le(Term::var(item), Term::int(max_hours)),
        ));
        initial.set(item, Value::Int(0));
    }
    let ic = IntegrityConstraint::new(conjuncts).expect("registration scopes disjoint");
    let mut programs = Vec::new();
    for si in 0..n_students {
        for _ in 0..courses_per_student {
            let ci = rng.random_range(0..n_courses);
            let c = format!("course{ci}");
            let text = if balanced {
                format!("if ({c} < {capacity}) then {{ {c} := {c} + 1; }} else {{ {c} := {c}; }}")
            } else {
                format!("if ({c} < {capacity}) then {c} := {c} + 1;")
            };
            programs.push(parse_program(&format!("enroll_s{si}_{c}"), &text).unwrap());
        }
        let h = format!("hours_s{si}");
        let hours = rng.random_range(3..=6);
        let text = if balanced {
            format!(
                "if ({h} + {hours} <= {max_hours}) then {{ {h} := {h} + {hours}; }} \
                 else {{ {h} := {h}; }}"
            )
        } else {
            format!("if ({h} + {hours} <= {max_hours}) then {h} := {h} + {hours};")
        };
        programs.push(parse_program(&format!("hours_s{si}"), &text).unwrap());
    }
    let all_fixed_structure = programs
        .iter()
        .all(|p| static_structure(p, &catalog).is_fixed());
    Workload {
        catalog,
        ic,
        programs,
        initial,
        all_fixed_structure,
        gadget_txns: Vec::new(),
    }
}

/// The §4 MDBS scenario: `k_sites` sites, each a chain conjunct (its
/// local constraint). Returns the workload plus the per-site item sets
/// (for `pwsr-scheduler::mdbs::Site`). Local transactions touch one
/// site; global transactions span `global_span` sites.
pub fn mdbs_workload<R: Rng>(
    rng: &mut R,
    k_sites: usize,
    items_per_site: usize,
    n_local: usize,
    n_global: usize,
    global_span: usize,
) -> (Workload, Vec<ItemSet>) {
    let g = random_ic(
        rng,
        &IcConfig {
            conjuncts: k_sites,
            items_per_conjunct: items_per_site,
            domain_width: 10_000,
        },
    );
    let sites: Vec<ItemSet> = g
        .shapes
        .iter()
        .map(|s| s.items().into_iter().collect())
        .collect();
    let fixed_kinds: Vec<TemplateKind> = TemplateKind::ALL
        .into_iter()
        .filter(|k| k.is_fixed_structure())
        .collect();
    let mut programs = Vec::new();
    for t in 0..n_local {
        let ci = rng.random_range(0..k_sites);
        let kind = fixed_kinds[rng.random_range(0..fixed_kinds.len())];
        programs.push(correct_chain_program(
            rng,
            &g.catalog,
            &g.shapes[ci],
            kind,
            None,
            &format!("L{t}"),
        ));
    }
    for t in 0..n_global {
        let mut body = String::new();
        let mut objs: Vec<usize> = (0..k_sites).collect();
        for i in 0..global_span.min(k_sites) {
            let j = rng.random_range(i..objs.len());
            objs.swap(i, j);
        }
        for &ci in objs.iter().take(global_span.min(k_sites)) {
            let kind = fixed_kinds[rng.random_range(0..fixed_kinds.len())];
            let sub = correct_chain_program(rng, &g.catalog, &g.shapes[ci], kind, None, "part");
            for stmt in &sub.body {
                body.push_str(&stmt_text(stmt));
            }
        }
        programs.push(parse_program(&format!("G{t}"), &body).expect("generated text parses"));
    }
    let all_fixed_structure = programs
        .iter()
        .all(|p| static_structure(p, &g.catalog).is_fixed());
    (
        Workload {
            catalog: g.catalog,
            ic: g.ic,
            programs,
            initial: g.initial,
            all_fixed_structure,
            gadget_txns: Vec::new(),
        },
        sites,
    )
}

/// Parameters for [`analyzer_workload`].
#[derive(Clone, Debug)]
pub struct AnalyzerWorkloadConfig {
    /// Chain conjuncts carrying the statically-safe programs.
    pub conjuncts: usize,
    /// Safe blind-write chain programs per conjunct (each conjunct
    /// gets `chain_len + 1` items).
    pub chain_len: usize,
    /// Contended read-modify-write pairs — each on its own fresh
    /// single-item conjunct — that defeat the structural criterion.
    pub tangled_pairs: usize,
    /// Item domain half-width (`[-w, w]`).
    pub domain_width: i64,
}

impl Default for AnalyzerWorkloadConfig {
    fn default() -> Self {
        AnalyzerWorkloadConfig {
            conjuncts: 4,
            chain_len: 4,
            tangled_pairs: 1,
            domain_width: 100,
        }
    }
}

/// The static-analyzer scenario: per conjunct, a **blind-write
/// chain** — program `j` rewrites items `j` and `j + 1` of its
/// conjunct with their initial values, so consecutive programs share
/// exactly one `w-w` conflict instance and the static mixed conflict
/// graph is a path (a forest). No program reads, so there is no cross
/// reads-from either: the analyzer certifies the chains structurally
/// at *every* admission level. Optionally, `tangled_pairs` contended
/// read-modify-write pairs on fresh single-item conjuncts embed a
/// classic lost-update race that defeats the criterion for their own
/// components, leaving the chains as the certified remainder of a
/// mixed workload.
///
/// Program order: the `conjuncts * chain_len` chain programs first
/// (conjunct-major), then the `2 * tangled_pairs` contended programs.
pub fn analyzer_workload<R: Rng>(rng: &mut R, cfg: &AnalyzerWorkloadConfig) -> Workload {
    let GeneratedIc {
        mut catalog,
        ic,
        shapes,
        mut initial,
    } = random_ic(
        rng,
        &IcConfig {
            conjuncts: cfg.conjuncts,
            items_per_conjunct: cfg.chain_len + 1,
            domain_width: cfg.domain_width,
        },
    );
    let mut conjuncts: Vec<Conjunct> = ic.conjuncts().to_vec();
    let mut programs = Vec::new();
    for (ci, shape) in shapes.iter().enumerate() {
        let items = shape.items();
        for j in 0..cfg.chain_len {
            let body: String = [items[j], items[j + 1]]
                .iter()
                .map(|&item| {
                    let v = match initial.get(item) {
                        Some(Value::Int(v)) => *v,
                        _ => 0,
                    };
                    format!("{} := {v}; ", catalog.name(item))
                })
                .collect();
            programs.push(parse_program(&format!("CHAIN{ci}_{j}"), &body).unwrap());
        }
    }
    for p in 0..cfg.tangled_pairs {
        let index = conjuncts.len() as u32;
        let item = catalog.add_item(
            &format!("tangle{p}"),
            Domain::int_range(-cfg.domain_width, cfg.domain_width),
        );
        conjuncts.push(Conjunct::new(
            index,
            Formula::le(Term::var(item), Term::int(cfg.domain_width)),
        ));
        initial.set(item, Value::Int(0));
        let name = catalog.name(item).to_owned();
        programs.push(
            parse_program(&format!("TANGLE{p}A"), &format!("{name} := {name} + 1;")).unwrap(),
        );
        programs.push(
            parse_program(&format!("TANGLE{p}B"), &format!("{name} := {name} + 2;")).unwrap(),
        );
    }
    let ic = IntegrityConstraint::new(conjuncts).expect("fresh tangle conjuncts stay disjoint");
    let all_fixed_structure = programs
        .iter()
        .all(|p| static_structure(p, &catalog).is_fixed());
    Workload {
        catalog,
        ic,
        programs,
        initial,
        all_fixed_structure,
        gadget_txns: Vec::new(),
    }
}

/// The banking scenario: branches with conserved-sum invariants,
/// transfer transactions within each branch and read-only audits.
/// `guarded`/`balanced` select the transfer variant (see
/// [`transfer_program`]); plain and balanced transfers are
/// fixed-structure, guarded-unbalanced ones are not.
pub fn banking_workload<R: Rng>(
    rng: &mut R,
    bank: &BankConfig,
    n_transfers: usize,
    n_audits: usize,
    guarded: bool,
    balanced: bool,
) -> Workload {
    let g = banking_ic(bank);
    let mut programs = Vec::with_capacity(n_transfers + n_audits);
    for t in 0..n_transfers {
        let b = rng.random_range(0..g.shapes.len());
        programs.push(transfer_program(
            rng,
            &g.catalog,
            &g.shapes[b],
            guarded,
            balanced,
            &format!("XFER{t}"),
        ));
    }
    for t in 0..n_audits {
        let b = rng.random_range(0..g.shapes.len());
        programs.push(audit_program(
            &g.catalog,
            &g.shapes[b],
            &format!("AUDIT{t}"),
        ));
    }
    let all_fixed_structure = programs
        .iter()
        .all(|p| static_structure(p, &g.catalog).is_fixed());
    Workload {
        catalog: g.catalog,
        ic: g.ic,
        programs,
        initial: g.initial,
        all_fixed_structure,
        gadget_txns: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::solver::Solver;
    use pwsr_tplang::interp::execute_and_apply;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_workload_programs_are_individually_correct() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let w = random_workload(&mut rng, &WorkloadConfig::default());
            let solver = Solver::new(&w.catalog, &w.ic);
            assert!(solver.is_consistent_total(&w.initial).unwrap());
            for (k, p) in w.programs.iter().enumerate() {
                let (_, out) =
                    execute_and_apply(p, &w.catalog, TxnId(k as u32 + 1), &w.initial).unwrap();
                assert!(solver.is_consistent(&out), "trial {trial}, {}", p.name);
            }
        }
    }

    #[test]
    fn fixed_only_workloads_are_certified_fixed() {
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = WorkloadConfig {
            fixed_only: true,
            gadgets: 0,
            ..WorkloadConfig::default()
        };
        for _ in 0..10 {
            let w = random_workload(&mut rng, &cfg);
            assert!(w.all_fixed_structure);
        }
    }

    #[test]
    fn gadget_workloads_register_pairs() {
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = WorkloadConfig {
            gadgets: 2,
            n_background: 2,
            ..WorkloadConfig::default()
        };
        let w = random_workload(&mut rng, &cfg);
        assert_eq!(w.gadget_txns.len(), 2);
        assert_eq!(w.programs.len(), 6);
        assert!(!w.all_fixed_structure); // gadget G1 is unbalanced
        assert!(w.ic.is_disjoint());
        assert_eq!(w.ic.len(), 3 + 4);
    }

    #[test]
    fn cad_workload_shape() {
        let mut rng = StdRng::seed_from_u64(34);
        let w = cad_workload(&mut rng, 4, 2, 3, 5);
        assert_eq!(w.programs.len(), 7);
        assert!(w.all_fixed_structure);
        let solver = Solver::new(&w.catalog, &w.ic);
        for (k, p) in w.programs.iter().enumerate() {
            let (_, out) =
                execute_and_apply(p, &w.catalog, TxnId(k as u32 + 1), &w.initial).unwrap();
            assert!(solver.is_consistent(&out), "{}", p.name);
        }
    }

    #[test]
    fn registration_workload_correctness() {
        let mut rng = StdRng::seed_from_u64(35);
        for balanced in [false, true] {
            let w = registration_workload(&mut rng, 3, 2, 30, 18, 2, balanced);
            assert_eq!(w.programs.len(), 3 * (2 + 1));
            assert_eq!(w.all_fixed_structure, balanced);
            let solver = Solver::new(&w.catalog, &w.ic);
            assert!(solver.is_consistent_total(&w.initial).unwrap());
            for (k, p) in w.programs.iter().enumerate() {
                let (_, out) =
                    execute_and_apply(p, &w.catalog, TxnId(k as u32 + 1), &w.initial).unwrap();
                assert!(solver.is_consistent(&out));
            }
        }
    }

    #[test]
    fn banking_workload_correctness() {
        let mut rng = StdRng::seed_from_u64(40);
        for (guarded, balanced, expect_fixed) in [
            (false, false, true),
            (true, false, false),
            (true, true, true),
        ] {
            let w = banking_workload(&mut rng, &BankConfig::default(), 4, 2, guarded, balanced);
            assert_eq!(w.programs.len(), 6);
            assert_eq!(w.all_fixed_structure, expect_fixed);
            let solver = Solver::new(&w.catalog, &w.ic);
            assert!(solver.is_consistent_total(&w.initial).unwrap());
            for (k, p) in w.programs.iter().enumerate() {
                let (_, out) =
                    execute_and_apply(p, &w.catalog, TxnId(k as u32 + 1), &w.initial).unwrap();
                assert!(solver.is_consistent(&out), "{}", p.name);
            }
        }
    }

    #[test]
    fn analyzer_workload_shape_and_correctness() {
        let mut rng = StdRng::seed_from_u64(41);
        let cfg = AnalyzerWorkloadConfig {
            conjuncts: 2,
            chain_len: 3,
            tangled_pairs: 1,
            ..AnalyzerWorkloadConfig::default()
        };
        let w = analyzer_workload(&mut rng, &cfg);
        assert_eq!(w.programs.len(), 2 * 3 + 2);
        assert!(w.all_fixed_structure, "blind writes and RMWs are fixed");
        assert_eq!(w.ic.len(), 2 + 1, "one fresh conjunct per tangle");
        assert!(w.ic.is_disjoint());
        // Chain programs rewrite initial values: running any one of
        // them alone leaves the (consistent) state unchanged.
        let solver = Solver::new(&w.catalog, &w.ic);
        assert!(solver.is_consistent_total(&w.initial).unwrap());
        for (k, p) in w.programs.iter().enumerate() {
            let (_, out) =
                execute_and_apply(p, &w.catalog, TxnId(k as u32 + 1), &w.initial).unwrap();
            assert!(solver.is_consistent(&out), "{}", p.name);
            if p.name.starts_with("CHAIN") {
                assert_eq!(out, w.initial, "chains rewrite initial values");
            }
        }
    }

    #[test]
    fn mdbs_workload_sites_are_disjoint() {
        let mut rng = StdRng::seed_from_u64(36);
        let (w, sites) = mdbs_workload(&mut rng, 3, 2, 4, 2, 2);
        assert_eq!(sites.len(), 3);
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                assert!(sites[i].is_disjoint(&sites[j]));
            }
        }
        assert_eq!(w.programs.len(), 6);
        assert!(w.all_fixed_structure);
    }
}
