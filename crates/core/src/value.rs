//! Values and finite domains.
//!
//! §2.1 of the paper: *"For each data item d′ ∈ D, Dom(d′) denotes the
//! domain of d′. A database state maps every data item d′ to a value
//! v′ ∈ Dom(d′)."*
//!
//! The constraint language ranges over numeric and string constants; we
//! support integers, booleans and interned strings. Domains are kept
//! **finite** so that restriction-consistency ("does a consistent
//! extension exist?", §2.1) is decidable by search — see
//! [`crate::solver`] and the substitution note in `DESIGN.md`.

use std::fmt;
use std::sync::Arc;

/// A runtime value of a data item.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer constant (e.g. `5`, `100`).
    Int(i64),
    /// Boolean constant; comparisons evaluate to these.
    Bool(bool),
    /// String constant (e.g. `"Jim"`), reference-counted for cheap clones.
    Str(Arc<str>),
}

impl Value {
    /// Shorthand for an integer value.
    #[inline]
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Shorthand for a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Human-readable name of the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

/// The finite domain `Dom(d′)` of a data item.
///
/// All of the paper's examples use small integers; bounded integer
/// windows are the common case and are stored without materialising the
/// value list.
#[derive(Clone, PartialEq, Eq)]
pub enum Domain {
    /// All integers in `lo..=hi`.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// `{false, true}`.
    Bools,
    /// An explicit, finite list of values (deduplicated, sorted).
    Explicit(Vec<Value>),
}

impl Domain {
    /// Integer window `lo..=hi`. Panics if `lo > hi`.
    pub fn int_range(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty integer domain {lo}..={hi}");
        Domain::IntRange { lo, hi }
    }

    /// The boolean domain.
    pub fn bools() -> Self {
        Domain::Bools
    }

    /// An explicit domain from a list of values (deduplicated, sorted).
    pub fn explicit(mut values: Vec<Value>) -> Self {
        values.sort();
        values.dedup();
        assert!(!values.is_empty(), "explicit domain must be non-empty");
        Domain::Explicit(values)
    }

    /// Does the domain contain `v`?
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::IntRange { lo, hi } => matches!(v, Value::Int(x) if lo <= x && x <= hi),
            Domain::Bools => matches!(v, Value::Bool(_)),
            Domain::Explicit(vals) => vals.binary_search(v).is_ok(),
        }
    }

    /// Number of values in the domain.
    pub fn size(&self) -> u64 {
        match self {
            Domain::IntRange { lo, hi } => (hi - lo) as u64 + 1,
            Domain::Bools => 2,
            Domain::Explicit(vals) => vals.len() as u64,
        }
    }

    /// Iterate over every value of the domain in ascending order.
    pub fn iter(&self) -> DomainIter<'_> {
        match self {
            Domain::IntRange { lo, hi } => DomainIter::Range {
                next: *lo,
                hi: *hi,
                done: false,
            },
            Domain::Bools => DomainIter::Bools { next: 0 },
            Domain::Explicit(vals) => DomainIter::Explicit { vals, idx: 0 },
        }
    }

    /// An arbitrary member of the domain (the smallest).
    pub fn any_value(&self) -> Value {
        self.iter().next().expect("domains are non-empty")
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::IntRange { lo, hi } => write!(f, "[{lo}..={hi}]"),
            Domain::Bools => write!(f, "{{false,true}}"),
            Domain::Explicit(vals) => {
                write!(f, "{{")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Iterator over the members of a [`Domain`].
pub enum DomainIter<'a> {
    /// Iterating an integer window.
    Range {
        /// Next value to yield.
        next: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Whether the window is exhausted.
        done: bool,
    },
    /// Iterating `{false, true}`.
    Bools {
        /// 0 = `false` next, 1 = `true` next, 2 = exhausted.
        next: u8,
    },
    /// Iterating an explicit list.
    Explicit {
        /// The domain's value list.
        vals: &'a [Value],
        /// Next index to yield.
        idx: usize,
    },
}

impl Iterator for DomainIter<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        match self {
            DomainIter::Range { next, hi, done } => {
                if *done {
                    return None;
                }
                let v = *next;
                if v == *hi {
                    *done = true;
                } else {
                    *next += 1;
                }
                Some(Value::Int(v))
            }
            DomainIter::Bools { next } => match *next {
                0 => {
                    *next = 1;
                    Some(Value::Bool(false))
                }
                1 => {
                    *next = 2;
                    Some(Value::Bool(true))
                }
                _ => None,
            },
            DomainIter::Explicit { vals, idx } => {
                let v = vals.get(*idx)?.clone();
                *idx += 1;
                Some(v)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            DomainIter::Range { next, hi, done } => {
                if *done {
                    0
                } else {
                    (*hi - *next) as usize + 1
                }
            }
            DomainIter::Bools { next } => 2usize.saturating_sub(*next as usize),
            DomainIter::Explicit { vals, idx } => vals.len() - *idx,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for DomainIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_membership_and_size() {
        let d = Domain::int_range(-2, 3);
        assert_eq!(d.size(), 6);
        assert!(d.contains(&Value::Int(-2)));
        assert!(d.contains(&Value::Int(3)));
        assert!(!d.contains(&Value::Int(4)));
        assert!(!d.contains(&Value::Bool(true)));
    }

    #[test]
    fn int_range_iterates_in_order() {
        let d = Domain::int_range(0, 2);
        let vals: Vec<Value> = d.iter().collect();
        assert_eq!(vals, vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
        assert_eq!(d.iter().len(), 3);
    }

    #[test]
    fn bool_domain() {
        let d = Domain::bools();
        assert_eq!(d.size(), 2);
        let vals: Vec<Value> = d.iter().collect();
        assert_eq!(vals, vec![Value::Bool(false), Value::Bool(true)]);
    }

    #[test]
    fn explicit_domain_dedups_and_sorts() {
        let d = Domain::explicit(vec![Value::Int(3), Value::Int(1), Value::Int(3)]);
        assert_eq!(d.size(), 2);
        let vals: Vec<Value> = d.iter().collect();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(3)]);
        assert!(d.contains(&Value::Int(1)));
        assert!(!d.contains(&Value::Int(2)));
    }

    #[test]
    fn str_values_compare() {
        let jim = Value::str("Jim");
        let jim2 = Value::str("Jim");
        assert_eq!(jim, jim2);
        assert_eq!(format!("{jim}"), "\"Jim\"");
    }

    #[test]
    fn any_value_is_member() {
        for d in [
            Domain::int_range(-5, 5),
            Domain::bools(),
            Domain::explicit(vec![Value::str("x"), Value::str("y")]),
        ] {
            assert!(d.contains(&d.any_value()));
        }
    }

    #[test]
    #[should_panic]
    fn empty_int_range_panics() {
        let _ = Domain::int_range(3, 2);
    }

    #[test]
    fn singleton_range() {
        let d = Domain::int_range(7, 7);
        assert_eq!(d.size(), 1);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![Value::Int(7)]);
    }
}
