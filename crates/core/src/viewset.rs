//! View sets `VS(T_i, p, d, S)` — Lemma 2 and Lemma 6.
//!
//! The *view set* of transaction `T_i` before operation `p` with respect
//! to data set `d` over-approximates the items `T_i` may have read
//! before `p`:
//!
//! * **Lemma 2** (general schedules): before `p`, a transaction can
//!   read all items except those written *after* `p` by transactions
//!   serialized before it:
//!   `VS(T_1) = d`, `VS(T_i) = VS(T_{i-1}) − WS(after(T^d_{i-1}, p, S))`.
//! * **Lemma 6** (DR schedules): items written by *incomplete*
//!   predecessors are excluded outright, but items written by
//!   *completed* predecessors are added back:
//!   `VS(T_i) = VS(T_{i-1}) − WS(T^d_{i-1})` if `after(T_{i-1}, p, S) ≠ ε`,
//!   `VS(T_i) = VS(T_{i-1}) ∪ WS(T^d_{i-1})` otherwise.
//!
//! Both lemmas assert `RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S)`; the
//! inclusion checkers below let tests and benches verify this on every
//! schedule prefix, which is exactly how the paper's operation-indexed
//! induction uses them.
//!
//! ## Hot path
//!
//! Every entry point reduces the schedule to four per-transaction
//! quantities (all projected to `d`): `RS(before)`, `WS(after)`,
//! `WS(T^d)` and whether the transaction has finished by `p`. The free
//! functions gather them in **one** pass over the operation sequence;
//! the [`ScheduleIndex`] methods answer the same queries from prefix
//! tables built once per schedule; and
//! [`inclusion_holds_everywhere`] maintains them **incrementally**
//! while sweeping `p`, so the full induction sweep is `O(n·|order|)`
//! word operations instead of the old `O(n²·|order|)` rescans.

use crate::ids::{OpIndex, TxnId};
use crate::index::ScheduleIndex;
use crate::schedule::Schedule;
use crate::state::ItemSet;
use std::collections::HashMap;

/// The per-transaction quantities (parallel to `order`, projected to
/// `d`) that both lemmas consume.
struct PerTxn {
    /// `RS(before(T_i^d, p, S))`.
    rs_before: Vec<ItemSet>,
    /// `WS(after(T_i^d, p, S))`.
    ws_after: Vec<ItemSet>,
    /// `WS(T_i^d)` (prefix ∪ suffix).
    ws_total: Vec<ItemSet>,
    /// `after(T_i, p, S) = ε` (over *all* items, not just `d`).
    finished: Vec<bool>,
}

impl PerTxn {
    fn with_len(n: usize) -> PerTxn {
        PerTxn {
            rs_before: vec![ItemSet::new(); n],
            ws_after: vec![ItemSet::new(); n],
            ws_total: vec![ItemSet::new(); n],
            finished: vec![true; n],
        }
    }

    /// Gather everything in a single scan of the operation sequence.
    fn by_scan(schedule: &Schedule, d: &ItemSet, order: &[TxnId], p: OpIndex) -> PerTxn {
        let mut out = PerTxn::with_len(order.len());
        let slot: HashMap<TxnId, usize> = order.iter().enumerate().map(|(k, &t)| (t, k)).collect();
        for (i, o) in schedule.ops().iter().enumerate() {
            let Some(&k) = slot.get(&o.txn) else {
                continue;
            };
            if i > p.0 {
                out.finished[k] = false;
            }
            if !d.contains(o.item) {
                continue;
            }
            if o.is_read() {
                if i <= p.0 {
                    out.rs_before[k].insert(o.item);
                }
            } else {
                out.ws_total[k].insert(o.item);
                if i > p.0 {
                    out.ws_after[k].insert(o.item);
                }
            }
        }
        out
    }
}

/// Lemma 2's recurrence over precomputed `WS(after)` sets.
fn fold_general(d: &ItemSet, ws_after: &[ItemSet]) -> Vec<ItemSet> {
    let mut out = Vec::with_capacity(ws_after.len());
    let mut current = d.clone();
    for (i, _) in ws_after.iter().enumerate() {
        if i > 0 {
            current.difference_with(&ws_after[i - 1]);
        }
        out.push(current.clone());
    }
    out
}

/// Lemma 6's recurrence over precomputed `WS(T^d)`/completion flags.
fn fold_dr(d: &ItemSet, ws_total: &[ItemSet], finished: &[bool]) -> Vec<ItemSet> {
    let mut out = Vec::with_capacity(ws_total.len());
    let mut current = d.clone();
    for i in 0..ws_total.len() {
        if i > 0 {
            if finished[i - 1] {
                current.union_with(&ws_total[i - 1]);
            } else {
                current.difference_with(&ws_total[i - 1]);
            }
        }
        out.push(current.clone());
    }
    out
}

/// Lemma 2's inclusion, checked against the running view set without
/// materializing the `Vec<ItemSet>`. `current` is caller-provided
/// scratch so sweeps stay allocation-free.
fn check_general(d: &ItemSet, per: &PerTxn, current: &mut ItemSet) -> bool {
    current.clone_from(d);
    for i in 0..per.rs_before.len() {
        if i > 0 {
            current.difference_with(&per.ws_after[i - 1]);
        }
        if !per.rs_before[i].is_subset(current) {
            return false;
        }
    }
    true
}

/// Lemma 6's inclusion, same shape.
fn check_dr(d: &ItemSet, per: &PerTxn, current: &mut ItemSet) -> bool {
    current.clone_from(d);
    for i in 0..per.rs_before.len() {
        if i > 0 {
            if per.finished[i - 1] {
                current.union_with(&per.ws_total[i - 1]);
            } else {
                current.difference_with(&per.ws_total[i - 1]);
            }
        }
        if !per.rs_before[i].is_subset(current) {
            return false;
        }
    }
    true
}

/// Lemma 2's view sets, one per transaction of `order` (a serialization
/// order of `S^d`), all relative to operation `p`.
pub fn view_sets_general(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    p: OpIndex,
) -> Vec<ItemSet> {
    let per = PerTxn::by_scan(schedule, d, order, p);
    fold_general(d, &per.ws_after)
}

/// Lemma 6's view sets for DR schedules.
pub fn view_sets_dr(schedule: &Schedule, d: &ItemSet, order: &[TxnId], p: OpIndex) -> Vec<ItemSet> {
    let per = PerTxn::by_scan(schedule, d, order, p);
    fold_dr(d, &per.ws_total, &per.finished)
}

/// Check Lemma 2's inclusion `RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S)`
/// for every transaction in `order`, at operation `p`.
pub fn lemma2_inclusion_holds(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    p: OpIndex,
) -> bool {
    let mut current = ItemSet::new();
    check_general(d, &PerTxn::by_scan(schedule, d, order, p), &mut current)
}

/// Check Lemma 6's inclusion for DR schedules at operation `p`.
pub fn lemma6_inclusion_holds(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    p: OpIndex,
) -> bool {
    let mut current = ItemSet::new();
    check_dr(d, &PerTxn::by_scan(schedule, d, order, p), &mut current)
}

impl ScheduleIndex<'_> {
    /// [`view_sets_general`] answered from the prefix tables:
    /// `O(|order|)` word operations and exactly one allocation (the
    /// returned vector) for small item universes — no schedule rescan.
    pub fn view_sets_general(&self, d: &ItemSet, order: &[TxnId], p: OpIndex) -> Vec<ItemSet> {
        let mut out = Vec::with_capacity(order.len());
        let mut current = d.clone();
        for (i, _) in order.iter().enumerate() {
            if i > 0 {
                if let Some((total, before)) = self.ws_total_and_before(order[i - 1], p) {
                    current.difference_with_masked_diff(total, before, d);
                }
            }
            out.push(current.clone());
        }
        out
    }

    /// [`view_sets_dr`] answered from the prefix tables.
    pub fn view_sets_dr(&self, d: &ItemSet, order: &[TxnId], p: OpIndex) -> Vec<ItemSet> {
        let mut out = Vec::with_capacity(order.len());
        let mut current = d.clone();
        for (i, _) in order.iter().enumerate() {
            if i > 0 {
                let prev = order[i - 1];
                let total = self.write_set_total(prev);
                if self.txn_finished_by(prev, p) {
                    current.union_with_masked(total, d);
                } else {
                    current.difference_with_masked(total, d);
                }
            }
            out.push(current.clone());
        }
        out
    }

    /// [`lemma2_inclusion_holds`] answered from the prefix tables —
    /// allocation-free for small item universes.
    pub fn lemma2_inclusion_holds(&self, d: &ItemSet, order: &[TxnId], p: OpIndex) -> bool {
        let mut current = d.clone();
        for (i, &t) in order.iter().enumerate() {
            if i > 0 {
                if let Some((total, before)) = self.ws_total_and_before(order[i - 1], p) {
                    current.difference_with_masked_diff(total, before, d);
                }
            }
            if !self.read_set_before(t, p).masked_subset(d, &current) {
                return false;
            }
        }
        true
    }

    /// [`lemma6_inclusion_holds`] answered from the prefix tables.
    pub fn lemma6_inclusion_holds(&self, d: &ItemSet, order: &[TxnId], p: OpIndex) -> bool {
        let mut current = d.clone();
        for (i, &t) in order.iter().enumerate() {
            if i > 0 {
                let prev = order[i - 1];
                let total = self.write_set_total(prev);
                if self.txn_finished_by(prev, p) {
                    current.union_with_masked(total, d);
                } else {
                    current.difference_with_masked(total, d);
                }
            }
            if !self.read_set_before(t, p).masked_subset(d, &current) {
                return false;
            }
        }
        true
    }
}

/// Check a lemma's inclusion at **every** operation of the schedule —
/// the full sweep the induction performs.
///
/// The per-transaction sets are maintained incrementally while `p`
/// advances: each operation moves exactly one item between a
/// before/after set, so the whole sweep costs `O(n·|order|)` word
/// operations rather than `O(n²·|order|)` rescans.
pub fn inclusion_holds_everywhere(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    dr: bool,
) -> bool {
    let n = order.len();
    let slot: HashMap<TxnId, usize> = order.iter().enumerate().map(|(k, &t)| (t, k)).collect();
    // Initial state "before position 0": nothing read yet, everything
    // still ahead.
    let mut per = PerTxn::with_len(n);
    let mut last_pos: Vec<Option<usize>> = vec![None; n];
    for (i, o) in schedule.ops().iter().enumerate() {
        if let Some(&k) = slot.get(&o.txn) {
            last_pos[k] = Some(i);
            // Transactions that never appear keep finished = true.
            per.finished[k] = false;
            if o.is_write() && d.contains(o.item) {
                per.ws_total[k].insert(o.item);
                per.ws_after[k].insert(o.item);
            }
        }
    }
    let mut current = ItemSet::new();
    for (i, o) in schedule.ops().iter().enumerate() {
        // Move the operation at position i into `before(·, p=i, S)`.
        if let Some(&k) = slot.get(&o.txn) {
            if d.contains(o.item) {
                if o.is_read() {
                    per.rs_before[k].insert(o.item);
                } else {
                    per.ws_after[k].remove(o.item);
                }
            }
            if last_pos[k] == Some(i) {
                per.finished[k] = true;
            }
        }
        let ok = if dr {
            check_dr(d, &per, &mut current)
        } else {
            check_general(d, &per, &mut current)
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ItemId;
    use crate::op::Operation;
    use crate::pwsr::is_pwsr;
    use crate::serializability::serialization_order;
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    /// Example 2's schedule, d1 = {a,b} (items 0,1), d2 = {c} (item 2).
    fn example2() -> Schedule {
        Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ])
        .unwrap()
    }

    #[test]
    fn lemma2_base_case_is_d() {
        let s = example2();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let vs = view_sets_general(&s, &d, &[TxnId(1), TxnId(2)], OpIndex(0));
        assert_eq!(vs[0], d);
    }

    #[test]
    fn lemma2_excludes_items_written_after_p() {
        // d = {a, b}; serialization order of S^{d1} is T1, T2.
        // At p = position 0 (w1(a,1)): T1 writes nothing in d after p
        // (w1(a) is at p itself, `after` is strict) … so VS(T2) = d.
        let s = example2();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let vs = view_sets_general(&s, &d, &[TxnId(1), TxnId(2)], OpIndex(0));
        assert_eq!(vs[1], d);

        // For a variant where T1's write of a comes *after* p, VS(T2)
        // must exclude a.
        let s2 = Schedule::new(vec![
            rd(1, 2, 1), // p here
            wr(1, 0, 1), // T1 writes a after p
            rd(2, 0, 1),
            rd(2, 1, -1),
        ])
        .unwrap();
        let vs = view_sets_general(&s2, &d, &[TxnId(1), TxnId(2)], OpIndex(0));
        assert_eq!(vs[0], d);
        assert!(!vs[1].contains(ItemId(0)));
        assert!(vs[1].contains(ItemId(1)));
    }

    #[test]
    fn lemma2_inclusion_on_example2_projections() {
        // Lemma 2 holds per conjunct on Example 2's schedule (the lemma
        // is unconditional given serializability of the projection).
        use crate::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
        let (a, b, c) = (ItemId(0), ItemId(1), ItemId(2));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap();
        let s = example2();
        let report = is_pwsr(&s, &ic);
        assert!(report.ok());
        for (conj, verdict) in ic.conjuncts().iter().zip(&report.per_conjunct) {
            let order = verdict.order.clone().unwrap();
            assert!(inclusion_holds_everywhere(&s, conj.items(), &order, false));
        }
    }

    #[test]
    fn lemma6_completed_predecessor_items_are_added_back() {
        // DR schedule: T1 finishes, then T2 reads T1's write.
        let s = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2)]).unwrap();
        assert!(crate::dr::is_delayed_read(&s));
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let order = serialization_order(&s).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2)]);
        // At p = position 1 (the read), T1 is finished: VS(T2) ⊇ {a}.
        let vs = view_sets_dr(&s, &d, &order, OpIndex(1));
        assert!(vs[1].contains(ItemId(0)));
        assert!(lemma6_inclusion_holds(&s, &d, &order, OpIndex(1)));
    }

    #[test]
    fn lemma6_incomplete_predecessor_items_are_removed() {
        // T1 writes a but is NOT finished at p: VS(T2) excludes a.
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 1, 0), // p = here; T1 still has an op coming
            wr(1, 1, 9),
        ])
        .unwrap();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let vs = view_sets_dr(&s, &d, &[TxnId(1), TxnId(2)], OpIndex(1));
        assert!(!vs[1].contains(ItemId(0)));
    }

    #[test]
    fn dr_viewset_at_least_general_after_completion() {
        // Once every earlier transaction has finished, Lemma 6's set is
        // a superset of Lemma 2's (writes get added back).
        let s = Schedule::new(vec![wr(1, 0, 1), rd(1, 1, 0), rd(2, 0, 1), wr(2, 1, 2)]).unwrap();
        assert!(crate::dr::is_delayed_read(&s));
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let order = vec![TxnId(1), TxnId(2)];
        let p = OpIndex(3);
        let gen = view_sets_general(&s, &d, &order, p);
        let drv = view_sets_dr(&s, &d, &order, p);
        for (g, v) in gen.iter().zip(&drv) {
            assert!(g.is_subset(v), "general {g:?} ⊄ dr {v:?}");
        }
    }

    #[test]
    fn inclusion_sweep_on_serial_schedule() {
        let s = Schedule::new(vec![wr(1, 0, 1), wr(2, 0, 2), rd(3, 0, 2)]).unwrap();
        let d = ItemSet::from_iter([ItemId(0)]);
        let order = serialization_order(&s).unwrap();
        assert!(inclusion_holds_everywhere(&s, &d, &order, false));
        assert!(inclusion_holds_everywhere(&s, &d, &order, true));
    }

    #[test]
    fn indexed_lemmas_match_scan_implementations() {
        let s = example2();
        let ix = ScheduleIndex::new(&s);
        let orders = [
            vec![TxnId(1), TxnId(2)],
            vec![TxnId(2), TxnId(1)],
            vec![TxnId(2)],
        ];
        for d in [
            ItemSet::from_iter([ItemId(0), ItemId(1)]),
            ItemSet::from_iter([ItemId(2)]),
            ItemSet::from_iter([ItemId(0), ItemId(1), ItemId(2)]),
        ] {
            for order in &orders {
                for p in s.positions() {
                    assert_eq!(
                        ix.view_sets_general(&d, order, p),
                        view_sets_general(&s, &d, order, p)
                    );
                    assert_eq!(
                        ix.view_sets_dr(&d, order, p),
                        view_sets_dr(&s, &d, order, p)
                    );
                    assert_eq!(
                        ix.lemma2_inclusion_holds(&d, order, p),
                        lemma2_inclusion_holds(&s, &d, order, p)
                    );
                    assert_eq!(
                        ix.lemma6_inclusion_holds(&d, order, p),
                        lemma6_inclusion_holds(&s, &d, order, p)
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_sweep_matches_per_p_checks() {
        let s = example2();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        for order in [vec![TxnId(1), TxnId(2)], vec![TxnId(2), TxnId(1)]] {
            for dr in [false, true] {
                let per_p = s.positions().all(|p| {
                    if dr {
                        lemma6_inclusion_holds(&s, &d, &order, p)
                    } else {
                        lemma2_inclusion_holds(&s, &d, &order, p)
                    }
                });
                assert_eq!(inclusion_holds_everywhere(&s, &d, &order, dr), per_p);
            }
        }
    }
}
