//! Prefix-parity property tests for the online verdict monitor.
//!
//! The contract under test: pushing a schedule's operations one at a
//! time through [`OnlineMonitor`] must yield, at **every** prefix,
//! exactly the verdicts obtained by building a fresh [`Schedule`] +
//! [`ScheduleIndex`] and running the batch checkers — serializability,
//! per-scope PWSR, delayed-read, and the Lemma 2/6 inclusion sweeps
//! (the expensive recomputation is the oracle; the monitor's
//! incremental flags are the implementation under test).

use proptest::prelude::*;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::index::ScheduleIndex;
use pwsr_core::monitor::{AdmissionLevel, OnlineIndex, OnlineMonitor};
use pwsr_core::op::Operation;
use pwsr_core::schedule::Schedule;
use pwsr_core::serializability::{
    is_conflict_serializable, is_conflict_serializable_proj, precedence_graph_proj,
};
use pwsr_core::state::ItemSet;
use pwsr_core::txn::Transaction;
use pwsr_core::value::Value;
use pwsr_core::viewset::inclusion_holds_everywhere;

const MAX_ITEMS: u32 = 6;

/// Random well-formed transactions over items `0..MAX_ITEMS`.
fn arb_transactions(n_txns: u32) -> impl Strategy<Value = Vec<Transaction>> {
    let per_txn = proptest::collection::btree_map(
        0..MAX_ITEMS,
        (any::<bool>(), any::<bool>(), -20i64..20),
        1..=MAX_ITEMS as usize,
    );
    proptest::collection::vec(per_txn, n_txns as usize).prop_map(move |txn_specs| {
        txn_specs
            .into_iter()
            .enumerate()
            .map(|(k, spec)| {
                let txn = TxnId(k as u32 + 1);
                let mut ops = Vec::new();
                for (item, (do_read, do_write, v)) in spec {
                    if do_read {
                        ops.push(Operation::read(txn, ItemId(item), Value::Int(v)));
                    }
                    if do_write || !do_read {
                        ops.push(Operation::write(txn, ItemId(item), Value::Int(v + 1)));
                    }
                }
                Transaction::new(txn, ops).expect("respects §2.2")
            })
            .collect()
    })
}

/// Interleave complete transactions by a byte stream of picks.
fn interleave_random(txns: &[Transaction], mix: &[u8]) -> Vec<Operation> {
    let mut cursors: Vec<usize> = vec![0; txns.len()];
    let mut ops = Vec::new();
    let total: usize = txns.iter().map(Transaction::len).sum();
    let mut mi = 0;
    while ops.len() < total {
        let pick = (mix.get(mi).copied().unwrap_or(0) as usize) % txns.len();
        mi += 1;
        for off in 0..txns.len() {
            let k = (pick + off) % txns.len();
            if cursors[k] < txns[k].len() {
                ops.push(txns[k].ops()[cursors[k]].clone());
                cursors[k] += 1;
                break;
            }
        }
    }
    ops
}

/// Two scopes carved out of the item universe by a bitmask (items
/// whose bit is unset fall outside every scope).
fn scopes_from_bits(d1_bits: u32, d2_bits: u32) -> Vec<ItemSet> {
    let d1: ItemSet = (0..MAX_ITEMS)
        .filter(|i| d1_bits & (1 << i) != 0)
        .map(ItemId)
        .collect();
    let d2: ItemSet = (0..MAX_ITEMS)
        .filter(|i| d2_bits & (1 << i) != 0 && d1_bits & (1 << i) == 0)
        .map(ItemId)
        .collect();
    vec![d1, d2]
}

proptest! {
    /// The monitor's verdict equals batch recomputation at EVERY prefix:
    /// serializability, per-scope serializability (PWSR), delayed-read,
    /// and the Lemma 2/6 inclusion sweeps under the monitor's own
    /// maintained serialization orders.
    #[test]
    fn verdicts_match_batch_at_every_prefix(
        txns in arb_transactions(3),
        mix in proptest::collection::vec(any::<u8>(), 0..64),
        d1_bits in 0u32..64,
        d2_bits in 0u32..64,
    ) {
        let ops = interleave_random(&txns, &mix);
        let scopes = scopes_from_bits(d1_bits, d2_bits);
        let mut monitor = OnlineMonitor::new(scopes.clone());
        for k in 0..ops.len() {
            let v = monitor.push(ops[k].clone()).expect("valid interleaving");
            let prefix = Schedule::new(ops[..=k].to_vec()).expect("valid prefix");
            prop_assert_eq!(v.len, prefix.len());
            prop_assert_eq!(v.serializable, is_conflict_serializable(&prefix));
            prop_assert_eq!(v.dr, is_delayed_read(&prefix));
            for (e, d) in scopes.iter().enumerate() {
                let batch_ok = is_conflict_serializable_proj(&prefix, d);
                prop_assert_eq!(
                    monitor.conjunct_order(e).is_some(),
                    batch_ok,
                    "scope {} serializability diverged at prefix {}",
                    e, k
                );
                if let Some(order) = monitor.conjunct_order(e) {
                    // The maintained order must respect every conflict
                    // edge of the projection…
                    let (g, proj_txns) = precedence_graph_proj(&prefix, d);
                    let pos = |t: TxnId| order.iter().position(|&x| x == t).unwrap();
                    for (u, w) in g.edges() {
                        prop_assert!(
                            pos(proj_txns[u]) < pos(proj_txns[w]),
                            "order violates conflict edge at prefix {}", k
                        );
                    }
                    // …and the incremental Lemma 2/6 certificates must
                    // equal the full batch sweeps under that order.
                    prop_assert_eq!(
                        inclusion_holds_everywhere(&prefix, d, &order, false),
                        monitor.lemma2_holds(e),
                        "Lemma 2 certificate diverged at prefix {}", k
                    );
                    prop_assert_eq!(
                        inclusion_holds_everywhere(&prefix, d, &order, true),
                        monitor.lemma6_holds(e),
                        "Lemma 6 certificate diverged at prefix {}", k
                    );
                }
            }
            prop_assert_eq!(
                v.pwsr(),
                scopes.iter().all(|d| is_conflict_serializable_proj(&prefix, d))
            );
            prop_assert!(monitor.certify_prefix());
        }
    }

    /// The online index's tables equal a fresh batch index at every
    /// prefix, for every (transaction, position) query.
    #[test]
    fn online_index_matches_fresh_batch_index(
        txns in arb_transactions(3),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let ops = interleave_random(&txns, &mix);
        let mut online = OnlineIndex::new();
        for k in 0..ops.len() {
            online.push(ops[k].clone()).expect("valid interleaving");
            let prefix = Schedule::new(ops[..=k].to_vec()).expect("valid prefix");
            let batch = ScheduleIndex::new(&prefix);
            let live = online.index();
            prop_assert_eq!(online.schedule(), &prefix);
            for &t in prefix.txn_ids() {
                prop_assert_eq!(live.positions_of(t), batch.positions_of(t));
                prop_assert_eq!(live.read_set_total(t), batch.read_set_total(t));
                prop_assert_eq!(live.write_set_total(t), batch.write_set_total(t));
                for p in prefix.positions() {
                    prop_assert_eq!(live.read_set_before(t, p), batch.read_set_before(t, p));
                    prop_assert_eq!(live.write_set_before(t, p), batch.write_set_before(t, p));
                    prop_assert_eq!(live.txn_finished_by(t, p), batch.txn_finished_by(t, p));
                }
            }
            for p in prefix.positions() {
                prop_assert_eq!(live.reads_from(p), batch.reads_from(p));
                prop_assert_eq!(live.reads_from(p), prefix.reads_from(p));
            }
        }
    }

    /// The undo-log is exact: logged pushes truncated to any cut equal
    /// a fresh replay of the shortened prefix — verdict, schedule,
    /// certificates — and re-pushing the tail converges to the same
    /// final state as never having truncated.
    #[test]
    fn undo_log_truncation_equals_fresh_replay(
        txns in arb_transactions(3),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        d1_bits in 0u32..64,
        d2_bits in 0u32..64,
        cut_pick in any::<u16>(),
    ) {
        let ops = interleave_random(&txns, &mix);
        let scopes = scopes_from_bits(d1_bits, d2_bits);
        let mut logged = OnlineMonitor::new(scopes.clone());
        for op in &ops {
            logged.push_logged(op.clone()).expect("valid interleaving");
        }
        let full_verdict = logged.verdict();
        let cut = (cut_pick as usize) % (ops.len() + 1);
        prop_assert_eq!(logged.truncate_to(cut), ops.len() - cut);
        let mut fresh = OnlineMonitor::new(scopes);
        for op in &ops[..cut] {
            fresh.push(op.clone()).expect("valid prefix");
        }
        prop_assert_eq!(logged.verdict(), fresh.verdict(), "cut {}", cut);
        prop_assert_eq!(logged.schedule(), fresh.schedule());
        for k in 0..2 {
            prop_assert_eq!(logged.lemma2_holds(k), fresh.lemma2_holds(k));
            prop_assert_eq!(logged.lemma6_holds(k), fresh.lemma6_holds(k));
        }
        prop_assert!(logged.certify_prefix());
        // Re-push the undone tail: everything converges again.
        for op in &ops[cut..] {
            logged.push_logged(op.clone()).expect("valid tail");
        }
        prop_assert_eq!(logged.verdict(), full_verdict);
        prop_assert!(logged.certify_prefix());
    }

    /// **Twin harness**: every workload runs through a compacting
    /// monitor and an uncompacted twin, compacting after a random
    /// stride of completed transactions. At every push the verdict
    /// (including Lemma 2/6 certificates) and every admission probe
    /// must stay byte-identical, and summarized transactions must
    /// reject further pushes.
    #[test]
    fn compaction_twin_parity_at_every_push(
        txns in arb_transactions(4),
        mix in proptest::collection::vec(any::<u8>(), 0..64),
        d1_bits in 0u32..64,
        d2_bits in 0u32..64,
        stride in 1usize..4,
        logged in any::<bool>(),
    ) {
        let ops = interleave_random(&txns, &mix);
        let scopes = scopes_from_bits(d1_bits, d2_bits);
        let mut compacting = OnlineMonitor::new(scopes.clone());
        let mut twin = OnlineMonitor::new(scopes.clone());
        let mut remaining: std::collections::HashMap<TxnId, usize> =
            txns.iter().map(|t| (t.id(), t.len())).collect();
        let mut completed = 0usize;
        for op in &ops {
            let (a, b) = if logged {
                (
                    compacting.push_logged(op.clone()).expect("valid interleaving"),
                    twin.push_logged(op.clone()).expect("valid interleaving"),
                )
            } else {
                (
                    compacting.push(op.clone()).expect("valid interleaving"),
                    twin.push(op.clone()).expect("valid interleaving"),
                )
            };
            prop_assert_eq!(a, b, "verdict diverged");
            let left = remaining.get_mut(&op.txn).unwrap();
            *left -= 1;
            if *left == 0 {
                compacting.finish_txn(op.txn);
                completed += 1;
                if completed.is_multiple_of(stride) {
                    if logged {
                        // A logged monitor's frontier is clamped to the
                        // undo floor; raise it over the settled prefix
                        // first (nothing live may abort in this run).
                        let floor = compacting.len();
                        compacting.checkpoint(floor);
                        twin.checkpoint(floor);
                    }
                    compacting.compact();
                }
            }
            // Probes agree after every push/compaction — except that a
            // summarized transaction is flatly refused (its push would
            // be rejected no matter what the graphs say).
            for level in [AdmissionLevel::Serializable, AdmissionLevel::Pwsr, AdmissionLevel::PwsrDr] {
                let probe = compacting.admits(op.txn, op.item, op.is_write(), level);
                if compacting.is_summarized(op.txn) {
                    prop_assert!(!probe, "summarized transactions are never admitted");
                } else {
                    prop_assert_eq!(probe, twin.admits(op.txn, op.item, op.is_write(), level));
                }
            }
        }
        compacting.compact();
        prop_assert_eq!(compacting.verdict(), twin.verdict());
        for k in 0..scopes.len() {
            prop_assert_eq!(compacting.lemma2_holds(k), twin.lemma2_holds(k));
            prop_assert_eq!(compacting.lemma6_holds(k), twin.lemma6_holds(k));
        }
        prop_assert!(
            compacting.resident_bytes_estimate() <= twin.resident_bytes_estimate()
                || compacting.compactions() == 0
        );
        for t in &txns {
            if compacting.is_summarized(t.id()) {
                prop_assert!(compacting
                    .push(Operation::write(t.id(), ItemId(MAX_ITEMS), Value::Int(0)))
                    .is_err());
            }
        }
    }

    /// Admission is exact: an operation is rejected at level Pwsr iff
    /// actually pushing it would break some scope's serializability —
    /// checked by replaying the accepted prefix plus the candidate
    /// through the batch checkers.
    #[test]
    fn pwsr_admission_is_exact(
        txns in arb_transactions(3),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        d1_bits in 0u32..64,
        d2_bits in 0u32..64,
    ) {
        let ops = interleave_random(&txns, &mix);
        let scopes = scopes_from_bits(d1_bits, d2_bits);
        let mut monitor = OnlineMonitor::new(scopes.clone());
        let mut accepted: Vec<Operation> = Vec::new();
        for op in ops {
            let admitted = monitor.admits(op.txn, op.item, op.is_write(), AdmissionLevel::Pwsr);
            // Ground truth: would the extended schedule stay PWSR?
            let mut candidate = accepted.clone();
            candidate.push(op.clone());
            // The candidate may be transactionally malformed relative
            // to dropped (rejected) operations — skip those.
            let Ok(extended) = Schedule::new(candidate) else { continue };
            let stays_pwsr = scopes
                .iter()
                .all(|d| is_conflict_serializable_proj(&extended, d));
            prop_assert_eq!(admitted, stays_pwsr, "admission diverged from ground truth");
            if admitted {
                monitor.push(op.clone()).expect("admitted ops are valid");
                accepted.push(op);
            }
        }
        // Invariant: the committed stream is PWSR at the end.
        let committed = Schedule::new(accepted).expect("accepted stream is valid");
        for d in &scopes {
            prop_assert!(is_conflict_serializable_proj(&committed, d));
        }
    }
}
