//! FIG-1 … FIG-7: randomized validation of every lemma.
//!
//! Each experiment samples random instances, checks the lemma's
//! implication on all of them, and reports `violations / checks`. The
//! expected shape (recorded in `EXPERIMENTS.md`): **zero violations**
//! on every arm that satisfies the lemma's hypotheses, and nonzero
//! counterexample counts on the control arms that drop a hypothesis
//! (e.g. Lemma 3 without fixed structure — Example 3's phenomenon).

use crate::report::Table;
use pwsr_core::ids::TxnId;
use pwsr_core::index::ScheduleIndex;
use pwsr_core::op;
use pwsr_core::solver::Solver;
use pwsr_core::state::DbState;
use pwsr_core::txstate::transaction_states;
use pwsr_core::viewset::{view_sets_dr, view_sets_general};
use pwsr_gen::chaos::random_execution;
use pwsr_gen::constraints::{random_ic, IcConfig};
use pwsr_gen::templates::{correct_chain_program, TemplateKind};
use pwsr_gen::workloads::{random_workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one lemma validation.
#[derive(Clone, Debug)]
pub struct LemmaOutcome {
    /// Implication instances checked (hypothesis held).
    pub checks: u64,
    /// Instances where the conclusion failed.
    pub violations: u64,
}

impl LemmaOutcome {
    /// Did every checked instance satisfy the conclusion?
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// FIG-1 / Lemma 1: `⋃ DS^{d'_e}` consistent ⟺ every `DS^{d'_e}`
/// consistent (disjoint conjuncts). Random chain constraints, random
/// (partly consistent, partly corrupted) assignments.
pub fn lemma1(trials: u64, seed: u64) -> (LemmaOutcome, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    for _ in 0..trials {
        let conjuncts = rng.random_range(1..=4);
        let items_per_conjunct = rng.random_range(1..=3);
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts,
                items_per_conjunct,
                domain_width: 20,
            },
        );
        let solver = Solver::new(&g.catalog, &g.ic);
        // Random restriction: keep each item with probability 1/2;
        // corrupt kept values with probability 1/4.
        let mut restricted = DbState::new();
        for (item, v) in g.initial.iter() {
            if rng.random_bool(0.5) {
                let v = if rng.random_bool(0.25) {
                    pwsr_core::value::Value::Int(rng.random_range(-20..=20))
                } else {
                    v.clone()
                };
                restricted.set(item, v);
            }
        }
        // Per-conjunct restrictions.
        let mut parts_consistent = true;
        for c in g.ic.conjuncts() {
            let part = restricted.restrict(c.items());
            if !solver.is_consistent(&part) {
                parts_consistent = false;
            }
        }
        let union_consistent = solver.is_consistent(&restricted);
        out.checks += 1;
        if parts_consistent != union_consistent {
            out.violations += 1;
        }
    }
    let mut t = Table::new(
        "FIG-1  Lemma 1: per-conjunct ⟺ union consistency (disjoint scopes)",
        &["trials", "violations", "clean"],
    );
    t.row(&[
        out.checks.to_string(),
        out.violations.to_string(),
        out.clean().to_string(),
    ]);
    (out.clone(), t.render())
}

/// FIG-2 / Lemma 2 and FIG-6 / Lemma 6: the view-set inclusions
/// `RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S)` at **every** operation
/// of random executions; the Lemma 6 arm additionally filters to DR
/// schedules and checks its (larger) view sets.
pub fn viewset_lemmas(trials: u64, seed: u64) -> (LemmaOutcome, LemmaOutcome, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen_out = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    let mut dr_out = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    let mut dr_schedules = 0u64;
    for _ in 0..trials {
        let w = random_workload(
            &mut rng,
            &WorkloadConfig {
                conjuncts: 2,
                items_per_conjunct: 2,
                n_background: 4,
                cross_read_prob: 0.6,
                fixed_only: false,
                gadgets: 0,
                domain_width: 50,
            },
        );
        let Ok(s) = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng) else {
            continue;
        };
        let is_dr = pwsr_core::dr::is_delayed_read(&s);
        dr_schedules += u64::from(is_dr);
        // One index per schedule; every (conjunct, p) query below is
        // then O(|order|) set operations instead of a schedule rescan.
        let ix = ScheduleIndex::new(&s);
        for c in w.ic.conjuncts() {
            let Some(order) = pwsr_core::serializability::serialization_order_proj(&s, c.items())
            else {
                continue;
            };
            for p in s.positions() {
                gen_out.checks += 1;
                if !ix.lemma2_inclusion_holds(c.items(), &order, p) {
                    gen_out.violations += 1;
                }
                if is_dr {
                    dr_out.checks += 1;
                    if !ix.lemma6_inclusion_holds(c.items(), &order, p) {
                        dr_out.violations += 1;
                    }
                }
            }
        }
    }
    let mut t = Table::new(
        "FIG-2/FIG-6  Lemmas 2 & 6: view-set inclusions at every prefix",
        &["lemma", "inclusion checks", "violations", "clean"],
    );
    t.row(&[
        "Lemma 2 (general)".into(),
        gen_out.checks.to_string(),
        gen_out.violations.to_string(),
        gen_out.clean().to_string(),
    ]);
    t.row(&[
        format!("Lemma 6 (DR; {dr_schedules} DR schedules)"),
        dr_out.checks.to_string(),
        dr_out.violations.to_string(),
        dr_out.clean().to_string(),
    ]);
    (gen_out, dr_out, t.render())
}

/// FIG-4 / Lemma 3: for a **fixed-structure** program run alone from an
/// arbitrary state, `DS1^d ∪ read(before(T,p,S))` consistent ⇒
/// `DS2^{d−WS(after(T,p,S))}` consistent, at every cut point `p` and
/// every conjunct `d`. The control arm runs the *unbalanced* template
/// and counts how often the implication breaks (Example 3's failure
/// mode).
pub fn lemma3(trials: u64, seed: u64) -> (LemmaOutcome, LemmaOutcome, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fixed_out = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    let mut ctrl_out = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    // Fixed arm: balanced templates over random chains, from arbitrary
    // (possibly inconsistent) start states.
    for _ in 0..trials {
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts: 2,
                items_per_conjunct: 2,
                domain_width: 20,
            },
        );
        let solver = Solver::new(&g.catalog, &g.ic);
        let cross = Some(g.shapes[1].items()[0]);
        let prog = correct_chain_program(
            &mut rng,
            &g.catalog,
            &g.shapes[0],
            TemplateKind::CondGrowBalanced,
            cross,
            "T",
        );
        let mut ds1 = DbState::new();
        for item in g.catalog.items() {
            ds1.set(
                item,
                pwsr_core::value::Value::Int(rng.random_range(-10..=10)),
            );
        }
        lemma3_check(&g.catalog, &g.ic, &solver, &prog, &ds1, &mut fixed_out);
    }
    // Control arm: the gadget's non-fixed "repairing" program G1
    // (`p := 1; if (r > 0) then q := abs(q)+1;`) — Example 3's shape —
    // from random states. When r <= 0 the repair write never happens
    // and the implication breaks mid-execution.
    for _ in 0..trials {
        let mut catalog = pwsr_core::catalog::Catalog::new();
        let mut template_initial = DbState::new();
        let gadget = pwsr_gen::gadgets::example2_gadget(&mut catalog, &mut template_initial, "", 0);
        let ic = pwsr_core::constraint::IntegrityConstraint::new(gadget.conjuncts.clone())
            .expect("gadget conjuncts disjoint");
        let solver = Solver::new(&catalog, &ic);
        let mut ds1 = DbState::new();
        for item in catalog.items() {
            ds1.set(item, pwsr_core::value::Value::Int(rng.random_range(-5..=5)));
        }
        lemma3_check(&catalog, &ic, &solver, &gadget.g1, &ds1, &mut ctrl_out);
    }
    let mut t = Table::new(
        "FIG-4  Lemma 3: mid-execution consistency of fixed-structure programs",
        &["arm", "implication checks", "violations", "clean"],
    );
    t.row(&[
        "fixed-structure (lemma)".into(),
        fixed_out.checks.to_string(),
        fixed_out.violations.to_string(),
        fixed_out.clean().to_string(),
    ]);
    t.row(&[
        "unbalanced (control)".into(),
        ctrl_out.checks.to_string(),
        ctrl_out.violations.to_string(),
        "n/a (expected dirty)".into(),
    ]);
    (fixed_out, ctrl_out, t.render())
}

/// Shared Lemma 3 implication check: run `prog` alone from `ds1`, and
/// at every cut point and conjunct test premise => conclusion.
fn lemma3_check(
    catalog: &pwsr_core::catalog::Catalog,
    ic: &pwsr_core::constraint::IntegrityConstraint,
    solver: &Solver<'_>,
    prog: &pwsr_tplang::ast::Program,
    ds1: &DbState,
    out: &mut LemmaOutcome,
) {
    let Ok(txn) = pwsr_tplang::interp::execute(prog, catalog, TxnId(1), ds1) else {
        return;
    };
    let s = pwsr_core::schedule::Schedule::new(txn.ops().to_vec()).expect("single txn is valid");
    let ds2 = s.apply(ds1);
    for p in s.positions() {
        for c in ic.conjuncts() {
            let d = c.items();
            let before = s.before_txn(TxnId(1), p);
            let Ok(joint) = ds1.restrict(d).union(&op::read_state(&before)) else {
                continue;
            };
            if !solver.is_consistent(&joint) {
                continue; // hypothesis fails: nothing to check
            }
            let after_ws = op::write_set(&s.after_txn(TxnId(1), p));
            let target = d.difference(&after_ws);
            out.checks += 1;
            if !solver.is_consistent(&ds2.restrict(&target)) {
                out.violations += 1;
            }
        }
    }
}

/// FIG-5 / Lemmas 4 & 8: the induction step. On random executions, for
/// every conjunct `d_k`, serialization order `T_1…T_n` of `S^{d_k}` and
/// operation `p`: if every `read(before(T_j, p, S))`, `j < i`, is
/// consistent, then `state(T_i)^{VS(T_i, p, d_k)}` is consistent. The
/// Lemma 4 arm uses fixed-structure workloads (general view sets); the
/// Lemma 8 arm uses arbitrary programs but filters to DR schedules
/// (DR view sets).
pub fn lemma4_and_8(trials: u64, seed: u64) -> (LemmaOutcome, LemmaOutcome, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut l4 = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    let mut l8 = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    for arm in [4u8, 8u8] {
        for _ in 0..trials {
            let w = random_workload(
                &mut rng,
                &WorkloadConfig {
                    conjuncts: 2,
                    items_per_conjunct: 2,
                    n_background: 3,
                    cross_read_prob: 0.6,
                    fixed_only: arm == 4,
                    gadgets: 0,
                    domain_width: 50,
                },
            );
            let Ok(s) = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng) else {
                continue;
            };
            if arm == 4 && !w.all_fixed_structure {
                continue;
            }
            if arm == 8 && !pwsr_core::dr::is_delayed_read(&s) {
                continue;
            }
            let solver = Solver::new(&w.catalog, &w.ic);
            for c in w.ic.conjuncts() {
                let proj = s.project(c.items());
                let Some(order) = pwsr_core::serializability::serialization_order(&proj) else {
                    continue;
                };
                let states = transaction_states(&s, c.items(), &order, &w.initial);
                for p in s.positions() {
                    let vs = if arm == 4 {
                        view_sets_general(&s, c.items(), &order, p)
                    } else {
                        view_sets_dr(&s, c.items(), &order, p)
                    };
                    for i in 0..order.len() {
                        // Hypothesis: all predecessors read consistent data
                        // before p.
                        let hyp = order[..i].iter().all(|&tj| {
                            let reads = op::read_state(&s.before_txn(tj, p));
                            solver.is_consistent(&reads)
                        });
                        if !hyp {
                            continue;
                        }
                        let out = if arm == 4 { &mut l4 } else { &mut l8 };
                        out.checks += 1;
                        if !solver.is_consistent(&states[i].restrict(&vs[i])) {
                            out.violations += 1;
                        }
                    }
                }
            }
        }
    }
    let mut t = Table::new(
        "FIG-5  Lemmas 4 & 8: induction step (state restricted to view set)",
        &["lemma", "induction checks", "violations", "clean"],
    );
    t.row(&[
        "Lemma 4 (fixed-structure)".into(),
        l4.checks.to_string(),
        l4.violations.to_string(),
        l4.clean().to_string(),
    ]);
    t.row(&[
        "Lemma 8 (DR)".into(),
        l8.checks.to_string(),
        l8.violations.to_string(),
        l8.clean().to_string(),
    ]);
    (l4, l8, t.render())
}

/// FIG-7 / Lemma 7: whole-transaction consistency preservation. For a
/// correct program from an arbitrary state: `DS1^d ∪ read(T)`
/// consistent ⇒ `DS2^{d ∪ WS(T)}` consistent.
pub fn lemma7(trials: u64, seed: u64) -> (LemmaOutcome, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = LemmaOutcome {
        checks: 0,
        violations: 0,
    };
    for _ in 0..trials {
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts: 2,
                items_per_conjunct: 2,
                domain_width: 20,
            },
        );
        let solver = Solver::new(&g.catalog, &g.ic);
        let kind = TemplateKind::ALL[rng.random_range(0..TemplateKind::ALL.len())];
        let cross = Some(g.shapes[1].items()[0]);
        let prog = correct_chain_program(&mut rng, &g.catalog, &g.shapes[0], kind, cross, "T");
        let mut ds1 = DbState::new();
        for item in g.catalog.items() {
            ds1.set(
                item,
                pwsr_core::value::Value::Int(rng.random_range(-10..=10)),
            );
        }
        let Ok(txn) = pwsr_tplang::interp::execute(&prog, &g.catalog, TxnId(1), &ds1) else {
            continue;
        };
        let ds2 = ds1.updated_with(&txn.write_state());
        for c in g.ic.conjuncts() {
            let d = c.items();
            let Ok(joint) = ds1.restrict(d).union(&txn.read_state()) else {
                continue;
            };
            if !solver.is_consistent(&joint) {
                continue;
            }
            let target = d.union(&txn.write_set());
            out.checks += 1;
            if !solver.is_consistent(&ds2.restrict(&target)) {
                out.violations += 1;
            }
        }
    }
    let mut t = Table::new(
        "FIG-7  Lemma 7: whole-transaction consistency preservation",
        &["implication checks", "violations", "clean"],
    );
    t.row(&[
        out.checks.to_string(),
        out.violations.to_string(),
        out.clean().to_string(),
    ]);
    (out.clone(), t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_clean() {
        let (out, text) = lemma1(300, 11);
        assert!(out.checks >= 300);
        assert!(out.clean(), "{text}");
    }

    #[test]
    fn viewset_lemmas_clean() {
        let (l2, l6, text) = viewset_lemmas(40, 12);
        assert!(l2.checks > 0 && l2.clean(), "{text}");
        assert!(l6.checks > 0 && l6.clean(), "{text}");
    }

    #[test]
    fn lemma3_fixed_arm_clean() {
        let (fixed, _ctrl, text) = lemma3(60, 13);
        assert!(fixed.checks > 0, "{text}");
        assert!(fixed.clean(), "{text}");
    }

    #[test]
    fn lemma4_and_8_clean() {
        let (l4, l8, text) = lemma4_and_8(25, 14);
        assert!(l4.checks > 0 && l4.clean(), "{text}");
        assert!(l8.checks > 0 && l8.clean(), "{text}");
    }

    #[test]
    fn lemma7_clean() {
        let (out, text) = lemma7(150, 15);
        assert!(out.checks > 0 && out.clean(), "{text}");
    }
}
