//! Unconstrained executions: every interleaving is possible.
//!
//! The "chaos scheduler" applies no concurrency control at all: at each
//! step an arbitrary live program performs its next operation against
//! the evolving database. Seeded sampling ([`random_execution`])
//! provides the randomized populations for the theorem experiments;
//! exhaustive enumeration ([`enumerate_executions`]) provides exact
//! interleaving counts for the small instances of the PERF-2
//! (admissibility head-room) experiment. [`execute_with_picks`] replays
//! one specific interleaving — e.g. the paper's Example 2 sequence.

use pwsr_core::catalog::Catalog;
use pwsr_core::ids::TxnId;
use pwsr_core::op::Operation;
use pwsr_core::schedule::Schedule;
use pwsr_core::state::DbState;
use pwsr_tplang::ast::Program;
use pwsr_tplang::error::{Result, TpError};
use pwsr_tplang::session::{Pending, ProgramSession};
use rand::Rng;

/// Step one session against the database, appending the produced
/// operation. Returns false if the session was already done.
fn step_session(
    session: &mut ProgramSession<'_>,
    db: &mut DbState,
    trace: &mut Vec<Operation>,
) -> Result<bool> {
    match session.pending()? {
        Pending::NeedRead(item) => {
            let v = db.require(item)?.clone();
            let op = session.feed_read(v)?;
            trace.push(op);
            Ok(true)
        }
        Pending::Write(op) => {
            db.set(op.item, op.value.clone());
            session.advance_write()?;
            trace.push(op);
            Ok(true)
        }
        Pending::Done => Ok(false),
    }
}

/// Execute the programs under a uniformly random interleaving (program
/// `k` runs as transaction `k+1`).
pub fn random_execution<R: Rng>(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    rng: &mut R,
) -> Result<Schedule> {
    let mut sessions: Vec<ProgramSession<'_>> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| ProgramSession::new(p, catalog, TxnId(k as u32 + 1)))
        .collect();
    let mut live: Vec<usize> = (0..sessions.len()).collect();
    // Drop sessions that are done before emitting anything.
    let mut i = 0;
    while i < live.len() {
        if sessions[live[i]].is_done()? {
            live.swap_remove(i);
        } else {
            i += 1;
        }
    }
    let mut db = initial.clone();
    let mut trace = Vec::new();
    while !live.is_empty() {
        let li = rng.random_range(0..live.len());
        let idx = live[li];
        step_session(&mut sessions[idx], &mut db, &mut trace)?;
        if sessions[idx].is_done()? {
            live.swap_remove(li);
        }
    }
    Ok(Schedule::new(trace)?)
}

/// Execute one specific interleaving given as a pick sequence (each
/// entry: which transaction performs its next operation). Errors if a
/// picked transaction is already done or picks remain unconsumed.
pub fn execute_with_picks(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    picks: &[TxnId],
) -> Result<Schedule> {
    let mut sessions: Vec<ProgramSession<'_>> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| ProgramSession::new(p, catalog, TxnId(k as u32 + 1)))
        .collect();
    let mut db = initial.clone();
    let mut trace = Vec::new();
    for &pick in picks {
        let idx = sessions
            .iter()
            .position(|s| s.txn() == pick)
            .ok_or_else(|| TpError::Parse {
                at: 0,
                msg: format!("pick of unknown transaction {pick}"),
            })?;
        if !step_session(&mut sessions[idx], &mut db, &mut trace)? {
            return Err(TpError::Parse {
                at: 0,
                msg: format!("transaction {pick} picked after completion"),
            });
        }
    }
    for s in &sessions {
        if !s.is_done()? {
            return Err(TpError::Parse {
                at: 0,
                msg: format!("transaction {} has unconsumed operations", s.txn()),
            });
        }
    }
    Ok(Schedule::new(trace)?)
}

/// Enumerate **every** interleaving of the programs (up to `cap`
/// schedules). The number of interleavings is the multinomial
/// coefficient of the op counts, so keep instances tiny. Returns `None`
/// if the cap is hit.
pub fn enumerate_executions(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    cap: usize,
) -> Result<Option<Vec<Schedule>>> {
    let mut out = Vec::new();
    let sessions: Vec<ProgramSession<'_>> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| ProgramSession::new(p, catalog, TxnId(k as u32 + 1)))
        .collect();
    let db = initial.clone();
    let complete = enumerate_rec(&sessions, &db, &mut Vec::new(), &mut out, cap)?;
    if complete {
        Ok(Some(out))
    } else {
        Ok(None)
    }
}

fn enumerate_rec(
    sessions: &[ProgramSession<'_>],
    db: &DbState,
    trace: &mut Vec<Operation>,
    out: &mut Vec<Schedule>,
    cap: usize,
) -> Result<bool> {
    let mut any_live = false;
    for idx in 0..sessions.len() {
        if sessions[idx].is_done()? {
            continue;
        }
        any_live = true;
        // Branch: session idx takes the next step.
        let mut sessions2: Vec<ProgramSession<'_>> = sessions.to_vec();
        let mut db2 = db.clone();
        step_session(&mut sessions2[idx], &mut db2, trace)?;
        let complete = enumerate_rec(&sessions2, &db2, trace, out, cap)?;
        trace.pop();
        if !complete {
            return Ok(false);
        }
    }
    if !any_live {
        if out.len() >= cap {
            return Ok(false);
        }
        out.push(Schedule::new(trace.clone())?);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::value::{Domain, Value};
    use pwsr_tplang::parser::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Catalog, DbState, Vec<Program>) {
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(-100, 100));
        let b = cat.add_item("b", Domain::int_range(-100, 100));
        let initial = DbState::from_pairs([(a, Value::Int(0)), (b, Value::Int(0))]);
        let programs = vec![
            parse_program("T1", "a := a + 1;").unwrap(),
            parse_program("T2", "b := a;").unwrap(),
        ];
        (cat, initial, programs)
    }

    #[test]
    fn random_executions_are_coherent() {
        let (cat, initial, programs) = setup();
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..50 {
            let s = random_execution(&programs, &cat, &initial, &mut rng).unwrap();
            s.check_read_coherence(&initial).unwrap();
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn enumeration_counts_interleavings() {
        // T1 has 2 ops, T2 has 2 ops: C(4,2) = 6 interleavings.
        let (cat, initial, programs) = setup();
        let all = enumerate_executions(&programs, &cat, &initial, 1000)
            .unwrap()
            .unwrap();
        assert_eq!(all.len(), 6);
        // All coherent, all distinct.
        for s in &all {
            s.check_read_coherence(&initial).unwrap();
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn enumeration_cap_returns_none() {
        let (cat, initial, programs) = setup();
        assert!(enumerate_executions(&programs, &cat, &initial, 3)
            .unwrap()
            .is_none());
    }

    #[test]
    fn branching_programs_enumerate_correctly() {
        // T2's op count depends on what it reads: interleavings where
        // T1's write lands first give T2 an extra write.
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(-10, 10));
        let b = cat.add_item("b", Domain::int_range(-10, 10));
        let initial = DbState::from_pairs([(a, Value::Int(0)), (b, Value::Int(0))]);
        let programs = vec![
            parse_program("T1", "a := 1;").unwrap(),
            parse_program("T2", "if (a > 0) then b := 7;").unwrap(),
        ];
        let all = enumerate_executions(&programs, &cat, &initial, 1000)
            .unwrap()
            .unwrap();
        // Schedules: [w1 r2 w2], [r2 w1], [r2 w1]… picks differ but some
        // yield identical op sequences; just require ≥2 distinct lengths.
        let mut lens: Vec<usize> = all.iter().map(Schedule::len).collect();
        lens.sort_unstable();
        lens.dedup();
        assert!(lens.contains(&2) && lens.contains(&3), "{lens:?}");
    }

    #[test]
    fn picks_replay_specific_interleavings() {
        let (cat, initial, programs) = setup();
        let s = execute_with_picks(
            &programs,
            &cat,
            &initial,
            &[TxnId(2), TxnId(1), TxnId(1), TxnId(2)],
        )
        .unwrap();
        // T2 read a before T1's increment: b := 0.
        assert_eq!(s.ops()[3].value, Value::Int(0));
        // Errors on bad picks.
        assert!(execute_with_picks(&programs, &cat, &initial, &[TxnId(9)]).is_err());
        assert!(
            execute_with_picks(&programs, &cat, &initial, &[TxnId(1), TxnId(1)]).is_err(),
            "unconsumed T2 must error"
        );
    }

    #[test]
    fn empty_program_list() {
        let (cat, initial, _) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let s = random_execution(&[], &cat, &initial, &mut rng).unwrap();
        assert!(s.is_empty());
        let all = enumerate_executions(&[], &cat, &initial, 10)
            .unwrap()
            .unwrap();
        assert_eq!(all.len(), 1);
    }
}
