//! Recursive-descent parser for transaction programs.
//!
//! Grammar (statements end with `;`, blocks use `{}`; a lone statement
//! after `then`/`else`/`do` needs no braces):
//!
//! ```text
//! program  := stmt*
//! stmt     := ident ":=" expr ";"
//!           | "touch" ident ";"
//!           | "if" "(" cond ")" "then" block ("else" block)?
//!           | "while" "(" cond ")" "do" block
//! block    := "{" stmt* "}" | stmt
//! cond     := orterm ("||" orterm)*
//! orterm   := cmp ("&&" cmp)*
//! cmp      := "!" cmp | "(" cond ")"        -- when followed by bool ops
//!           | expr (=|==|!=|<|<=|>|>=) expr | "true" | "false"
//! expr     := term (("+"|"-") term)*
//! term     := factor ("*" factor)*
//! factor   := int | string | ident | "-" factor
//!           | "abs" "(" expr ")" | "min" "(" expr "," expr ")"
//!           | "max" "(" expr "," expr ")" | "(" expr ")"
//! ```
//!
//! The default `while` iteration limit is [`DEFAULT_LOOP_LIMIT`].

use crate::ast::{BinOp, Cond, Expr, Program, Stmt, UnOp};
use crate::error::{Result, TpError};
use crate::lexer::{tokenize, Token};
use pwsr_core::constraint::Cmp;
use pwsr_core::value::Value;

/// Iteration cap applied to parsed `while` loops.
pub const DEFAULT_LOOP_LIMIT: u32 = 10_000;

/// Parse a named program from source text.
pub fn parse_program(name: &str, src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while !p.at_end() {
        body.push(p.stmt()?);
    }
    Ok(Program::new(name, body))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(TpError::Parse {
            at: self.pos,
            msg: msg.to_owned(),
        })
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<()> {
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            other => self.err(&format!("expected {what}, found {other:?}")),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(name),
            other => self.err(&format!("expected identifier, found {other:?}")),
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek() {
            Some(Token::Ident(kw)) if kw == "if" => self.if_stmt(),
            Some(Token::Ident(kw)) if kw == "while" => self.while_stmt(),
            Some(Token::Ident(kw)) if kw == "touch" => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Token::Semi, "';'")?;
                Ok(Stmt::Touch(name))
            }
            Some(Token::Ident(_)) => {
                let target = self.ident()?;
                self.expect(&Token::Assign, "':='")?;
                let expr = self.expr()?;
                self.expect(&Token::Semi, "';'")?;
                Ok(Stmt::Assign { target, expr })
            }
            other => self.err(&format!("expected a statement, found {other:?}")),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.bump(); // "if"
        self.expect(&Token::LParen, "'('")?;
        let cond = self.cond()?;
        self.expect(&Token::RParen, "')'")?;
        match self.bump() {
            Some(Token::Ident(kw)) if kw == "then" => {}
            other => return self.err(&format!("expected 'then', found {other:?}")),
        }
        let then_branch = self.block()?;
        let else_branch = if matches!(self.peek(), Some(Token::Ident(kw)) if kw == "else") {
            self.bump();
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        self.bump(); // "while"
        self.expect(&Token::LParen, "'('")?;
        let cond = self.cond()?;
        self.expect(&Token::RParen, "')'")?;
        match self.bump() {
            Some(Token::Ident(kw)) if kw == "do" => {}
            other => return self.err(&format!("expected 'do', found {other:?}")),
        }
        let body = self.block()?;
        Ok(Stmt::While {
            cond,
            body,
            limit: DEFAULT_LOOP_LIMIT,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        if matches!(self.peek(), Some(Token::LBrace)) {
            self.bump();
            let mut stmts = Vec::new();
            while !matches!(self.peek(), Some(Token::RBrace)) {
                if self.at_end() {
                    return self.err("unterminated block");
                }
                stmts.push(self.stmt()?);
            }
            self.bump(); // '}'
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn cond(&mut self) -> Result<Cond> {
        let mut left = self.and_cond()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.bump();
            let right = self.and_cond()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_cond(&mut self) -> Result<Cond> {
        let mut left = self.atom_cond()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.bump();
            let right = self.atom_cond()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom_cond(&mut self) -> Result<Cond> {
        match self.peek() {
            Some(Token::Bang) => {
                self.bump();
                Ok(Cond::Not(Box::new(self.atom_cond()?)))
            }
            Some(Token::Ident(kw)) if kw == "true" && !self.next_is_cmp() => {
                self.bump();
                Ok(Cond::True)
            }
            Some(Token::Ident(kw)) if kw == "false" && !self.next_is_cmp() => {
                self.bump();
                Ok(Cond::False)
            }
            Some(Token::LParen) if self.paren_is_condition() => {
                self.bump();
                let c = self.cond()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(c)
            }
            _ => {
                let left = self.expr()?;
                let op = match self.bump() {
                    Some(Token::Eq) => Cmp::Eq,
                    Some(Token::Ne) => Cmp::Ne,
                    Some(Token::Lt) => Cmp::Lt,
                    Some(Token::Le) => Cmp::Le,
                    Some(Token::Gt) => Cmp::Gt,
                    Some(Token::Ge) => Cmp::Ge,
                    other => return self.err(&format!("expected comparison, found {other:?}")),
                };
                let right = self.expr()?;
                Ok(Cond::Cmp(op, left, right))
            }
        }
    }

    /// After `true`/`false` a comparison operator means they were meant
    /// as (illegal) expression operands; treat as comparison start.
    fn next_is_cmp(&self) -> bool {
        matches!(
            self.peek2(),
            Some(Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge)
        )
    }

    /// Disambiguate `(` in condition position: it opens a nested
    /// condition if the matching structure contains a boolean operator
    /// before the comparison; otherwise it is an arithmetic paren.
    /// A simple scan: find the matching `)` and look for `&&`, `||`,
    /// or a comparison *inside* it.
    fn paren_is_condition(&self) -> bool {
        let mut depth = 0usize;
        for t in &self.tokens[self.pos..] {
            match t {
                Token::LParen => depth += 1,
                Token::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                Token::AndAnd | Token::OrOr | Token::Bang if depth >= 1 => return true,
                Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge
                    if depth == 1 =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        while matches!(self.peek(), Some(Token::Star)) {
            self.bump();
            let right = self.factor()?;
            left = Expr::Binary(BinOp::Mul, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Const(Value::Int(v))),
            Some(Token::Str(s)) => Ok(Expr::Const(Value::str(&s))),
            Some(Token::Minus) => Ok(Expr::Unary(UnOp::Neg, Box::new(self.factor()?))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "abs" => {
                    self.expect(&Token::LParen, "'('")?;
                    let e = self.expr()?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(Expr::Unary(UnOp::Abs, Box::new(e)))
                }
                "min" | "max" => {
                    let op = if name == "min" {
                        BinOp::Min
                    } else {
                        BinOp::Max
                    };
                    self.expect(&Token::LParen, "'('")?;
                    let l = self.expr()?;
                    self.expect(&Token::Comma, "','")?;
                    let r = self.expr()?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(Expr::Binary(op, Box::new(l), Box::new(r)))
                }
                "true" => Ok(Expr::Const(Value::Bool(true))),
                "false" => Ok(Expr::Const(Value::Bool(false))),
                _ => Ok(Expr::Var(name)),
            },
            other => self.err(&format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example2_tp1() {
        let p = parse_program("TP1", "a := 1; if (c > 0) then b := abs(b) + 1;").unwrap();
        assert_eq!(p.body.len(), 2);
        match &p.body[1] {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                assert_eq!(cond, &Cond::gt(Expr::var("c"), Expr::int(0)));
                assert_eq!(then_branch.len(), 1);
                assert!(else_branch.is_empty());
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_with_blocks() {
        let p = parse_program(
            "TP1p",
            "a := 1; if (c > 0) then { b := abs(b) + 1; } else { b := b; }",
        )
        .unwrap();
        match &p.body[1] {
            Stmt::If { else_branch, .. } => assert_eq!(else_branch.len(), 1),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_while_and_touch() {
        let p = parse_program("L", "while (x < 10) do { x := x + 1; touch y; }").unwrap();
        match &p.body[0] {
            Stmt::While { body, limit, .. } => {
                assert_eq!(body.len(), 2);
                assert_eq!(*limit, DEFAULT_LOOP_LIMIT);
                assert_eq!(body[1], Stmt::Touch("y".into()));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program("P", "x := 1 + 2 * 3;").unwrap();
        match &p.body[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(expr.to_string(), "(1 + (2 * 3))");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn boolean_operators_and_nesting() {
        let p = parse_program("P", "if ((a > 0 && b < 1) || !(c = 2)) then x := 1;").unwrap();
        match &p.body[0] {
            Stmt::If { cond, .. } => {
                let s = cond.to_string();
                assert!(
                    s.contains("&&") && s.contains("||") && s.contains('!'),
                    "{s}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_parens_in_condition() {
        // `(a + 1) > 2` — the leading paren is arithmetic, not boolean.
        let p = parse_program("P", "if ((a + 1) > 2) then x := 1;").unwrap();
        match &p.body[0] {
            Stmt::If { cond, .. } => {
                assert_eq!(
                    cond,
                    &Cond::gt(Expr::var("a").add(Expr::int(1)), Expr::int(2))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_max_functions() {
        let p = parse_program("P", "x := min(a, 3) + max(b, -1);").unwrap();
        match &p.body[0] {
            Stmt::Assign { expr, .. } => {
                assert_eq!(expr.to_string(), "(min(a, 3) + max(b, -(1)))");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("P", "x := ;").is_err());
        assert!(parse_program("P", "if (a > 0) x := 1;").is_err()); // missing then
        assert!(parse_program("P", "x := 1").is_err()); // missing ;
        assert!(parse_program("P", "if (a > 0) then { x := 1;").is_err()); // open block
        assert!(parse_program("P", "while (x) do y := 1;").is_err()); // cond not boolean
    }

    #[test]
    fn empty_program_ok() {
        let p = parse_program("P", "  # nothing\n").unwrap();
        assert!(p.body.is_empty());
    }
}
