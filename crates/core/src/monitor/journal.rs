//! The monitor → durability journal boundary.
//!
//! A [`MonitorJournal`] receives every *state transition* of a monitor
//! — appends, suffix truncations, retraction-floor raises, and full
//! rebuilds — in the exact order the monitor applied them, so a
//! write-ahead log can later replay the sequence into a fresh monitor
//! and arrive at a byte-identical state (verdict ladder, floor, state
//! hash). The trait lives in `pwsr_core` so the monitors can call it;
//! the durable implementation (`pwsr_durability`'s WAL) lives
//! downstream — core has no I/O dependency.
//!
//! Ordering contract: the sharded monitor invokes the journal **under
//! its order-claiming sequence mutex**, so journal order IS claimed
//! schedule order even under concurrent pushes — the property that
//! makes single-threaded replay of a concurrently-written log exact.
//! Single-writer callers (the scheduler's `MonitorAdmission`) satisfy
//! the contract trivially.
//!
//! The four transitions form a tiny replay language:
//!
//! | callback | replay action on a fresh `OnlineMonitor` |
//! |---|---|
//! | [`appended`](MonitorJournal::appended) | `push_logged(op)` |
//! | [`truncated`](MonitorJournal::truncated) | `truncate_to(n)` |
//! | [`floor_raised`](MonitorJournal::floor_raised) | `checkpoint(floor)` |
//! | [`reset`](MonitorJournal::reset) | fresh monitor, same scopes |
//!
//! A transaction abort (`retract_txn` / `MonitorAdmission::sync`)
//! needs no record of its own: it decomposes into one truncation plus
//! re-appends of the surviving suffix, and the monitors emit exactly
//! that decomposition.

use crate::op::Operation;

/// Receiver for a monitor's state transitions, in application order.
/// `Send` because the sharded monitor carries its journal across
/// pushing threads (always under the sequence mutex); `Debug` so
/// journaled monitors stay debuggable.
pub trait MonitorJournal: Send + std::fmt::Debug {
    /// `op` was appended at the end of the recorded schedule.
    fn appended(&mut self, op: &Operation);

    /// `ops` were appended contiguously (one batch admission). The
    /// default decomposes into per-op [`appended`](Self::appended)
    /// calls; journals with a cheaper framed multi-op representation
    /// (the WAL's `OpBatch` record) override it. Replay of either form
    /// must reconstruct the identical schedule, so overriding is a
    /// pure amortization.
    fn appended_batch(&mut self, ops: &[Operation]) {
        for op in ops {
            self.appended(op);
        }
    }

    /// The recorded schedule was truncated to its first `new_len`
    /// operations (an abort retracting a suffix).
    fn truncated(&mut self, new_len: usize);

    /// The retraction floor rose to `floor`: the prefix below it is
    /// permanent (a checkpoint boundary — the durable-snapshot point).
    fn floor_raised(&mut self, floor: usize);

    /// The monitor was rebuilt from scratch (the rare below-floor
    /// abort fallback); appends follow for every surviving operation.
    fn reset(&mut self);
}
