//! CMP-1: bounded-memory streaming via committed-prefix compaction.
//!
//! A long stream of short transactions is pushed through two
//! [`OnlineMonitor`] twins: one declares each transaction finished at
//! its last operation and compacts the committed prefix on a fixed
//! cadence ([`OnlineMonitor::compact`]), the other retains the whole
//! history. The experiment measures
//!
//! * **resident memory**: the compacting monitor's structural
//!   footprint ([`OnlineMonitor::resident_bytes_estimate`]) must
//!   *plateau* — its peak (sampled just before each compaction) stays
//!   a small constant multiple of one epoch, far below the
//!   uncompacted twin's linearly-growing footprint;
//! * **per-op cost**: the compacting path's amortized ns/op (including
//!   the compaction sweeps themselves) must stay within 1.5× of the
//!   non-compacting path;
//! * **verdict parity**: both twins must end at the identical verdict
//!   (the twin-harness property, sampled here at scale).
//!
//! `trials` scales the stream: `ops ≈ trials × 200_000` (default 10 ≈
//! 2·10⁶ ops; `--trials 50` reaches the 10⁷-op tier; `--smoke` caps at
//! 8). The workload interleaves pairs of transactions on disjoint
//! items with reuse across epochs, so reads-from edges, last-writer
//! transitions and graph growth are all exercised while the verdict
//! stays `Serializable` (no frozen-graph shortcut).

use crate::report::Table;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::monitor::OnlineMonitor;
use pwsr_core::op::Operation;
use pwsr_core::state::ItemSet;
use pwsr_core::value::Value;
use std::hint::black_box;
use std::time::Instant;

/// Items in the workload's sliding window.
const ITEMS: usize = 64;
/// Conjunct scopes (16 items each).
const SCOPES: usize = 4;
/// Operations per transaction (r x, w x, r x', w x').
const OPS_PER_TXN: usize = 4;
/// Transaction pairs per compaction epoch.
const PAIRS_PER_EPOCH: usize = 2048;

/// The `compact` record the experiments binary embeds in the
/// `pwsr-experiments-v7` JSON.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactExpStats {
    /// Operations streamed through each twin.
    pub ops: u64,
    /// Compaction sweeps the compacting twin ran.
    pub compactions: u64,
    /// Operations reclaimed (summarized away) across those sweeps.
    pub ops_reclaimed: u64,
    /// Peak resident estimate of the compacting twin, sampled just
    /// *before* each compaction — the plateau ceiling.
    pub resident_bytes_pre: u64,
    /// Resident estimate after the final compaction — the plateau
    /// floor the monitor returns to.
    pub resident_bytes_post: u64,
    /// The uncompacted twin's resident estimate at end of stream.
    pub baseline_resident_bytes: u64,
    /// Amortized cost per op on the compacting path (sweeps included).
    pub compact_ns_per_op: f64,
    /// Amortized cost per op on the non-compacting path.
    pub baseline_ns_per_op: f64,
}

impl CompactExpStats {
    /// Compacting-path cost over baseline cost (the CI gate holds this
    /// under 1.5).
    pub fn overhead(&self) -> f64 {
        if self.baseline_ns_per_op > 0.0 {
            self.compact_ns_per_op / self.baseline_ns_per_op
        } else {
            f64::INFINITY
        }
    }

    /// Baseline resident bytes over the compacting twin's plateau
    /// ceiling — how much memory compaction actually bounds.
    pub fn memory_ratio(&self) -> f64 {
        if self.resident_bytes_pre > 0 {
            self.baseline_resident_bytes as f64 / self.resident_bytes_pre as f64
        } else {
            f64::INFINITY
        }
    }
}

/// The workload's conjunct scopes: `SCOPES` disjoint windows of
/// `ITEMS / SCOPES` items.
pub fn scopes() -> Vec<ItemSet> {
    (0..SCOPES)
        .map(|s| {
            let mut set = ItemSet::new();
            let width = ITEMS / SCOPES;
            for i in 0..width {
                set.insert(ItemId((s * width + i) as u32));
            }
            set
        })
        .collect()
}

/// Deterministic stream generator: transaction pairs `(A, B)` on
/// disjoint items (A even, B odd), strictly alternating their
/// operations, with item reuse across epochs. `sink` receives every
/// operation in stream order plus a flag marking each transaction's
/// last operation.
fn stream(pairs: usize, mut sink: impl FnMut(Operation, bool)) {
    let mut cur = [0i64; ITEMS];
    let mut counter = 0i64;
    for j in 0..pairs {
        let a = TxnId(2 * j as u32 + 1);
        let b = TxnId(2 * j as u32 + 2);
        let xa = 2 * (j % (ITEMS / 2));
        let xb = xa + 1;
        let xa2 = (xa + 2) % ITEMS;
        let xb2 = (xa2 + 1) % ITEMS;
        let mut emit = |txn: TxnId, item: usize, write: bool, last: bool| {
            let op = if write {
                counter += 1;
                cur[item] = counter;
                Operation::write(txn, ItemId(item as u32), Value::Int(counter))
            } else {
                Operation::read(txn, ItemId(item as u32), Value::Int(cur[item]))
            };
            sink(op, last);
        };
        // r x, w x on each side, then r x', w x' — alternating A/B.
        emit(a, xa, false, false);
        emit(b, xb, false, false);
        emit(a, xa, true, false);
        emit(b, xb, true, false);
        emit(a, xa2, false, false);
        emit(b, xb2, false, false);
        emit(a, xa2, true, true);
        emit(b, xb2, true, true);
    }
}

/// Run the comparison. `trials` scales the stream length (0 = 10
/// epochs of ~200k ops each).
pub fn cmp1(trials: u64, _seed: u64) -> (bool, String, CompactExpStats) {
    let units = if trials == 0 { 10 } else { trials };
    let pairs = (units as usize) * 200_000 / (2 * OPS_PER_TXN);
    let pairs = pairs.max(2 * PAIRS_PER_EPOCH);
    let total_ops = (pairs * 2 * OPS_PER_TXN) as u64;

    // Compacting twin: finish each transaction at its last op, compact
    // every PAIRS_PER_EPOCH pairs. Resident is sampled around each
    // sweep; the sweeps run inside the timed region (their cost is
    // part of the path's amortized per-op price).
    let mut compacting = OnlineMonitor::new(scopes());
    let mut since_epoch = 0usize;
    let mut peak_pre = 0usize;
    let start = Instant::now();
    {
        let m = &mut compacting;
        let mut done_in_pair = 0usize;
        stream(pairs, |op, last| {
            let txn = op.txn;
            black_box(m.push(op).expect("coherent stream"));
            if last {
                m.finish_txn(txn);
                done_in_pair += 1;
                if done_in_pair == 2 {
                    done_in_pair = 0;
                    since_epoch += 1;
                    if since_epoch == PAIRS_PER_EPOCH {
                        since_epoch = 0;
                        peak_pre = peak_pre.max(m.resident_bytes_estimate());
                        m.compact();
                    }
                }
            }
        });
        m.compact();
    }
    let compact_ns_per_op = start.elapsed().as_nanos() as f64 / total_ops as f64;
    let resident_post = compacting.resident_bytes_estimate();

    // Uncompacted twin: identical stream, full history retained.
    let mut baseline = OnlineMonitor::new(scopes());
    let start = Instant::now();
    {
        let m = &mut baseline;
        stream(pairs, |op, _| {
            black_box(m.push(op).expect("coherent stream"));
        });
    }
    let baseline_ns_per_op = start.elapsed().as_nanos() as f64 / total_ops as f64;
    let baseline_resident = baseline.resident_bytes_estimate();

    let stats = CompactExpStats {
        ops: total_ops,
        compactions: compacting.compactions(),
        ops_reclaimed: compacting.ops_reclaimed(),
        resident_bytes_pre: peak_pre as u64,
        resident_bytes_post: resident_post as u64,
        baseline_resident_bytes: baseline_resident as u64,
        compact_ns_per_op,
        baseline_ns_per_op,
    };

    let parity = compacting.verdict() == baseline.verdict();
    let plateaued = stats.memory_ratio() >= 4.0 && resident_post < peak_pre;
    let reclaimed = stats.ops_reclaimed >= total_ops / 2;
    let cheap = stats.overhead() <= 1.5;
    let ok = parity && stats.compactions > 0 && plateaued && reclaimed && cheap;

    let mut t = Table::new(
        "CMP-1  Committed-prefix compaction: bounded memory, bounded overhead",
        &[
            "ops",
            "compactions",
            "reclaimed",
            "peak resident",
            "post resident",
            "baseline resident",
            "ns/op (compact)",
            "ns/op (baseline)",
            "overhead",
            "verdict parity",
        ],
    );
    t.row(&[
        total_ops.to_string(),
        stats.compactions.to_string(),
        stats.ops_reclaimed.to_string(),
        format!("{}K", stats.resident_bytes_pre / 1024),
        format!("{}K", stats.resident_bytes_post / 1024),
        format!("{}K", stats.baseline_resident_bytes / 1024),
        format!("{compact_ns_per_op:.0}"),
        format!("{baseline_ns_per_op:.0}"),
        format!("{:.2}x", stats.overhead()),
        parity.to_string(),
    ]);
    (ok, t.render(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest stream the experiment accepts still plateaus,
    /// reclaims, and stays verdict-identical to its uncompacted twin.
    #[test]
    fn cmp1_smoke() {
        let _quiet = crate::HEAVY_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let (ok, text, stats) = cmp1(1, 0);
        assert!(ok, "{text}");
        assert!(stats.compactions > 0);
        assert!(stats.resident_bytes_pre < stats.baseline_resident_bytes);
    }
}
