//! Database states as partial variable assignments, and item sets.
//!
//! §2.1: a database state is a set of pairs `DS = {(d′, v′)}` assigning a
//! value to every item; its *restriction* `DS^d` keeps only the items in
//! `d ⊆ D`. Because restrictions are everywhere in the paper (read sets,
//! write effects, view sets, per-conjunct states), [`DbState`] is a
//! **partial** assignment; a "full" state is simply one that is total for
//! the catalog.
//!
//! The union `DS^{d1}_1 ⊔ DS^{d2}_2` is the paper's ⊔: set union that is
//! *undefined* (here: an error) when the operands disagree on an item.

use crate::error::{CoreError, Result};
use crate::ids::ItemId;
use crate::value::Value;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A set of data items `d ⊆ D` (a "data set" in the paper).
///
/// Backed by a `BTreeSet` for deterministic iteration; these sets are
/// small (conjunct scopes, read/write sets), so tree overhead is noise.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemSet(BTreeSet<ItemId>);

impl ItemSet {
    /// The empty set.
    pub fn new() -> Self {
        ItemSet::default()
    }

    /// Build from anything yielding [`ItemId`]s.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        ItemSet(iter.into_iter().collect())
    }

    /// Insert an item; returns whether it was newly inserted.
    pub fn insert(&mut self, id: ItemId) -> bool {
        self.0.insert(id)
    }

    /// Remove an item; returns whether it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        self.0.remove(&id)
    }

    /// Membership test.
    pub fn contains(&self, id: ItemId) -> bool {
        self.0.contains(&id)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate items in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.0.iter().copied()
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        ItemSet(self.0.union(&other.0).copied().collect())
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        ItemSet(self.0.intersection(&other.0).copied().collect())
    }

    /// `self − other`.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        ItemSet(self.0.difference(&other.0).copied().collect())
    }

    /// Are the two sets disjoint (`self ∩ other = ∅`)?
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        self.0.is_disjoint(&other.0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &ItemSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// An arbitrary element shared with `other`, if any.
    pub fn common_item(&self, other: &ItemSet) -> Option<ItemId> {
        self.0.intersection(&other.0).next().copied()
    }
}

impl FromIterator<ItemId> for ItemSet {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        ItemSet::from_iter(iter)
    }
}

impl<const N: usize> From<[ItemId; N]> for ItemSet {
    fn from(items: [ItemId; N]) -> Self {
        ItemSet::from_iter(items)
    }
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id:?}")?;
        }
        write!(f, "}}")
    }
}

/// A (partial) database state: a finite map from items to values.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DbState(BTreeMap<ItemId, Value>);

impl DbState {
    /// The empty assignment `∅`.
    pub fn new() -> Self {
        DbState::default()
    }

    /// Build from `(item, value)` pairs. Later pairs overwrite earlier
    /// ones (use [`DbState::union`] for the paper's conflict-checking ⊔).
    pub fn from_pairs<I: IntoIterator<Item = (ItemId, Value)>>(pairs: I) -> Self {
        DbState(pairs.into_iter().collect())
    }

    /// Assign `item := value`, returning the previous value if any.
    pub fn set(&mut self, item: ItemId, value: Value) -> Option<Value> {
        self.0.insert(item, value)
    }

    /// The value of `item`, if assigned.
    pub fn get(&self, item: ItemId) -> Option<&Value> {
        self.0.get(&item)
    }

    /// The value of `item`, or a [`CoreError::MissingItem`] error.
    pub fn require(&self, item: ItemId) -> Result<&Value> {
        self.get(item).ok_or(CoreError::MissingItem(item))
    }

    /// Remove `item` from the assignment.
    pub fn unset(&mut self, item: ItemId) -> Option<Value> {
        self.0.remove(&item)
    }

    /// Number of assigned items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is nothing assigned?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The set of assigned items.
    pub fn items(&self) -> ItemSet {
        ItemSet::from_iter(self.0.keys().copied())
    }

    /// Iterate `(item, value)` pairs in ascending item order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &Value)> + '_ {
        self.0.iter().map(|(k, v)| (*k, v))
    }

    /// The restriction `DS^d`: keep only items in `d`.
    pub fn restrict(&self, d: &ItemSet) -> DbState {
        // Iterate the smaller side.
        if d.len() < self.0.len() {
            DbState(
                d.iter()
                    .filter_map(|id| self.0.get(&id).map(|v| (id, v.clone())))
                    .collect(),
            )
        } else {
            DbState(
                self.0
                    .iter()
                    .filter(|(id, _)| d.contains(**id))
                    .map(|(id, v)| (*id, v.clone()))
                    .collect(),
            )
        }
    }

    /// `DS^{D−d}`: drop the items in `d`.
    pub fn without(&self, d: &ItemSet) -> DbState {
        DbState(
            self.0
                .iter()
                .filter(|(id, _)| !d.contains(**id))
                .map(|(id, v)| (*id, v.clone()))
                .collect(),
        )
    }

    /// The paper's ⊔: union of two assignments, **undefined** (an error)
    /// if they disagree on any item.
    pub fn union(&self, other: &DbState) -> Result<DbState> {
        let mut out = self.0.clone();
        for (&item, v) in &other.0 {
            match out.entry(item) {
                Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                Entry::Occupied(e) => {
                    if e.get() != v {
                        return Err(CoreError::UnionConflict {
                            item,
                            left: e.get().clone(),
                            right: v.clone(),
                        });
                    }
                }
            }
        }
        Ok(DbState(out))
    }

    /// Right-biased overwrite: `self` updated with every pair of
    /// `updates`. This is the state-transformer form used in
    /// Definition 4 (`state^{d−WS} ∪ write(T^d)`), where overwriting is
    /// intended rather than an error.
    pub fn updated_with(&self, updates: &DbState) -> DbState {
        let mut out = self.0.clone();
        for (&item, v) in &updates.0 {
            out.insert(item, v.clone());
        }
        DbState(out)
    }

    /// Do `self` and `other` agree on every item they both assign?
    pub fn compatible(&self, other: &DbState) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(id, v)| large.get(id).is_none_or(|w| w == v))
    }

    /// Is the state total for the given item set (assigns all of `d`)?
    pub fn is_total_for(&self, d: &ItemSet) -> bool {
        d.iter().all(|id| self.0.contains_key(&id))
    }

    /// Does `self` extend `other` (assign everything `other` does, with
    /// equal values)?
    pub fn extends(&self, other: &DbState) -> bool {
        other.iter().all(|(id, v)| self.get(id) == Some(v))
    }
}

impl FromIterator<(ItemId, Value)> for DbState {
    fn from_iter<I: IntoIterator<Item = (ItemId, Value)>>(iter: I) -> Self {
        DbState::from_pairs(iter)
    }
}

impl fmt::Debug for DbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({id:?}, {v})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn itemset_algebra() {
        let a = ItemSet::from_iter([id(1), id(2), id(3)]);
        let b = ItemSet::from_iter([id(3), id(4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.common_item(&b), Some(id(3)));
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn restriction_keeps_only_d() {
        // Paper §2.1: DS^d = {(d′,v′) : d′ ∈ d and (d′,v′) ∈ DS}.
        let ds = DbState::from_pairs([
            (id(0), Value::Int(5)),
            (id(1), Value::Int(6)),
            (id(2), Value::Int(7)),
        ]);
        let d = ItemSet::from_iter([id(0), id(2), id(9)]);
        let r = ds.restrict(&d);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(id(0)), Some(&Value::Int(5)));
        assert_eq!(r.get(id(2)), Some(&Value::Int(7)));
        assert_eq!(r.get(id(1)), None);
    }

    #[test]
    fn union_agrees_ok() {
        let l = DbState::from_pairs([(id(0), Value::Int(5)), (id(1), Value::Int(1))]);
        let r = DbState::from_pairs([(id(0), Value::Int(5)), (id(2), Value::Int(9))]);
        let u = l.union(&r).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn union_conflict_is_undefined() {
        // §2.1: DS1^{d1} ⊔ DS2^{d2} is undefined if they disagree.
        let l = DbState::from_pairs([(id(0), Value::Int(5))]);
        let r = DbState::from_pairs([(id(0), Value::Int(6))]);
        let err = l.union(&r).unwrap_err();
        assert!(matches!(err, CoreError::UnionConflict { item, .. } if item == id(0)));
    }

    #[test]
    fn updated_with_overwrites() {
        let base = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        let upd = DbState::from_pairs([(id(1), Value::Int(9)), (id(2), Value::Int(3))]);
        let out = base.updated_with(&upd);
        assert_eq!(out.get(id(0)), Some(&Value::Int(1)));
        assert_eq!(out.get(id(1)), Some(&Value::Int(9)));
        assert_eq!(out.get(id(2)), Some(&Value::Int(3)));
    }

    #[test]
    fn compatible_and_extends() {
        let small = DbState::from_pairs([(id(0), Value::Int(1))]);
        let big = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        let clash = DbState::from_pairs([(id(0), Value::Int(7))]);
        assert!(small.compatible(&big));
        assert!(big.extends(&small));
        assert!(!small.extends(&big));
        assert!(!clash.compatible(&big));
    }

    #[test]
    fn without_drops_items() {
        let ds = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        let out = ds.without(&ItemSet::from_iter([id(0)]));
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(id(1)), Some(&Value::Int(2)));
    }

    #[test]
    fn total_for() {
        let ds = DbState::from_pairs([(id(0), Value::Int(1)), (id(1), Value::Int(2))]);
        assert!(ds.is_total_for(&ItemSet::from_iter([id(0), id(1)])));
        assert!(!ds.is_total_for(&ItemSet::from_iter([id(0), id(2)])));
        assert!(ds.is_total_for(&ItemSet::new()));
    }

    #[test]
    fn require_missing() {
        let ds = DbState::new();
        assert!(matches!(
            ds.require(id(5)),
            Err(CoreError::MissingItem(i)) if i == id(5)
        ));
    }
}
