//! Property-based tests for the paper's proof artifacts: view sets
//! (Lemmas 2 and 6) and transaction states (Definition 4).

use proptest::prelude::*;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::op::Operation;
use pwsr_core::schedule::Schedule;
use pwsr_core::serializability::all_serialization_orders;
use pwsr_core::state::{DbState, ItemSet};
use pwsr_core::txn::Transaction;
use pwsr_core::txstate::{final_state_on, transaction_states};
use pwsr_core::value::Value;
use pwsr_core::viewset::{lemma2_inclusion_holds, lemma6_inclusion_holds};

fn arb_transactions(n_txns: u32, max_items: u32) -> impl Strategy<Value = Vec<Transaction>> {
    let per_txn = proptest::collection::btree_map(
        0..max_items,
        (any::<bool>(), any::<bool>(), -20i64..20),
        1..=max_items as usize,
    );
    proptest::collection::vec(per_txn, n_txns as usize).prop_map(move |txn_specs| {
        txn_specs
            .into_iter()
            .enumerate()
            .map(|(k, spec)| {
                let txn = TxnId(k as u32 + 1);
                let mut ops = Vec::new();
                for (item, (do_read, do_write, v)) in spec {
                    if do_read {
                        ops.push(Operation::read(txn, ItemId(item), Value::Int(v)));
                    }
                    if do_write || !do_read {
                        ops.push(Operation::write(txn, ItemId(item), Value::Int(v + 1)));
                    }
                }
                Transaction::new(txn, ops).expect("respects §2.2")
            })
            .collect()
    })
}

fn interleave_random(txns: &[Transaction], mix: &[u8]) -> Schedule {
    let mut cursors: Vec<usize> = vec![0; txns.len()];
    let mut ops = Vec::new();
    let total: usize = txns.iter().map(Transaction::len).sum();
    let mut mi = 0;
    while ops.len() < total {
        let pick = (mix.get(mi).copied().unwrap_or(0) as usize) % txns.len();
        mi += 1;
        for off in 0..txns.len() {
            let k = (pick + off) % txns.len();
            if cursors[k] < txns[k].len() {
                ops.push(txns[k].ops()[cursors[k]].clone());
                cursors[k] += 1;
                break;
            }
        }
    }
    Schedule::new(ops).expect("valid interleaving")
}

fn full_state(max_items: u32) -> DbState {
    DbState::from_pairs((0..max_items).map(|i| (ItemId(i), Value::Int(-(i as i64)))))
}

proptest! {
    /// Lemma 2's inclusion holds at every operation, for every
    /// serialization order of every serializable projection.
    #[test]
    fn lemma2_inclusion_universal(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..64),
        d_bits in 0u32..16,
    ) {
        let s = interleave_random(&txns, &mix);
        let d: ItemSet = (0..4).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        let proj = s.project(&d);
        if let Some(orders) = all_serialization_orders(&proj, 6) {
            for order in orders {
                for p in s.positions() {
                    prop_assert!(
                        lemma2_inclusion_holds(&s, &d, &order, p),
                        "order {order:?}, p {p:?}, S = {s}"
                    );
                }
            }
        }
    }

    /// Lemma 6's inclusion holds on DR schedules.
    #[test]
    fn lemma6_inclusion_on_dr(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..64),
        d_bits in 0u32..16,
    ) {
        let s = interleave_random(&txns, &mix);
        if !pwsr_core::dr::is_delayed_read(&s) {
            return Ok(());
        }
        let d: ItemSet = (0..4).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        let proj = s.project(&d);
        if let Some(orders) = all_serialization_orders(&proj, 6) {
            for order in orders {
                for p in s.positions() {
                    prop_assert!(
                        lemma6_inclusion_holds(&s, &d, &order, p),
                        "order {order:?}, p {p:?}, S = {s}"
                    );
                }
            }
        }
    }

    /// Definition 4 closure: executing the last transaction's
    /// projection from its state gives `DS2^d`, for *every*
    /// serialization order.
    #[test]
    fn def4_final_state_matches_apply(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..64),
        d_bits in 0u32..16,
    ) {
        let s = interleave_random(&txns, &mix);
        let d: ItemSet = (0..4).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        let initial = full_state(4);
        let ds2 = s.apply(&initial);
        let proj = s.project(&d);
        if let Some(orders) = all_serialization_orders(&proj, 6) {
            for order in orders {
                // Orders over the projection's transactions only.
                let f = final_state_on(&s, &d, &order, &initial);
                prop_assert_eq!(
                    &f,
                    &ds2.restrict(&d),
                    "order {:?}, S = {}", order, s
                );
            }
        }
    }

    /// Definition 4 monotonicity: every state in the chain assigns
    /// exactly the items of `d` present initially (states never lose
    /// or invent items).
    #[test]
    fn def4_states_preserve_item_scope(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        d_bits in 0u32..16,
    ) {
        let s = interleave_random(&txns, &mix);
        let d: ItemSet = (0..4).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        let initial = full_state(4);
        let order: Vec<TxnId> = s.txn_ids().to_vec();
        let states = transaction_states(&s, &d, &order, &initial);
        for st in states {
            prop_assert_eq!(st.items(), initial.restrict(&d).items());
        }
    }

    /// View sets only shrink (Lemma 2) along the serialization order.
    #[test]
    fn lemma2_view_sets_shrink(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        d_bits in 0u32..16,
    ) {
        use pwsr_core::viewset::view_sets_general;
        let s = interleave_random(&txns, &mix);
        let d: ItemSet = (0..4).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        let proj = s.project(&d);
        if let Some(order) = pwsr_core::serializability::serialization_order(&proj) {
            for p in s.positions() {
                let vs = view_sets_general(&s, &d, &order, p);
                for w in vs.windows(2) {
                    prop_assert!(w[1].is_subset(&w[0]));
                }
                // And all are subsets of d.
                for v in &vs {
                    prop_assert!(v.is_subset(&d));
                }
            }
        }
    }
}
