//! Deterministic fault injection — the chaos plane.
//!
//! A [`FaultPlan`] is a finite map from *fault points* to faults. WAL
//! points are keyed by `(site, invocation index)` — the k-th append,
//! sync, or rotation since the plan was armed — and executor points by
//! `(transaction, access index within its current attempt)`. Both
//! keyings are functions of the workload, not of thread timing, so a
//! faulted run replays exactly: the same plan against the same seed
//! fires the same faults at the same logical instants, no matter how
//! the OS schedules the worker threads.
//!
//! Each point fires **at most once** (firing consumes it). Without
//! this, a stall registered at `(txn 3, access 1)` would re-fire on
//! every retry of transaction 3 and livelock the executor; with it, a
//! fault means "the k-th occurrence of this event misbehaves once",
//! which is also what real transient faults look like.
//!
//! The plan is cheap to consult (one atomic bump plus a hash lookup
//! under an uncontended mutex) and is threaded through the system as a
//! [`FaultHandle`] (`Arc<FaultPlan>`): the WAL holds one beneath its
//! sink, the OCC executor holds one beside its tuning knobs, and the
//! chaos harness holds a third clone to assert afterwards that every
//! registered point actually fired ([`FaultPlan::remaining`] == 0) and
//! count what was injected ([`FaultPlan::injected`]).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A fault injected beneath the WAL sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalFault {
    /// The write persists only `keep` bytes of the frame (clamped to
    /// at least one byte short of complete), then reports an error —
    /// a torn write caught in the act.
    ShortWrite {
        /// Bytes of the frame that reach the sink before the error.
        keep: usize,
    },
    /// The durability barrier (`fsync`) reports an I/O error; bytes
    /// already written are unaffected.
    SyncFail,
    /// The checkpoint rotation (`Wal::restart`) fails before touching
    /// the log.
    RotateFail,
}

/// Where in the WAL a fault point sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WalSite {
    /// `Wal::append` — indexed by frame-write invocation.
    Append,
    /// `Wal::sync` — indexed by durability-barrier invocation.
    Sync,
    /// `Wal::restart` — indexed by rotation invocation.
    Rotate,
}

/// A fault injected into an executor worker at one access of one
/// transaction's attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecFault {
    /// Sleep `ms` milliseconds after the access completes, holding
    /// whatever dirty items the transaction has published — the
    /// stalled-writer scenario the zombie reaper exists for.
    Stall {
        /// Milliseconds to sleep.
        ms: u64,
    },
    /// Panic after the access completes, outside every latch.
    Panic,
    /// Panic while holding the stripe latch, before the access mutates
    /// store or monitor — exercises lock poisoning and in-latch unwind.
    PanicInStripe,
}

/// A seeded, schedule-driven map from deterministic fault points to
/// faults. See the [module docs](self) for the keying discipline.
#[derive(Default)]
pub struct FaultPlan {
    wal: Mutex<HashMap<(WalSite, u64), WalFault>>,
    exec: Mutex<HashMap<(u32, u32), ExecFault>>,
    append_seen: AtomicU64,
    sync_seen: AtomicU64,
    rotate_seen: AtomicU64,
    injected: AtomicU64,
}

/// Shared handle to a [`FaultPlan`]; clones observe the same points
/// and counters.
pub type FaultHandle = Arc<FaultPlan>;

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("wal_points", &self.wal.lock().len())
            .field("exec_points", &self.exec.lock().len())
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan (no faults fire until points are registered).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Register a WAL fault at the `nth` invocation of `site`
    /// (0-based). Builder-style.
    pub fn on_wal(self, site: WalSite, nth: u64, fault: WalFault) -> FaultPlan {
        self.wal.lock().insert((site, nth), fault);
        self
    }

    /// Register an executor fault at access `access` (0-based, within
    /// the attempt) of transaction `txn`. Builder-style.
    pub fn on_access(self, txn: u32, access: u32, fault: ExecFault) -> FaultPlan {
        self.exec.lock().insert((txn, access), fault);
        self
    }

    /// Finish building: wrap in the shared handle the WAL and the
    /// executors take.
    pub fn share(self) -> FaultHandle {
        Arc::new(self)
    }

    /// Consult-and-consume the fault point for the next invocation of
    /// `site`. Called by the WAL on every append/sync/rotate; each
    /// call advances the site's invocation counter whether or not a
    /// point fires.
    pub fn fire_wal(&self, site: WalSite) -> Option<WalFault> {
        let counter = match site {
            WalSite::Append => &self.append_seen,
            WalSite::Sync => &self.sync_seen,
            WalSite::Rotate => &self.rotate_seen,
        };
        let idx = counter.fetch_add(1, Ordering::Relaxed);
        let fault = self.wal.lock().remove(&(site, idx));
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Consult-and-consume the fault point for access `access` of
    /// transaction `txn`'s current attempt.
    pub fn fire_exec(&self, txn: u32, access: u32) -> Option<ExecFault> {
        let fault = self.exec.lock().remove(&(txn, access));
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Registered points that have not fired. A chaos harness asserts
    /// this is zero after the run: a fault that never fired means the
    /// sweep mis-predicted an invocation index and tested nothing.
    pub fn remaining(&self) -> usize {
        self.wal.lock().len() + self.exec.lock().len()
    }
}

/// SplitMix64: the `index`-th deterministic 64-bit choice derived from
/// `seed`. The chaos sweep derives every fault parameter (site index,
/// victim transaction, stall length, short-write cut) through this, so
/// a fault point is a pure function of `(seed, index)`.
pub fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_fire_once_at_their_index() {
        let plan = FaultPlan::new()
            .on_wal(WalSite::Append, 2, WalFault::SyncFail)
            .on_wal(WalSite::Sync, 0, WalFault::SyncFail)
            .share();
        assert_eq!(plan.fire_wal(WalSite::Append), None); // idx 0
        assert_eq!(plan.fire_wal(WalSite::Append), None); // idx 1
        assert_eq!(plan.fire_wal(WalSite::Append), Some(WalFault::SyncFail)); // idx 2
        assert_eq!(plan.fire_wal(WalSite::Append), None); // idx 3
        assert_eq!(plan.fire_wal(WalSite::Sync), Some(WalFault::SyncFail));
        assert_eq!(plan.fire_wal(WalSite::Sync), None);
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn exec_points_consume_on_fire() {
        let plan = FaultPlan::new()
            .on_access(3, 1, ExecFault::Stall { ms: 5 })
            .share();
        assert_eq!(plan.fire_exec(3, 0), None);
        assert_eq!(plan.fire_exec(3, 1), Some(ExecFault::Stall { ms: 5 }));
        // A retry of the same attempt reaches access 1 again; the
        // consumed point must not re-fire (livelock guard).
        assert_eq!(plan.fire_exec(3, 1), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn sites_have_independent_counters() {
        let plan = FaultPlan::new()
            .on_wal(WalSite::Rotate, 0, WalFault::RotateFail)
            .share();
        for _ in 0..5 {
            assert_eq!(plan.fire_wal(WalSite::Append), None);
        }
        assert_eq!(plan.fire_wal(WalSite::Rotate), Some(WalFault::RotateFail));
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(42, 0), mix(42, 0));
        assert_ne!(mix(42, 0), mix(42, 1));
        assert_ne!(mix(42, 0), mix(43, 0));
        // Low bits should vary (used modulo small ranges).
        let lows: std::collections::HashSet<u64> = (0..64).map(|i| mix(7, i) % 8).collect();
        assert!(lows.len() > 4);
    }
}
