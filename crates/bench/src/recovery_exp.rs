//! REC-1: the recoverability hierarchy on histories with explicit
//! commits.
//!
//! The paper's model drops commit records and replaces ACA with DR
//! (§3.2). This experiment works in the *extended* model
//! ([`pwsr_core::history`]): random executions get their commit events
//! placed at random legal positions, and the population is classified
//! into strict ⊆ ACA ⊆ RC ⊆ all. Expected shape: the hierarchy nests
//! (no class count exceeds its superset), every class is inhabited, and
//! ACA histories' committed projections are always DR schedules — the
//! bridge the paper's §3.2 rests on.

use crate::report::Table;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::history::{Event, History, HistoryClass};
use pwsr_gen::chaos::random_execution;
use pwsr_gen::workloads::{random_workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a history from a schedule by inserting each transaction's
/// commit at a uniformly random position after its last operation.
pub fn randomly_committed(schedule: &pwsr_core::schedule::Schedule, rng: &mut StdRng) -> History {
    let mut events: Vec<Event> = schedule.ops().iter().cloned().map(Event::Op).collect();
    // Insert commits one txn at a time; each insertion position is
    // anywhere from just-after-last-op to the very end.
    for &t in schedule.txn_ids() {
        let last_op_pos = events
            .iter()
            .rposition(|e| matches!(e, Event::Op(o) if o.txn == t))
            .expect("txn has ops");
        let pos = rng.random_range(last_op_pos + 1..=events.len());
        events.insert(pos, Event::Commit(t));
    }
    History::new(events).expect("construction is legal")
}

/// Run the classification experiment.
pub fn rec1(trials: u64, seed: u64) -> (bool, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = [0u64; 4]; // strict, aca, rc, unrecoverable
    let mut aca_projections_dr = true;
    let mut nesting_ok = true;
    let mut total = 0u64;
    for _ in 0..trials {
        let w = random_workload(
            &mut rng,
            &WorkloadConfig {
                conjuncts: 2,
                items_per_conjunct: 2,
                n_background: 4,
                cross_read_prob: 0.6,
                fixed_only: false,
                gadgets: 0,
                domain_width: 40,
            },
        );
        let Ok(s) = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng) else {
            continue;
        };
        if s.is_empty() {
            continue;
        }
        let h = randomly_committed(&s, &mut rng);
        total += 1;
        // Nesting is definitional per classify; verify the raw
        // predicates nest too.
        if h.is_strict() && !h.is_aca() {
            nesting_ok = false;
        }
        if h.is_aca() && !h.is_recoverable() {
            nesting_ok = false;
        }
        if h.is_aca() && !is_delayed_read(&h.committed_projection()) {
            aca_projections_dr = false;
        }
        match h.recoverability() {
            HistoryClass::Strict => counts[0] += 1,
            HistoryClass::Aca => counts[1] += 1,
            HistoryClass::Recoverable => counts[2] += 1,
            HistoryClass::Unrecoverable => counts[3] += 1,
        }
    }
    let all_inhabited = counts.iter().all(|&c| c > 0);
    let ok = nesting_ok && aca_projections_dr && all_inhabited && total > 0;
    let mut t = Table::new(
        "REC-1  Recoverability hierarchy with explicit commits",
        &["class", "count", "note"],
    );
    t.row(&["strict".into(), counts[0].to_string(), "⊆ ACA".into()]);
    t.row(&[
        "ACA (not strict)".into(),
        counts[1].to_string(),
        "⊆ RC; projection always DR".into(),
    ]);
    t.row(&[
        "RC (not ACA)".into(),
        counts[2].to_string(),
        "dirty reads, safe commit order".into(),
    ]);
    t.row(&[
        "unrecoverable".into(),
        counts[3].to_string(),
        "reader commits first".into(),
    ]);
    t.row(&[
        "invariants".into(),
        total.to_string(),
        format!(
            "nesting={nesting_ok}, ACA⇒DR-projection={aca_projections_dr}, all inhabited={all_inhabited}"
        ),
    ]);
    (ok, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rec1_matches_prediction() {
        let (ok, text) = rec1(400, 800);
        assert!(ok, "{text}");
    }
}
