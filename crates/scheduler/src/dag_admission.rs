//! Static Theorem-3 admission control.
//!
//! §3.3's restriction is on *data access order*: number the conjuncts
//! so that no transaction reads a higher-numbered conjunct and writes a
//! lower-numbered one; then every PWSR schedule over those transactions
//! is strongly correct. Operationally this is an **admission** check on
//! the program set: build the conjunct graph from each program's
//! syntactic read/write sets (a sound over-approximation of any
//! execution's `DAG(S, IC)`), test acyclicity, and expose the
//! topological conjunct order. A program mix that passes may run under
//! plain predicate-wise 2PL with early release — no DR blocking, no
//! fixed-structure requirement — and still carry a Theorem 3 guarantee.

use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::IntegrityConstraint;
use pwsr_core::graph::DiGraph;
use pwsr_core::ids::ConjunctId;
use pwsr_core::state::ItemSet;
use pwsr_tplang::ast::{Program, Stmt};

/// The static conjunct-access graph of a program set.
#[derive(Clone, Debug)]
pub struct StaticDag {
    graph: DiGraph,
}

impl StaticDag {
    /// Is the static graph acyclic? If so, every runtime
    /// `DAG(S, IC)` of these programs is acyclic too (the runtime graph
    /// is a subgraph of the static one).
    pub fn is_acyclic(&self) -> bool {
        !self.graph.has_cycle()
    }

    /// A topological conjunct order witnessing admissibility.
    pub fn order(&self) -> Option<Vec<ConjunctId>> {
        self.graph
            .topo_sort()
            .map(|o| o.into_iter().map(|k| ConjunctId(k as u32)).collect())
    }

    /// A conjunct cycle witnessing refusal.
    pub fn cycle(&self) -> Option<Vec<ConjunctId>> {
        self.graph
            .find_cycle()
            .map(|c| c.into_iter().map(|k| ConjunctId(k as u32)).collect())
    }

    /// Number of edges in the static graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Syntactic (may-read, may-write) item sets of a program.
pub fn may_access_sets(program: &Program, catalog: &Catalog) -> (ItemSet, ItemSet) {
    let mut reads = ItemSet::new();
    let mut writes = ItemSet::new();
    fn walk(stmts: &[Stmt], catalog: &Catalog, reads: &mut ItemSet, writes: &mut ItemSet) {
        for s in stmts {
            match s {
                Stmt::Assign { target, expr } => {
                    let mut names = Vec::new();
                    expr.var_names(&mut names);
                    for n in names {
                        if let Ok(item) = catalog.lookup(&n) {
                            reads.insert(item);
                        }
                    }
                    if let Ok(item) = catalog.lookup(target) {
                        writes.insert(item);
                    }
                }
                Stmt::Touch(name) => {
                    if let Ok(item) = catalog.lookup(name) {
                        reads.insert(item);
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let mut names = Vec::new();
                    cond.var_names(&mut names);
                    for n in names {
                        if let Ok(item) = catalog.lookup(&n) {
                            reads.insert(item);
                        }
                    }
                    walk(then_branch, catalog, reads, writes);
                    walk(else_branch, catalog, reads, writes);
                }
                Stmt::While { cond, body, .. } => {
                    let mut names = Vec::new();
                    cond.var_names(&mut names);
                    for n in names {
                        if let Ok(item) = catalog.lookup(&n) {
                            reads.insert(item);
                        }
                    }
                    walk(body, catalog, reads, writes);
                }
            }
        }
    }
    walk(&program.body, catalog, &mut reads, &mut writes);
    (reads, writes)
}

/// Build the static conjunct graph for a program mix and constraint.
pub fn check_static_dag(
    programs: &[Program],
    catalog: &Catalog,
    ic: &IntegrityConstraint,
) -> StaticDag {
    let mut graph = DiGraph::new(ic.len());
    for p in programs {
        let (reads, writes) = may_access_sets(p, catalog);
        for (i, ci) in ic.conjuncts().iter().enumerate() {
            if reads.intersection(ci.items()).is_empty() {
                continue;
            }
            for (j, cj) in ic.conjuncts().iter().enumerate() {
                if i != j && !writes.intersection(cj.items()).is_empty() {
                    graph.add_edge(i, j);
                }
            }
        }
    }
    StaticDag { graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::constraint::{Conjunct, Formula, Term};
    use pwsr_core::dag::data_access_graph;
    use pwsr_core::ids::ItemId;
    use pwsr_core::value::{Domain, Value};
    use pwsr_tplang::parser::parse_program;

    fn setup() -> (Catalog, IntegrityConstraint) {
        let mut cat = Catalog::new();
        let a = cat.add_item("a", Domain::int_range(-10, 10));
        let b = cat.add_item("b", Domain::int_range(-10, 10));
        let c = cat.add_item("c", Domain::int_range(-10, 10));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap();
        (cat, ic)
    }

    #[test]
    fn example2_mix_is_refused() {
        // TP1 reads c (C1) and writes a (C0); TP2 reads a (C0) and
        // writes c (C1): static cycle, as §3.3 diagnoses.
        let (cat, ic) = setup();
        let programs = vec![
            parse_program("TP1", "a := 1; if (c > 0) then b := abs(b) + 1;").unwrap(),
            parse_program("TP2", "if (a > 0) then c := b;").unwrap(),
        ];
        let dag = check_static_dag(&programs, &cat, &ic);
        assert!(!dag.is_acyclic());
        assert!(dag.cycle().is_some());
        assert!(dag.order().is_none());
    }

    #[test]
    fn one_directional_mix_is_admitted() {
        let (cat, ic) = setup();
        let programs = vec![
            parse_program("P1", "c := a + b;").unwrap(),
            parse_program("P2", "c := a * 2;").unwrap(),
        ];
        let dag = check_static_dag(&programs, &cat, &ic);
        assert!(dag.is_acyclic());
        assert_eq!(dag.order().unwrap(), vec![ConjunctId(0), ConjunctId(1)]);
    }

    #[test]
    fn static_graph_contains_every_runtime_graph() {
        // Soundness: for the branching program below, the runtime DAG
        // from any single execution is a subgraph of the static DAG.
        let (cat, ic) = setup();
        let p = parse_program("P", "if (a > 0) then c := b; else b := 1;").unwrap();
        let programs = vec![p.clone()];
        let static_dag = check_static_dag(&programs, &cat, &ic);
        for av in [-1i64, 1] {
            let st = pwsr_core::state::DbState::from_pairs([
                (cat.lookup("a").unwrap(), Value::Int(av)),
                (cat.lookup("b").unwrap(), Value::Int(1)),
                (cat.lookup("c").unwrap(), Value::Int(1)),
            ]);
            let t = pwsr_tplang::interp::execute(&p, &cat, pwsr_core::ids::TxnId(1), &st).unwrap();
            let s = pwsr_core::schedule::Schedule::new(t.ops().to_vec()).unwrap();
            let runtime = data_access_graph(&s, &ic);
            for i in 0..ic.len() {
                for j in 0..ic.len() {
                    if runtime.has_edge(ConjunctId(i as u32), ConjunctId(j as u32)) {
                        assert!(
                            static_dag.graph.has_edge(i, j),
                            "missing static edge {i}→{j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn may_access_sets_cover_all_branches() {
        let (cat, _) = setup();
        let p = parse_program("P", "if (a > 0) then b := 1; else c := 2;").unwrap();
        let (reads, writes) = may_access_sets(&p, &cat);
        assert!(reads.contains(ItemId(0)));
        assert!(writes.contains(ItemId(1)) && writes.contains(ItemId(2)));
    }

    #[test]
    fn locals_are_not_items() {
        let (cat, _) = setup();
        let p = parse_program("P", "t := a; b := t;").unwrap();
        let (reads, writes) = may_access_sets(&p, &cat);
        assert_eq!(reads.len(), 1);
        assert_eq!(writes.len(), 1);
    }
}
