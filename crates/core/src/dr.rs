//! Delayed-read (DR), ACA and strict schedules (§3.2, Definition 5).
//!
//! *"A schedule S is a delayed read (DR) schedule if for all operations
//! o_i, o_j ∈ S, o_i ∈ T_1, o_j ∈ T_2, if o_j reads from o_i, then
//! after(T_1, o_j, S) = ε."* — i.e. a transaction never reads a value
//! written by a transaction that has not yet completed all of its
//! operations.
//!
//! The paper's practical motivation: *every ACA schedule is DR*. We
//! model commit points explicitly (defaulting to each transaction's
//! last operation) so the classical recoverability hierarchy
//! strict ⊆ ACA ⊆ DR can be demonstrated, not just asserted.

use crate::ids::{OpIndex, TxnId};
use crate::schedule::Schedule;
use std::collections::BTreeMap;

/// Commit points: for each transaction, the schedule position *after
/// which* it is committed. Defaults to the transaction's last operation.
#[derive(Clone, Debug, Default)]
pub struct CommitPoints(BTreeMap<TxnId, OpIndex>);

impl CommitPoints {
    /// Commit every transaction at its last operation (the natural
    /// choice when schedules carry no explicit commit records).
    pub fn at_last_op(schedule: &Schedule) -> CommitPoints {
        CommitPoints(
            schedule
                .txn_ids()
                .iter()
                .filter_map(|&t| schedule.last_op_of(t).map(|p| (t, p)))
                .collect(),
        )
    }

    /// Set an explicit commit point for `txn`.
    pub fn set(&mut self, txn: TxnId, at: OpIndex) {
        self.0.insert(txn, at);
    }

    /// The commit point of `txn`, if known.
    pub fn get(&self, txn: TxnId) -> Option<OpIndex> {
        self.0.get(&txn).copied()
    }

    /// Is `txn` committed at (i.e. at or before) position `p`?
    pub fn committed_by(&self, txn: TxnId, p: OpIndex) -> bool {
        self.get(txn).is_some_and(|c| c.0 <= p.0)
    }
}

/// Is the schedule *delayed-read* (Definition 5)?
///
/// For every reads-from pair (reader position `j`, writer in `T_w`),
/// `T_w` must have no operation after position `j`.
pub fn is_delayed_read(schedule: &Schedule) -> bool {
    dr_violation(schedule).is_none()
}

/// A witness that the schedule is not DR: `(reader, writer)` positions
/// where the writer's transaction is still active at the read.
///
/// One pass over dense tables: track the latest writer position per
/// item; the writer's completion is an O(1) lookup against the
/// schedule's last-position table. `O(n)`, no hashing, no rescans.
pub fn dr_violation(schedule: &Schedule) -> Option<(OpIndex, OpIndex)> {
    const NONE: u32 = u32::MAX;
    let mut last_write = vec![NONE; schedule.item_ub()];
    for (p, o) in schedule.ops().iter().enumerate() {
        if o.is_write() {
            last_write[o.item.index()] = p as u32;
        } else {
            let w = last_write[o.item.index()];
            if w != NONE && !schedule.op_txn_finished_by(OpIndex(w as usize), OpIndex(p)) {
                return Some((OpIndex(p), OpIndex(w as usize)));
            }
        }
    }
    None
}

/// Does the schedule *avoid cascading aborts* (ACA) under the given
/// commit points: every read of another transaction's write happens
/// after that transaction committed?
pub fn is_aca_with(schedule: &Schedule, commits: &CommitPoints) -> bool {
    schedule
        .reads_from_pairs()
        .into_iter()
        .all(|(reader, writer)| {
            let w_txn = schedule.op(writer).txn;
            commits.committed_by(w_txn, reader)
        })
}

/// ACA with the default commit-at-last-operation points. With those
/// points ACA coincides with DR, matching the paper's *"every ACA
/// schedule is also DR"*.
pub fn is_aca(schedule: &Schedule) -> bool {
    is_aca_with(schedule, &CommitPoints::at_last_op(schedule))
}

/// Is the schedule *strict* under the given commit points: no item is
/// read **or overwritten** while a preceding writer of it is
/// uncommitted?
pub fn is_strict_with(schedule: &Schedule, commits: &CommitPoints) -> bool {
    // Per item, the latest write (`mru1`) and the latest write by a
    // transaction other than `mru1`'s (`mru2`): together they answer
    // "latest preceding write by a transaction ≠ T" in O(1), replacing
    // the old per-operation backwards rescan.
    const NONE: (usize, TxnId) = (usize::MAX, TxnId(u32::MAX));
    let mut mru: Vec<[(usize, TxnId); 2]> = vec![[NONE; 2]; schedule.item_ub()];
    for (j, oj) in schedule.ops().iter().enumerate() {
        let [mru1, mru2] = mru[oj.item.index()];
        // The latest preceding write to the same item by another txn.
        let prior = if mru1 != NONE && mru1.1 != oj.txn {
            Some(mru1)
        } else if mru2 != NONE && mru2.1 != oj.txn {
            Some(mru2)
        } else {
            None
        };
        if let Some((_, w_txn)) = prior {
            // Only the *immediately* preceding write matters for reads
            // (the read takes its value from the latest write); for
            // overwrites, any uncommitted earlier writer breaks
            // strictness.
            let relevant = !oj.is_read() || mru1.1 != oj.txn;
            if relevant && !commits.committed_by(w_txn, OpIndex(j)) {
                return false;
            }
        }
        if oj.is_write() {
            mru[oj.item.index()] = if mru1 != NONE && mru1.1 == oj.txn {
                [(j, oj.txn), mru2]
            } else {
                [(j, oj.txn), mru1]
            };
        }
    }
    true
}

/// Strictness with commit-at-last-operation points.
pub fn is_strict(schedule: &Schedule) -> bool {
    is_strict_with(schedule, &CommitPoints::at_last_op(schedule))
}

/// The recoverability-style classes of §3.2, most restrictive first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryClass {
    /// Strict: no dirty reads *or* dirty overwrites.
    Strict,
    /// ACA (avoids cascading aborts): no dirty reads.
    Aca,
    /// DR (delayed read): reads only from finished transactions.
    Dr,
    /// None of the above.
    Unrestricted,
}

/// Classify a schedule into the most restrictive class it satisfies,
/// using default (last-operation) commit points.
pub fn classify_recovery(schedule: &Schedule) -> RecoveryClass {
    if is_strict(schedule) {
        RecoveryClass::Strict
    } else if is_aca(schedule) {
        RecoveryClass::Aca
    } else if is_delayed_read(schedule) {
        RecoveryClass::Dr
    } else {
        RecoveryClass::Unrestricted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ItemId;
    use crate::op::Operation;
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    #[test]
    fn example2_schedule_is_not_dr() {
        // §3.2: "TP2 reads data item a written by TP1 before TP1
        // finishes execution" — the motivating non-DR schedule.
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ])
        .unwrap();
        assert!(!is_delayed_read(&s));
        let (reader, writer) = dr_violation(&s).unwrap();
        assert_eq!(reader, OpIndex(1));
        assert_eq!(writer, OpIndex(0));
        assert_eq!(classify_recovery(&s), RecoveryClass::Unrestricted);
    }

    #[test]
    fn delayed_variant_is_dr() {
        // Delay T2's read of a until T1 finished: now DR.
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(1, 2, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
        ])
        .unwrap();
        assert!(is_delayed_read(&s));
        assert!(is_aca(&s));
    }

    #[test]
    fn reading_initial_state_never_blocks_dr() {
        let s = Schedule::new(vec![rd(1, 0, 0), rd(2, 0, 0), wr(1, 1, 1), wr(2, 2, 2)]).unwrap();
        assert!(is_delayed_read(&s));
        assert_eq!(classify_recovery(&s), RecoveryClass::Strict);
    }

    #[test]
    fn overwritten_dirty_value_allows_early_read() {
        // §3.2: "it is possible for a transaction T_i to read a data
        // item written by T_j before T_j completes execution if some
        // other transaction T_k has overwritten the item … and has
        // completed execution".  Here T3 reads b from T2 (finished),
        // even though T1 — an earlier writer of b — is still active.
        let s = Schedule::new(vec![
            wr(1, 1, 1), // T1 writes b (active until the end)
            wr(2, 1, 2), // T2 overwrites b
            rd(2, 0, 0), // T2 finishes
            rd(3, 1, 2), // T3 reads b from T2: DR-legal
            rd(1, 0, 0), // T1 still running
        ])
        .unwrap();
        assert!(is_delayed_read(&s));
        // …but not strict: T2 overwrote T1's uncommitted write.
        assert!(!is_strict(&s));
    }

    #[test]
    fn aca_with_explicit_commits() {
        // T1 writes a, T2 reads it in between, T1's commit point is at
        // its last op — a dirty read unless we move the commit earlier.
        let s = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1), wr(1, 1, 1)]).unwrap();
        assert!(!is_aca(&s));
        let mut commits = CommitPoints::at_last_op(&s);
        commits.set(TxnId(1), OpIndex(0)); // "commit" right after w1(a)
        assert!(is_aca_with(&s, &commits));
    }

    #[test]
    fn strict_subset_of_aca_subset_of_dr() {
        // Dirty read: DR fails ⇒ all three fail.
        let dirty = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1), wr(1, 1, 1)]).unwrap();
        assert_eq!(classify_recovery(&dirty), RecoveryClass::Unrestricted);
        // Dirty write only: DR+ACA hold, strict fails.
        let dirty_write =
            Schedule::new(vec![wr(1, 0, 1), wr(2, 0, 2), rd(1, 1, 0), rd(2, 1, 0)]).unwrap();
        assert!(is_delayed_read(&dirty_write));
        assert!(is_aca(&dirty_write));
        assert!(!is_strict(&dirty_write));
        assert_eq!(classify_recovery(&dirty_write), RecoveryClass::Aca);
        // Serial: strict.
        let serial = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1)]).unwrap();
        assert_eq!(classify_recovery(&serial), RecoveryClass::Strict);
    }

    #[test]
    fn empty_schedule_is_strict() {
        let s = Schedule::new(vec![]).unwrap();
        assert_eq!(classify_recovery(&s), RecoveryClass::Strict);
    }
}
