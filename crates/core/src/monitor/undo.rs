//! The shared **retraction layer**: per-push delta records and the
//! LIFO undo-log contract consumed by *both* monitors.
//!
//! PR 4 grew an undo-log ad hoc inside [`OnlineMonitor`]
//! (`push_logged`/`truncate_to`); this module factors the machinery
//! once so the sharded concurrent monitor can reuse it verbatim. A
//! *logged push* captures, before mutating anything destructively,
//! exactly the deltas it is about to apply:
//!
//! * `SeqDelta` — the order-defining table rows: the displaced
//!   `last_write` entry, the schedule's previous per-transaction
//!   last-operation position and item bound (both monotone, hence not
//!   recomputable), and whether the push created its transaction's
//!   slot;
//! * `GlobalDelta` — the total-order-dependent state: the
//!   delayed-read mark freshly set on the reads-from writer, the
//!   `first_non_dr` / per-conjunct Lemma-6 kills, and the global
//!   reduced conflict graph's `GraphDelta`;
//! * `GraphDelta` — one projection graph access: the node created,
//!   the conflict edges freshly inserted (in insertion order), the
//!   displaced writer/reader bookkeeping, and whether the access froze
//!   the projection (first cycle).
//!
//! ## The LIFO invariant
//!
//! Retraction is sound **only in reverse push order** (journal order).
//! Three facts make it exact under that discipline, and none of them
//! survive out-of-order removal:
//!
//! 1. **Pearce–Kelly stays valid without reordering.** Removing the
//!    most recently inserted edges first means the maintained
//!    topological order always satisfies a *superset* of the surviving
//!    constraints ([`IncrementalDag::remove_edge`] relies on this);
//!    removing an arbitrary older edge would leave the affected-region
//!    bookkeeping of later insertions dangling.
//! 2. **Monotone state has a unique pre-image.** `first_violation`,
//!    `first_non_dr`, a projection's `cyclic_at` and the schedule's
//!    `item_ub` only ever move one way under pushes; each delta records
//!    whether *its* push moved them, so popping deltas in reverse
//!    restores each to exactly its prior value.
//! 3. **Displaced values are captured, not recomputed.** `last_write`,
//!    the drained reader lists and the per-transaction last positions
//!    are overwritten destructively by a push; the delta carries the
//!    previous value, so the pop is `O(1)` per table — no rescan.
//!
//! `UndoLog` packages the discipline: a deque of per-push deltas
//! above a *floor* (`base`). Pushes below the floor are permanent —
//! `UndoLog::checkpoint` raises the floor (dropping the oldest
//! entries) once no live transaction can force a retraction that deep,
//! which is what bounds the log's memory over a long run.
//!
//! Consumers: [`OnlineMonitor`] keeps one `UndoLog<PushDelta>` (the
//! three layers folded into one entry per push, since a single writer
//! applies them atomically); [`ShardedMonitor`] splits the same
//! records per pipeline stage — `UndoLog<SeqDelta>` under the
//! order-claiming mutex, `UndoLog<GlobalDelta>` under the global
//! stage's lock, and per-shard `(position, GraphDelta)` journals
//! behind each shard's own lock — so a truncate touches each shard
//! for `O(ops undone in that shard)` and unaffected shards not at all.
//!
//! [`OnlineMonitor`]: super::OnlineMonitor
//! [`ShardedMonitor`]: super::sharded::ShardedMonitor
//! [`IncrementalDag::remove_edge`]: crate::graph::IncrementalDag::remove_edge

use crate::dag::AccessDagDelta;
use std::collections::VecDeque;

/// The deltas one projection-graph access applied — enough to retract
/// it exactly in LIFO (journal) order. Default = "nothing applied"
/// (the graph was already frozen), which makes frozen-period
/// retraction a no-op for free.
#[derive(Clone, Debug, Default)]
pub(crate) struct GraphDelta {
    /// A node was created for the accessing transaction's slot.
    pub(crate) added_node: bool,
    /// Conflict edges freshly inserted, in insertion order.
    pub(crate) edges: Vec<(u32, u32)>,
    /// This access set `cyclic_at` (the projection froze here).
    pub(crate) froze: bool,
    /// Write access: the displaced `last_writer` and the drained
    /// reader list (moved here rather than cloned — the apply path
    /// takes it anyway).
    pub(crate) write_undo: Option<(u32, Vec<u32>)>,
    /// Read access: the node was pushed onto the item's reader list.
    pub(crate) read_pushed: bool,
}

impl GraphDelta {
    /// Mark every projection-graph node id this delta references, so
    /// committed-prefix compaction keeps those nodes alive: a retained
    /// journal entry must stay replayable in LIFO order, which means
    /// every edge endpoint and displaced writer/reader it names must
    /// survive the condensation.
    pub(crate) fn mark_nodes(&self, kept: &mut [bool]) {
        for &(u, v) in &self.edges {
            kept[u as usize] = true;
            kept[v as usize] = true;
        }
        if let Some((w, readers)) = &self.write_undo {
            if *w != u32::MAX {
                kept[*w as usize] = true;
            }
            for &r in readers {
                kept[r as usize] = true;
            }
        }
    }

    /// Renumber node ids through `map` (old id → new id) after the
    /// projection graph compacted. The `u32::MAX` sentinel ("no
    /// previous writer") passes through unchanged; every other id must
    /// have been kept (see [`GraphDelta::mark_nodes`]).
    pub(crate) fn remap_nodes(&mut self, map: &[u32]) {
        let m = |x: u32| if x == u32::MAX { x } else { map[x as usize] };
        for (u, v) in &mut self.edges {
            *u = m(*u);
            *v = m(*v);
        }
        if let Some((w, readers)) = &mut self.write_undo {
            *w = m(*w);
            for r in readers.iter_mut() {
                *r = m(*r);
            }
        }
    }
}

impl GlobalDelta {
    /// [`GraphDelta::mark_nodes`] for the global-graph half.
    pub(crate) fn mark_nodes(&self, kept: &mut [bool]) {
        self.graph.mark_nodes(kept);
    }

    /// Renumber after compaction: global-graph node ids through `map`,
    /// and the dirty-read mark's writer *slot* down by `s_cut`. A mark
    /// on a summarized slot becomes `None`: its delayed-read row was
    /// reclaimed, and a summarized (finished) writer's mark can never
    /// trip again, so there is nothing left to retract.
    pub(crate) fn remap(&mut self, map: &[u32], s_cut: u32) {
        self.graph.remap_nodes(map);
        self.dr_mark = match self.dr_mark {
            Some(s) if s >= s_cut => Some(s - s_cut),
            _ => None,
        };
    }
}

/// The order-defining table rows one push displaced — the sequence
/// half of the retraction contract (owned by the single writer's
/// index, and by the sharded monitor's stage-1 state).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SeqDelta {
    /// The push created its transaction's slot.
    pub(crate) new_slot: bool,
    /// `item_ub` before the push (monotone, not recomputable).
    pub(crate) prev_item_ub: usize,
    /// `last_write[item]` before the push (consulted for writes).
    pub(crate) prev_last_write: u32,
    /// The transaction's previous last-operation position (consulted
    /// when the push did not create the slot).
    pub(crate) prev_slot_last: u32,
}

/// The total-order-dependent deltas of one push: delayed-read tracking
/// plus the global conflict graph (stage 2 of the sharded pipeline;
/// folded into [`PushDelta`] by the single writer).
#[derive(Clone, Debug, Default)]
pub(crate) struct GlobalDelta {
    /// A dirty-read mark (writer slot) was freshly set.
    pub(crate) dr_mark: Option<u32>,
    /// The push set `first_non_dr`.
    pub(crate) set_first_non_dr: bool,
    /// Conjuncts whose `conjunct_non_dr` the push set.
    pub(crate) conjunct_non_dr_set: Vec<u32>,
    /// Global conflict-graph deltas.
    pub(crate) graph: GraphDelta,
}

/// Everything one logged [`OnlineMonitor`](super::OnlineMonitor) push
/// applied, captured so `truncate_to` can retract it exactly: the
/// three stage records plus the single writer's extras (per-conjunct
/// graphs, the live access DAG, the first-violation flag).
#[derive(Clone, Debug, Default)]
pub(crate) struct PushDelta {
    /// Sequence-stage displacements.
    pub(crate) seq: SeqDelta,
    /// Delayed-read + global-graph deltas.
    pub(crate) global: GlobalDelta,
    /// Per touched conjunct: conflict-graph deltas.
    pub(crate) conjuncts: Vec<(u32, GraphDelta)>,
    /// Per touched conjunct: live-`DAG(S, IC)` deltas.
    pub(crate) dag_deltas: Vec<(u32, AccessDagDelta)>,
    /// The push set `first_violation`.
    pub(crate) set_first_violation: bool,
}

/// A journal of per-push deltas above a retraction *floor*.
///
/// Entry `k` describes the push at schedule position `base + k`;
/// [`UndoLog::pop`] consumes entries in LIFO order (the only order in
/// which the deltas are sound — see the module invariant), and
/// [`UndoLog::checkpoint`] drops entries from the *front* once the
/// positions they describe can no longer be retracted, bounding the
/// log's memory.
#[derive(Clone, Debug, Default)]
pub(crate) struct UndoLog<D> {
    entries: VecDeque<D>,
    base: usize,
}

impl<D> UndoLog<D> {
    /// An empty log whose floor is `base` (nothing below is logged).
    pub(crate) fn new(base: usize) -> UndoLog<D> {
        UndoLog {
            entries: VecDeque::new(),
            base,
        }
    }

    /// The retraction floor: the prefix length below which pushes are
    /// permanent.
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    /// Logged entries currently held.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// One past the last logged position (`base + len`).
    pub(crate) fn end(&self) -> usize {
        self.base + self.entries.len()
    }

    /// Journal one push's deltas (the push at position [`UndoLog::end`]).
    pub(crate) fn record(&mut self, delta: D) {
        self.entries.push_back(delta);
    }

    /// The retained entries, oldest first (entry `k` describes the
    /// push at position `base + k`).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &D> {
        self.entries.iter()
    }

    /// Mutable [`UndoLog::iter`] — committed-prefix compaction renames
    /// the graph nodes a retained entry references in place.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut D> {
        self.entries.iter_mut()
    }

    /// Retract the most recent entry (LIFO).
    pub(crate) fn pop(&mut self) -> Option<D> {
        self.entries.pop_back()
    }

    /// Drop every entry and restart the floor at `base` — the effect
    /// of an *unlogged* push, which is permanent by definition.
    pub(crate) fn reset(&mut self, base: usize) {
        self.entries.clear();
        self.base = base;
    }

    /// Raise the floor to `floor` (clamped to `[base, end]`), dropping
    /// the entries below it: those pushes become permanent and their
    /// memory is reclaimed. Returns the new floor.
    pub(crate) fn checkpoint(&mut self, floor: usize) -> usize {
        let floor = floor.clamp(self.base, self.end());
        self.entries.drain(..floor - self.base);
        self.base = floor;
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undo_log_floor_and_lifo() {
        let mut log: UndoLog<u32> = UndoLog::new(3);
        assert_eq!((log.base(), log.len(), log.end()), (3, 0, 3));
        for d in 0..4 {
            log.record(d);
        }
        assert_eq!(log.end(), 7);
        assert_eq!(log.pop(), Some(3));
        assert_eq!(log.len(), 3);
        // Checkpoint drops the oldest entries and raises the floor.
        assert_eq!(log.checkpoint(5), 5);
        assert_eq!((log.base(), log.len()), (5, 1));
        assert_eq!(log.pop(), Some(2));
        // Clamped: cannot undercut the floor or overshoot the end.
        assert_eq!(log.checkpoint(0), 5);
        assert_eq!(log.checkpoint(99), 5);
        log.reset(9);
        assert_eq!((log.base(), log.len(), log.end()), (9, 0, 9));
    }
}
