//! The write-ahead log: an append-only stream of length-prefixed,
//! CRC-32-checksummed records capturing every state transition of a
//! monitor (see `pwsr_core::monitor::journal::MonitorJournal`).
//!
//! # Frame format
//!
//! ```text
//! +----------------+----------------+===========+
//! | len: u32 LE    | crc32: u32 LE  |  payload  |
//! +----------------+----------------+===========+
//! ```
//!
//! `len` is the payload length; `crc32` covers the payload only. The
//! reader stops at the first anomaly — torn header, torn payload,
//! checksum mismatch, or malformed payload — and reports the longest
//! valid record prefix, never silently replaying damaged bytes.
//!
//! # Record payloads
//!
//! | tag | record | body |
//! |---|---|---|
//! | 1 | `Op` | txn `u32` LE, item `u32` LE, action `u8` (0=read, 1=write), value (tagged) |
//! | 2 | `Truncate` | new length `u64` LE |
//! | 3 | `Floor` | floor `u64` LE |
//! | 4 | `Reset` | (empty) |
//!
//! Value encoding: tag `u8` — 0 = `Int` + `i64` LE, 1 = `Bool` + `u8`,
//! 2 = `Str` + `u32` LE byte length + UTF-8 bytes.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::monitor::journal::MonitorJournal;
use pwsr_core::op::{Action, Operation};
use pwsr_core::value::Value;

use crate::crc32::crc32;
use crate::fault::{FaultHandle, WalFault, WalSite};

/// Bytes of the `[len][crc]` frame header.
pub const FRAME_HEADER: usize = 8;

/// One logical WAL record — the replay language of
/// [`MonitorJournal`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// An operation appended to the recorded schedule.
    Op(Operation),
    /// A contiguous run of operations appended by one batch admission
    /// (one frame, one checksum, one sync-policy tick for the whole
    /// run). Replays exactly as the equivalent sequence of
    /// [`WalRecord::Op`] records; never empty on the wire.
    OpBatch(Vec<Operation>),
    /// The schedule was truncated to its first `n` operations.
    Truncate(u64),
    /// The retraction floor rose to `floor`.
    Floor(u64),
    /// The monitor was rebuilt from scratch; appends follow.
    Reset,
}

const TAG_OP: u8 = 1;
const TAG_TRUNCATE: u8 = 2;
const TAG_FLOOR: u8 = 3;
const TAG_RESET: u8 = 4;
const TAG_OP_BATCH: u8 = 5;

const VAL_INT: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_STR: u8 = 2;

/// Encode an operation body (no tag byte) into `buf`. Shared with the
/// checkpoint format and the state hash, so all three agree on the
/// byte-level representation of an operation.
pub fn encode_op_into(buf: &mut Vec<u8>, op: &Operation) {
    buf.extend_from_slice(&op.txn.0.to_le_bytes());
    buf.extend_from_slice(&op.item.0.to_le_bytes());
    buf.push(match op.action {
        Action::Read => 0,
        Action::Write => 1,
    });
    match &op.value {
        Value::Int(i) => {
            buf.push(VAL_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(VAL_BOOL);
            buf.push(*b as u8);
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            let bytes = s.as_bytes();
            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
    }
}

fn decode_op(body: &[u8]) -> Option<(Operation, usize)> {
    if body.len() < 10 {
        return None;
    }
    let txn = TxnId(u32::from_le_bytes(body[0..4].try_into().ok()?));
    let item = ItemId(u32::from_le_bytes(body[4..8].try_into().ok()?));
    let action = match body[8] {
        0 => Action::Read,
        1 => Action::Write,
        _ => return None,
    };
    let (value, used) = match body[9] {
        VAL_INT => {
            let raw = body.get(10..18)?;
            (Value::Int(i64::from_le_bytes(raw.try_into().ok()?)), 18)
        }
        VAL_BOOL => {
            let raw = *body.get(10)?;
            if raw > 1 {
                return None;
            }
            (Value::Bool(raw == 1), 11)
        }
        VAL_STR => {
            let len = u32::from_le_bytes(body.get(10..14)?.try_into().ok()?) as usize;
            let raw = body.get(14..14 + len)?;
            let s = std::str::from_utf8(raw).ok()?;
            (Value::Str(Arc::from(s)), 14 + len)
        }
        _ => return None,
    };
    Some((
        Operation {
            txn,
            action,
            item,
            value,
        },
        used,
    ))
}

impl WalRecord {
    /// Encode this record's payload (tag + body) into `buf`.
    pub fn encode_payload_into(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Op(op) => {
                buf.push(TAG_OP);
                encode_op_into(buf, op);
            }
            WalRecord::OpBatch(ops) => {
                // Op bodies are self-delimiting, so the batch needs no
                // count prefix — decode consumes bodies to exhaustion.
                buf.push(TAG_OP_BATCH);
                for op in ops {
                    encode_op_into(buf, op);
                }
            }
            WalRecord::Truncate(n) => {
                buf.push(TAG_TRUNCATE);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            WalRecord::Floor(f) => {
                buf.push(TAG_FLOOR);
                buf.extend_from_slice(&f.to_le_bytes());
            }
            WalRecord::Reset => buf.push(TAG_RESET),
        }
    }

    /// Encode this record as a complete checksummed frame.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        self.encode_payload_into(&mut payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode an operation body as produced by [`encode_op_into`],
    /// requiring full consumption (the checkpoint format stores bare
    /// op bodies with their own length prefixes).
    pub fn decode_op_body(body: &[u8]) -> Option<Operation> {
        let (op, used) = decode_op(body)?;
        (used == body.len()).then_some(op)
    }

    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, body) = payload.split_first()?;
        match tag {
            TAG_OP => {
                let (op, used) = decode_op(body)?;
                (used == body.len()).then_some(WalRecord::Op(op))
            }
            TAG_OP_BATCH => {
                let mut ops = Vec::new();
                let mut rest = body;
                while !rest.is_empty() {
                    let (op, used) = decode_op(rest)?;
                    ops.push(op);
                    rest = &rest[used..];
                }
                (!ops.is_empty()).then_some(WalRecord::OpBatch(ops))
            }
            TAG_TRUNCATE => (body.len() == 8)
                .then(|| WalRecord::Truncate(u64::from_le_bytes(body.try_into().unwrap()))),
            TAG_FLOOR => (body.len() == 8)
                .then(|| WalRecord::Floor(u64::from_le_bytes(body.try_into().unwrap()))),
            TAG_RESET => body.is_empty().then_some(WalRecord::Reset),
            _ => None,
        }
    }
}

/// Why a WAL scan stopped before the end of the byte stream. In every
/// case the scan's `valid_bytes` marks the longest cleanly-checksummed
/// record prefix; bytes past it are discarded, never replayed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalCorruption {
    /// Fewer than [`FRAME_HEADER`] bytes remained at offset `at`.
    TornHeader {
        /// Byte offset of the torn header.
        at: usize,
    },
    /// The header at `at` promised `want` payload bytes but only
    /// `have` remained (a torn final record).
    TornPayload {
        /// Byte offset of the frame whose payload is torn.
        at: usize,
        /// Payload bytes the header promised.
        want: usize,
        /// Payload bytes actually present.
        have: usize,
    },
    /// The payload at `at` failed its CRC-32 (bit rot / torn write).
    ChecksumMismatch {
        /// Byte offset of the damaged frame.
        at: usize,
    },
    /// The payload at `at` checksummed cleanly but did not decode —
    /// an unknown tag or malformed body.
    MalformedPayload {
        /// Byte offset of the undecodable frame.
        at: usize,
    },
}

impl fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalCorruption::TornHeader { at } => write!(f, "torn frame header at byte {at}"),
            WalCorruption::TornPayload { at, want, have } => {
                write!(
                    f,
                    "torn payload at byte {at} (want {want} bytes, have {have})"
                )
            }
            WalCorruption::ChecksumMismatch { at } => write!(f, "checksum mismatch at byte {at}"),
            WalCorruption::MalformedPayload { at } => write!(f, "malformed payload at byte {at}"),
        }
    }
}

/// Result of scanning a WAL byte stream.
#[derive(Clone, Debug)]
pub struct WalScan {
    /// Records decoded from the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (`== input.len()` iff clean).
    pub valid_bytes: usize,
    /// `None` on a clean end-of-log; otherwise why the scan stopped.
    pub corruption: Option<WalCorruption>,
}

/// Scan `bytes` for checksummed records, stopping cleanly at the first
/// anomaly.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    let corruption = loop {
        if at == bytes.len() {
            break None;
        }
        if bytes.len() - at < FRAME_HEADER {
            break Some(WalCorruption::TornHeader { at });
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let have = bytes.len() - at - FRAME_HEADER;
        if len > have {
            break Some(WalCorruption::TornPayload {
                at,
                want: len,
                have,
            });
        }
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break Some(WalCorruption::ChecksumMismatch { at });
        }
        match WalRecord::decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => break Some(WalCorruption::MalformedPayload { at }),
        }
        at += FRAME_HEADER + len;
    };
    WalScan {
        records,
        valid_bytes: at,
        corruption,
    }
}

/// When the WAL forces written bytes down to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every record — maximum durability, slowest.
    PerRecord,
    /// `fsync` once every `n` records.
    Batched(usize),
    /// Never `fsync` (the OS flushes on its own schedule); still
    /// flushed on [`Wal::sync`] and drop.
    #[default]
    Off,
}

/// Append/byte/fsync counters, mirrored into the scheduler's
/// `Metrics` at end of run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Frame bytes written (header + payload).
    pub bytes: u64,
    /// Explicit syncs issued (counted even for the in-memory sink, so
    /// policy behaviour is testable without touching a filesystem).
    pub fsyncs: u64,
    /// I/O errors observed (including ones the error policy healed).
    pub io_errors: u64,
    /// Appends/syncs/rotations that succeeded only after a retry.
    pub retries: u64,
    /// Records discarded because the WAL was already fail-stopped.
    /// Non-zero means durable history is missing — the caller must
    /// surface it, never ignore it.
    pub dropped_records: u64,
    /// Faults the chaos plane fired inside this WAL.
    pub injected_faults: u64,
    /// Multi-op [`WalRecord::OpBatch`] records appended.
    pub batch_pushes: u64,
    /// Operations carried inside those batch records.
    pub batched_ops: u64,
    /// Largest single batch appended.
    pub max_batch: u64,
    /// True once the WAL degraded from its file sink to memory.
    pub degraded: bool,
}

/// How the WAL responds to an I/O error, replacing the old silent
/// sticky-drop with an explicit, surfaced choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalErrorPolicy {
    /// Keep the first error sticky, drop (and count) every later
    /// record, and surface the error through [`Wal::last_error`] /
    /// [`SharedWal::take_error`] so the admission path can refuse to
    /// report success.
    #[default]
    FailStop,
    /// Repair the sink to its last valid frame boundary and rewrite
    /// the whole frame, up to `attempts` times with exponential
    /// backoff capped at `cap_us` microseconds. Escalates to the
    /// fail-stop behaviour when the attempts run out.
    RetryBackoff {
        /// Maximum rewrite attempts after the initial failure.
        attempts: u32,
        /// Backoff cap in microseconds.
        cap_us: u64,
    },
    /// Abandon the failing file sink and continue appending into
    /// memory. Nothing is lost: the logical log is the surviving file
    /// prefix concatenated with the memory tail, reassembled by
    /// [`Wal::dump_bytes`] (frames are self-delimiting, so the
    /// concatenation scans cleanly). Durability is reduced, not
    /// correctness — and the degradation is visible in
    /// [`WalStats::degraded`].
    DegradeToMemory,
}

enum Sink {
    Mem(Vec<u8>),
    File {
        writer: BufWriter<File>,
        path: PathBuf,
    },
}

impl fmt::Debug for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sink::Mem(buf) => write!(f, "Mem({} bytes)", buf.len()),
            Sink::File { path, .. } => write!(f, "File({})", path.display()),
        }
    }
}

/// An append-only write-ahead log over an in-memory buffer or a file.
///
/// I/O errors are handled by the configured [`WalErrorPolicy`]; an
/// error the policy cannot heal becomes sticky, is reported by
/// [`Wal::last_error`] / [`Wal::take_io_error`], and every subsequent
/// append is dropped *and counted* ([`WalStats::dropped_records`]) —
/// the journal callbacks have no error channel, so the owner polls at
/// sync points and must refuse to report durable success while an
/// error is pending.
#[derive(Debug)]
pub struct Wal {
    sink: Sink,
    policy: SyncPolicy,
    error_policy: WalErrorPolicy,
    faults: Option<FaultHandle>,
    pending: usize,
    stats: WalStats,
    io_error: Option<std::io::Error>,
    /// Byte length of the valid frame prefix in the *current* sink
    /// (unlike `stats.bytes`, resets on rotation) — the repair target
    /// after a torn write.
    good_len: u64,
    /// Set when a file sink degraded to memory: the abandoned path and
    /// the length of its surviving valid prefix.
    degraded_prefix: Option<(PathBuf, u64)>,
}

impl Wal {
    /// An in-memory WAL (crash-injection harnesses, tests).
    pub fn in_memory(policy: SyncPolicy) -> Wal {
        Wal {
            sink: Sink::Mem(Vec::new()),
            policy,
            error_policy: WalErrorPolicy::default(),
            faults: None,
            pending: 0,
            stats: WalStats::default(),
            io_error: None,
            good_len: 0,
            degraded_prefix: None,
        }
    }

    /// Create (truncating) a file-backed WAL at `path`.
    pub fn create(path: &Path, policy: SyncPolicy) -> std::io::Result<Wal> {
        let file = File::create(path)?;
        Ok(Wal {
            sink: Sink::File {
                writer: BufWriter::new(file),
                path: path.to_path_buf(),
            },
            policy,
            error_policy: WalErrorPolicy::default(),
            faults: None,
            pending: 0,
            stats: WalStats::default(),
            io_error: None,
            good_len: 0,
            degraded_prefix: None,
        })
    }

    /// Choose how I/O errors are handled. Builder-style.
    pub fn with_error_policy(mut self, policy: WalErrorPolicy) -> Wal {
        self.error_policy = policy;
        self
    }

    /// Arm a fault plan beneath the sink. Builder-style.
    pub fn with_faults(mut self, faults: FaultHandle) -> Wal {
        self.faults = Some(faults);
        self
    }

    /// The error policy this WAL was built with.
    pub fn error_policy(&self) -> WalErrorPolicy {
        self.error_policy
    }

    /// Append one record, applying the sync policy.
    pub fn append(&mut self, record: &WalRecord) {
        if self.io_error.is_some() {
            self.stats.dropped_records += 1;
            return;
        }
        let frame = record.encode_frame();
        if let Err(e) = self.append_frame_with_policy(&frame) {
            self.io_error = Some(e);
            self.stats.dropped_records += 1;
            return;
        }
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        self.good_len += frame.len() as u64;
        self.pending += 1;
        match self.policy {
            SyncPolicy::PerRecord => self.sync(),
            SyncPolicy::Batched(n) => {
                if self.pending >= n.max(1) {
                    self.sync();
                }
            }
            SyncPolicy::Off => {}
        }
    }

    /// Write one frame, routing failures through the error policy.
    fn append_frame_with_policy(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let first = match self.write_frame(frame) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        self.stats.io_errors += 1;
        match self.error_policy {
            WalErrorPolicy::FailStop => Err(first),
            WalErrorPolicy::RetryBackoff { attempts, cap_us } => {
                let mut backoff = 1u64;
                for _ in 0..attempts {
                    // A failed write may have left a partial frame;
                    // repair back to the last frame boundary before
                    // rewriting the whole frame.
                    self.repair_sink()?;
                    match self.write_frame(frame) {
                        Ok(()) => {
                            self.stats.retries += 1;
                            return Ok(());
                        }
                        Err(_) => {
                            self.stats.io_errors += 1;
                            std::thread::sleep(std::time::Duration::from_micros(
                                backoff.min(cap_us.max(1)),
                            ));
                            backoff = backoff.saturating_mul(2);
                        }
                    }
                }
                Err(first)
            }
            WalErrorPolicy::DegradeToMemory => {
                self.degrade();
                self.write_frame(frame)
            }
        }
    }

    /// Raw frame write with the chaos plane consulted first.
    fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        if let Some(fault) = self
            .faults
            .as_ref()
            .and_then(|p| p.fire_wal(WalSite::Append))
        {
            self.stats.injected_faults += 1;
            if let WalFault::ShortWrite { keep } = fault {
                let keep = keep.min(frame.len().saturating_sub(1));
                match &mut self.sink {
                    Sink::Mem(buf) => buf.extend_from_slice(&frame[..keep]),
                    Sink::File { writer, .. } => writer.write_all(&frame[..keep])?,
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected short write",
                ));
            }
            return Err(std::io::Error::other("injected write error"));
        }
        match &mut self.sink {
            Sink::Mem(buf) => {
                buf.extend_from_slice(frame);
                Ok(())
            }
            Sink::File { writer, .. } => writer.write_all(frame),
        }
    }

    /// Truncate the sink back to its last valid frame boundary,
    /// discarding any partial frame a failed write left behind.
    fn repair_sink(&mut self) -> std::io::Result<()> {
        match &mut self.sink {
            Sink::Mem(buf) => {
                buf.truncate(self.good_len as usize);
                Ok(())
            }
            Sink::File { writer, .. } => {
                // Push any buffered partial bytes down so set_len sees
                // them; a failure here still ends in a clean truncate.
                let _ = writer.flush();
                writer.get_mut().set_len(self.good_len)?;
                writer.get_mut().seek(SeekFrom::End(0)).map(|_| ())
            }
        }
    }

    /// Abandon a failing file sink for an in-memory one, remembering
    /// the surviving file prefix so [`Wal::dump_bytes`] can reassemble
    /// the full logical log.
    fn degrade(&mut self) {
        let abandoned = match &mut self.sink {
            Sink::Mem(buf) => {
                buf.truncate(self.good_len as usize);
                None
            }
            Sink::File { writer, path } => {
                let _ = writer.flush();
                let _ = writer.get_ref().sync_data();
                Some(path.clone())
            }
        };
        if let Some(path) = abandoned {
            self.degraded_prefix = Some((path, self.good_len));
            self.sink = Sink::Mem(Vec::new());
            self.good_len = 0;
        }
        self.stats.degraded = true;
    }

    /// Append an operation record without constructing a `WalRecord`.
    pub fn append_op(&mut self, op: &Operation) {
        // Cheap: `Operation` is a few words plus an `Arc<str>` bump.
        self.append(&WalRecord::Op(op.clone()));
    }

    /// Append a contiguous batch of operations as one framed
    /// [`WalRecord::OpBatch`] record: one checksum, one sync-policy
    /// tick, and one stats update for the whole run. Empty batches are
    /// a no-op (the wire format forbids them); the batch counters only
    /// advance when the record actually landed (not dropped by a
    /// sticky I/O error).
    pub fn append_batch(&mut self, ops: &[Operation]) {
        if ops.is_empty() {
            return;
        }
        let before = self.stats.appends;
        self.append(&WalRecord::OpBatch(ops.to_vec()));
        if self.stats.appends > before {
            self.stats.batch_pushes += 1;
            self.stats.batched_ops += ops.len() as u64;
            self.stats.max_batch = self.stats.max_batch.max(ops.len() as u64);
        }
    }

    /// Flush buffered bytes and force them to stable storage.
    pub fn sync(&mut self) {
        if self.io_error.is_some() {
            return;
        }
        match self.sync_with_policy() {
            Ok(()) => {
                self.stats.fsyncs += 1;
                self.pending = 0;
            }
            Err(e) => self.io_error = Some(e),
        }
    }

    fn do_sync(&mut self) -> std::io::Result<()> {
        if self
            .faults
            .as_ref()
            .and_then(|p| p.fire_wal(WalSite::Sync))
            .is_some()
        {
            self.stats.injected_faults += 1;
            return Err(std::io::Error::other("injected fsync failure"));
        }
        match &mut self.sink {
            Sink::Mem(_) => Ok(()),
            Sink::File { writer, .. } => writer.flush().and_then(|()| writer.get_ref().sync_data()),
        }
    }

    fn sync_with_policy(&mut self) -> std::io::Result<()> {
        let first = match self.do_sync() {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        self.stats.io_errors += 1;
        match self.error_policy {
            WalErrorPolicy::FailStop => Err(first),
            WalErrorPolicy::RetryBackoff { attempts, cap_us } => {
                let mut backoff = 1u64;
                for _ in 0..attempts {
                    match self.do_sync() {
                        Ok(()) => {
                            self.stats.retries += 1;
                            return Ok(());
                        }
                        Err(_) => {
                            self.stats.io_errors += 1;
                            std::thread::sleep(std::time::Duration::from_micros(
                                backoff.min(cap_us.max(1)),
                            ));
                            backoff = backoff.saturating_mul(2);
                        }
                    }
                }
                Err(first)
            }
            WalErrorPolicy::DegradeToMemory => {
                // Memory needs no durability barrier; degrade and
                // report the (vacuous) sync as successful.
                self.degrade();
                Ok(())
            }
        }
    }

    /// Flush buffered bytes without an fsync.
    pub fn flush(&mut self) {
        if self.io_error.is_some() {
            return;
        }
        if let Sink::File { writer, .. } = &mut self.sink {
            if let Err(e) = writer.flush() {
                self.stats.io_errors += 1;
                self.io_error = Some(e);
            }
        }
    }

    /// Discard all logged records (checkpoint rotation: once a
    /// checkpoint covers the prefix below the floor, the tail restarts
    /// from the checkpoint state).
    pub fn restart(&mut self) {
        if self.io_error.is_some() {
            return;
        }
        match self.restart_with_policy() {
            Ok(()) => {
                self.pending = 0;
                self.good_len = 0;
                // The rotation discards all prior records; a prefix
                // surviving from an earlier degradation is obsolete.
                self.degraded_prefix = None;
            }
            Err(e) => self.io_error = Some(e),
        }
    }

    fn do_restart(&mut self) -> std::io::Result<()> {
        if self
            .faults
            .as_ref()
            .and_then(|p| p.fire_wal(WalSite::Rotate))
            .is_some()
        {
            self.stats.injected_faults += 1;
            return Err(std::io::Error::other("injected rotate failure"));
        }
        match &mut self.sink {
            Sink::Mem(buf) => {
                buf.clear();
                Ok(())
            }
            Sink::File { writer, .. } => writer
                .flush()
                .and_then(|()| writer.get_mut().set_len(0))
                .and_then(|()| writer.get_mut().seek(SeekFrom::Start(0)).map(|_| ())),
        }
    }

    fn restart_with_policy(&mut self) -> std::io::Result<()> {
        let first = match self.do_restart() {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        self.stats.io_errors += 1;
        match self.error_policy {
            WalErrorPolicy::FailStop => Err(first),
            WalErrorPolicy::RetryBackoff { attempts, cap_us } => {
                let mut backoff = 1u64;
                for _ in 0..attempts {
                    match self.do_restart() {
                        Ok(()) => {
                            self.stats.retries += 1;
                            return Ok(());
                        }
                        Err(_) => {
                            self.stats.io_errors += 1;
                            std::thread::sleep(std::time::Duration::from_micros(
                                backoff.min(cap_us.max(1)),
                            ));
                            backoff = backoff.saturating_mul(2);
                        }
                    }
                }
                Err(first)
            }
            WalErrorPolicy::DegradeToMemory => {
                // A rotation that cannot touch the file starts the
                // fresh (empty) log in memory instead; the stale file
                // content is superseded either way.
                self.stats.degraded = true;
                self.degraded_prefix = None;
                self.sink = Sink::Mem(Vec::new());
                self.good_len = 0;
                Ok(())
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The sync policy this WAL was built with.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// First I/O error, if any (sticky).
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }

    /// First unhealed I/O error, if any (alias of [`Wal::io_error`]
    /// under the name admission paths use).
    pub fn last_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }

    /// Take the sticky I/O error, clearing it.
    pub fn take_io_error(&mut self) -> Option<std::io::Error> {
        self.io_error.take()
    }

    /// The raw logged bytes (in-memory sink only).
    pub fn mem_bytes(&self) -> Option<&[u8]> {
        match &self.sink {
            Sink::Mem(buf) => Some(buf),
            Sink::File { .. } => None,
        }
    }

    /// The full logical log: the valid frame prefix of the current
    /// sink, preceded by the surviving file prefix if this WAL
    /// degraded to memory mid-run. Works for both sinks (file sinks
    /// are flushed first); partial frames from torn writes are
    /// excluded, so the result always scans cleanly.
    pub fn dump_bytes(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        if let Some((path, prefix)) = &self.degraded_prefix {
            let mut head = std::fs::read(path)?;
            head.truncate(*prefix as usize);
            out = head;
        }
        let good = self.good_len as usize;
        match &mut self.sink {
            Sink::Mem(buf) => out.extend_from_slice(&buf[..good.min(buf.len())]),
            Sink::File { writer, path } => {
                writer.flush()?;
                let path = path.clone();
                let mut bytes = std::fs::read(path)?;
                bytes.truncate(good);
                out.extend_from_slice(&bytes);
            }
        }
        Ok(out)
    }

    /// Path of the backing file (file sink only).
    pub fn path(&self) -> Option<&Path> {
        match &self.sink {
            Sink::Mem(_) => None,
            Sink::File { path, .. } => Some(path),
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A clonable, thread-safe handle to a [`Wal`] — the concrete
/// [`MonitorJournal`] implementation the monitors and schedulers hook.
///
/// Keeping this a concrete type (rather than a trait object field)
/// lets `MonitorAdmission` retain its `Clone`/`Debug` derives; clones
/// share the underlying log.
#[derive(Clone)]
pub struct SharedWal(Arc<Mutex<Wal>>);

impl fmt::Debug for SharedWal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wal = self.0.lock();
        f.debug_struct("SharedWal")
            .field("sink", &wal.sink)
            .field("policy", &wal.policy)
            .field("stats", &wal.stats)
            .finish()
    }
}

impl SharedWal {
    /// Wrap a [`Wal`] (in-memory or file-backed) for shared use.
    pub fn new(wal: Wal) -> SharedWal {
        SharedWal(Arc::new(Mutex::new(wal)))
    }

    /// An in-memory shared WAL (the common harness configuration).
    pub fn in_memory(policy: SyncPolicy) -> SharedWal {
        SharedWal::new(Wal::in_memory(policy))
    }

    /// Run `f` with the locked WAL.
    pub fn with<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Counters so far.
    pub fn stats(&self) -> WalStats {
        self.0.lock().stats()
    }

    /// Force buffered bytes to stable storage.
    pub fn sync(&self) {
        self.0.lock().sync();
    }

    /// Copy of the logged bytes (in-memory sink only).
    pub fn snapshot(&self) -> Option<Vec<u8>> {
        self.0.lock().mem_bytes().map(<[u8]>::to_vec)
    }

    /// Take the sticky (unhealed) I/O error, clearing it. Admission
    /// paths call this at their sync points: `Some` means durable
    /// history was lost and the run must not be reported successful.
    pub fn take_error(&self) -> Option<std::io::Error> {
        self.0.lock().take_io_error()
    }

    /// True while no unhealed I/O error is pending.
    pub fn healthy(&self) -> bool {
        self.0.lock().io_error().is_none()
    }

    /// The full logical log bytes for either sink (see
    /// [`Wal::dump_bytes`]).
    pub fn dump_bytes(&self) -> std::io::Result<Vec<u8>> {
        self.0.lock().dump_bytes()
    }
}

impl MonitorJournal for SharedWal {
    fn appended(&mut self, op: &Operation) {
        self.0.lock().append_op(op);
    }

    fn appended_batch(&mut self, ops: &[Operation]) {
        self.0.lock().append_batch(ops);
    }

    fn truncated(&mut self, new_len: usize) {
        self.0.lock().append(&WalRecord::Truncate(new_len as u64));
    }

    fn floor_raised(&mut self, floor: usize) {
        self.0.lock().append(&WalRecord::Floor(floor as u64));
    }

    fn reset(&mut self) {
        self.0.lock().append(&WalRecord::Reset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn op(txn: u32, item: u32, write: bool, value: Value) -> Operation {
        if write {
            Operation::write(TxnId(txn), ItemId(item), value)
        } else {
            Operation::read(TxnId(txn), ItemId(item), value)
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Op(op(0, 1, false, Value::Int(7))),
            WalRecord::Op(op(1, 2, true, Value::Bool(true))),
            WalRecord::Op(op(2, 3, true, Value::Str(Arc::from("hello wal")))),
            WalRecord::Truncate(2),
            WalRecord::Op(op(3, 1, true, Value::Int(-42))),
            WalRecord::Floor(1),
            WalRecord::Reset,
            WalRecord::Op(op(4, 5, false, Value::Str(Arc::from("")))),
            WalRecord::OpBatch(vec![
                op(5, 0, true, Value::Int(1)),
                op(5, 1, false, Value::Bool(false)),
                op(5, 2, true, Value::Str(Arc::from("batched"))),
            ]),
        ]
    }

    #[test]
    fn roundtrip_clean() {
        let records = sample_records();
        let mut wal = Wal::in_memory(SyncPolicy::Off);
        for r in &records {
            wal.append(r);
        }
        let bytes = wal.mem_bytes().unwrap();
        let s = scan(bytes);
        assert_eq!(s.records, records);
        assert_eq!(s.valid_bytes, bytes.len());
        assert_eq!(s.corruption, None);
        assert_eq!(wal.stats().appends, records.len() as u64);
        assert_eq!(wal.stats().bytes, bytes.len() as u64);
    }

    #[test]
    fn truncation_recovers_prefix() {
        let records = sample_records();
        let mut wal = Wal::in_memory(SyncPolicy::Off);
        for r in &records {
            wal.append(r);
        }
        let bytes = wal.mem_bytes().unwrap().to_vec();
        // Frame boundaries.
        let mut bounds = vec![0usize];
        for r in &records {
            bounds.push(bounds.last().unwrap() + r.encode_frame().len());
        }
        for cut in 0..=bytes.len() {
            let s = scan(&bytes[..cut]);
            let k = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(s.records, records[..k], "cut={cut}");
            assert_eq!(s.valid_bytes, bounds[k], "cut={cut}");
            assert_eq!(s.corruption.is_none(), cut == bounds[k], "cut={cut}");
        }
    }

    #[test]
    fn bit_flip_detected() {
        let records = sample_records();
        let mut wal = Wal::in_memory(SyncPolicy::Off);
        for r in &records {
            wal.append(r);
        }
        let clean = wal.mem_bytes().unwrap().to_vec();
        let mut bounds = vec![0usize];
        for r in &records {
            bounds.push(bounds.last().unwrap() + r.encode_frame().len());
        }
        for byte in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[byte] ^= 0x10;
            let s = scan(&dirty);
            // The flip lands in frame i; everything before i must
            // survive, nothing from a damaged frame may be replayed.
            let i = bounds.iter().filter(|&&b| b <= byte).count() - 1;
            assert!(s.records.len() <= records.len());
            assert_eq!(
                &s.records[..i.min(s.records.len())],
                &records[..i.min(s.records.len())]
            );
            assert!(
                s.records.len() >= i || s.corruption.is_some(),
                "byte={byte}"
            );
            assert!(
                s.corruption.is_some(),
                "flip at byte {byte} went undetected"
            );
            assert_eq!(s.records, records[..i], "byte={byte}");
        }
    }

    #[test]
    fn batch_append_counts_and_roundtrips() {
        let mut wal = Wal::in_memory(SyncPolicy::Batched(4));
        let batch: Vec<Operation> = (0..3)
            .map(|i| op(7, i, i % 2 == 0, Value::Int(i as i64)))
            .collect();
        wal.append_batch(&batch);
        wal.append_batch(&[]);
        wal.append_batch(&batch[..2]);
        let stats = wal.stats();
        // One framed record per non-empty batch; the empty batch is a
        // no-op on both the wire and the counters.
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.batch_pushes, 2);
        assert_eq!(stats.batched_ops, 5);
        assert_eq!(stats.max_batch, 3);
        // Batched(4) counts records, not carried ops: two records are
        // below the threshold, so no fsync yet.
        assert_eq!(stats.fsyncs, 0);
        let s = scan(wal.mem_bytes().unwrap());
        assert_eq!(
            s.records,
            vec![
                WalRecord::OpBatch(batch.clone()),
                WalRecord::OpBatch(batch[..2].to_vec()),
            ]
        );
        assert_eq!(s.corruption, None);
    }

    #[test]
    fn empty_batch_payload_is_malformed() {
        // An on-the-wire OpBatch with zero ops must not decode: the
        // writer never produces one, so it can only be corruption.
        let payload = vec![TAG_OP_BATCH];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let s = scan(&frame);
        assert_eq!(s.records, vec![]);
        assert!(matches!(
            s.corruption,
            Some(WalCorruption::MalformedPayload { at: 0 })
        ));
    }

    #[test]
    fn dropped_batch_leaves_counters_untouched() {
        let plan = FaultPlan::new()
            .on_wal(WalSite::Append, 0, WalFault::ShortWrite { keep: 1 })
            .share();
        let mut wal = Wal::in_memory(SyncPolicy::Off).with_faults(plan);
        let batch = vec![op(1, 0, true, Value::Int(9))];
        wal.append_batch(&batch);
        let stats = wal.stats();
        assert_eq!(stats.dropped_records, 1);
        assert_eq!(stats.batch_pushes, 0);
        assert_eq!(stats.batched_ops, 0);
        assert_eq!(stats.max_batch, 0);
    }

    #[test]
    fn sync_policy_counts() {
        let records = sample_records();
        let mut per = Wal::in_memory(SyncPolicy::PerRecord);
        let mut batched = Wal::in_memory(SyncPolicy::Batched(3));
        let mut off = Wal::in_memory(SyncPolicy::Off);
        for r in &records {
            per.append(r);
            batched.append(r);
            off.append(r);
        }
        assert_eq!(per.stats().fsyncs, records.len() as u64);
        assert_eq!(batched.stats().fsyncs, (records.len() / 3) as u64);
        assert_eq!(off.stats().fsyncs, 0);
        off.sync();
        assert_eq!(off.stats().fsyncs, 1);
    }

    #[test]
    fn file_sink_roundtrip() {
        let dir = std::env::temp_dir().join("pwsr_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wal_{}.log", std::process::id()));
        let records = sample_records();
        {
            let mut wal = Wal::create(&path, SyncPolicy::Batched(2)).unwrap();
            for r in &records {
                wal.append(r);
            }
            wal.sync();
            assert!(wal.io_error().is_none());
        }
        let bytes = std::fs::read(&path).unwrap();
        let s = scan(&bytes);
        assert_eq!(s.records, records);
        assert_eq!(s.corruption, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn restart_clears_log() {
        let mut wal = Wal::in_memory(SyncPolicy::Off);
        wal.append(&WalRecord::Reset);
        wal.restart();
        assert!(wal.mem_bytes().unwrap().is_empty());
        wal.append(&WalRecord::Floor(3));
        assert_eq!(
            scan(wal.mem_bytes().unwrap()).records,
            vec![WalRecord::Floor(3)]
        );
    }

    #[test]
    fn fail_stop_surfaces_and_counts_drops() {
        let plan = FaultPlan::new()
            .on_wal(WalSite::Append, 2, WalFault::ShortWrite { keep: 3 })
            .share();
        let records = sample_records();
        let mut wal = Wal::in_memory(SyncPolicy::Off).with_faults(plan.clone());
        for r in &records {
            wal.append(r);
        }
        assert!(wal.last_error().is_some(), "fault must surface");
        assert_eq!(wal.stats().appends, 2);
        assert_eq!(wal.stats().io_errors, 1);
        assert_eq!(
            wal.stats().dropped_records,
            records.len() as u64 - 2,
            "every record after the fail-stop must be counted as dropped"
        );
        assert_eq!(plan.injected(), 1);
        // The valid prefix excludes the torn frame.
        let bytes = wal.dump_bytes().unwrap();
        let s = scan(&bytes);
        assert_eq!(s.records, records[..2]);
        assert_eq!(s.corruption, None);
        assert!(wal.take_io_error().is_some());
        assert!(wal.last_error().is_none());
    }

    #[test]
    fn retry_backoff_heals_a_torn_write() {
        let plan = FaultPlan::new()
            .on_wal(WalSite::Append, 1, WalFault::ShortWrite { keep: 5 })
            .share();
        let records = sample_records();
        let mut wal = Wal::in_memory(SyncPolicy::Off)
            .with_faults(plan)
            .with_error_policy(WalErrorPolicy::RetryBackoff {
                attempts: 3,
                cap_us: 10,
            });
        for r in &records {
            wal.append(r);
        }
        assert!(wal.last_error().is_none(), "retry must heal the fault");
        assert_eq!(wal.stats().appends, records.len() as u64);
        assert_eq!(wal.stats().io_errors, 1);
        assert_eq!(wal.stats().retries, 1);
        assert_eq!(wal.stats().dropped_records, 0);
        // The repaired log holds every record, no torn bytes between.
        let s = scan(&wal.dump_bytes().unwrap());
        assert_eq!(s.records, records);
        assert_eq!(s.corruption, None);
    }

    #[test]
    fn retry_exhaustion_escalates_to_fail_stop() {
        let mut plan = FaultPlan::new();
        for idx in 1..6 {
            plan = plan.on_wal(WalSite::Append, idx, WalFault::ShortWrite { keep: 2 });
        }
        let mut wal = Wal::in_memory(SyncPolicy::Off)
            .with_faults(plan.share())
            .with_error_policy(WalErrorPolicy::RetryBackoff {
                attempts: 3,
                cap_us: 10,
            });
        for r in sample_records().iter().take(3) {
            wal.append(r);
        }
        assert!(wal.last_error().is_some(), "persistent fault must escalate");
        assert!(wal.stats().dropped_records >= 1);
        let s = scan(&wal.dump_bytes().unwrap());
        assert_eq!(s.records, sample_records()[..1]);
    }

    #[test]
    fn degrade_to_memory_loses_nothing() {
        let dir = std::env::temp_dir().join("pwsr_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wal_degrade_{}.log", std::process::id()));
        let plan = FaultPlan::new()
            .on_wal(WalSite::Append, 3, WalFault::ShortWrite { keep: 1 })
            .share();
        let records = sample_records();
        let mut wal = Wal::create(&path, SyncPolicy::Batched(2))
            .unwrap()
            .with_faults(plan)
            .with_error_policy(WalErrorPolicy::DegradeToMemory);
        for r in &records {
            wal.append(r);
        }
        assert!(wal.last_error().is_none());
        assert!(wal.stats().degraded);
        assert_eq!(wal.stats().appends, records.len() as u64);
        // Full logical log = surviving file prefix ++ memory tail.
        let s = scan(&wal.dump_bytes().unwrap());
        assert_eq!(s.records, records);
        assert_eq!(s.corruption, None);
        // The abandoned file still scans cleanly up to the tear.
        let on_disk = scan(&std::fs::read(&path).unwrap());
        assert_eq!(on_disk.records, records[..3]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_failure_policies() {
        // Fail-stop: surfaced.
        let plan = FaultPlan::new()
            .on_wal(WalSite::Sync, 0, WalFault::SyncFail)
            .share();
        let mut wal = Wal::in_memory(SyncPolicy::PerRecord).with_faults(plan);
        wal.append(&WalRecord::Reset);
        assert!(wal.last_error().is_some());
        // Retry: healed.
        let plan = FaultPlan::new()
            .on_wal(WalSite::Sync, 0, WalFault::SyncFail)
            .share();
        let mut wal = Wal::in_memory(SyncPolicy::PerRecord)
            .with_faults(plan)
            .with_error_policy(WalErrorPolicy::RetryBackoff {
                attempts: 2,
                cap_us: 10,
            });
        wal.append(&WalRecord::Reset);
        assert!(wal.last_error().is_none());
        assert_eq!(wal.stats().retries, 1);
        assert_eq!(wal.stats().fsyncs, 1);
    }

    #[test]
    fn rotate_failure_degrades_to_fresh_memory_log() {
        let dir = std::env::temp_dir().join("pwsr_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wal_rotate_{}.log", std::process::id()));
        let plan = FaultPlan::new()
            .on_wal(WalSite::Rotate, 0, WalFault::RotateFail)
            .share();
        let mut wal = Wal::create(&path, SyncPolicy::Off)
            .unwrap()
            .with_faults(plan)
            .with_error_policy(WalErrorPolicy::DegradeToMemory);
        wal.append(&WalRecord::Reset);
        wal.restart();
        assert!(wal.last_error().is_none());
        assert!(wal.stats().degraded);
        // The post-rotation log is empty and lives in memory.
        assert!(wal.dump_bytes().unwrap().is_empty());
        wal.append(&WalRecord::Floor(2));
        assert_eq!(
            scan(&wal.dump_bytes().unwrap()).records,
            vec![WalRecord::Floor(2)]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dump_bytes_matches_file_contents() {
        let dir = std::env::temp_dir().join("pwsr_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wal_dump_{}.log", std::process::id()));
        let records = sample_records();
        let mut wal = Wal::create(&path, SyncPolicy::Off).unwrap();
        for r in &records {
            wal.append(r);
        }
        let dumped = wal.dump_bytes().unwrap();
        assert_eq!(scan(&dumped).records, records);
        wal.sync();
        assert_eq!(std::fs::read(&path).unwrap(), dumped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_wal_is_a_journal() {
        let shared = SharedWal::in_memory(SyncPolicy::Off);
        let mut journal: Box<dyn MonitorJournal> = Box::new(shared.clone());
        journal.appended(&op(0, 0, false, Value::Int(1)));
        journal.truncated(0);
        journal.floor_raised(0);
        journal.reset();
        let s = scan(&shared.snapshot().unwrap());
        assert_eq!(s.records.len(), 4);
        assert_eq!(s.records[1], WalRecord::Truncate(0));
        assert_eq!(s.records[2], WalRecord::Floor(0));
        assert_eq!(s.records[3], WalRecord::Reset);
        assert_eq!(shared.stats().appends, 4);
    }
}
