//! Hashed checkpoints: a durable snapshot of the monitor's permanent
//! prefix (the operations at or below the retraction floor), sealed
//! with a SHA-256 **state hash** over the schedule prefix, the full
//! verdict ladder, and the floor itself. Recovery rebuilds the prefix,
//! recomputes the hash, and refuses to proceed on any mismatch — so a
//! checkpoint can never silently diverge from the state it claims.
//!
//! # File format (`PWSRCKP1`)
//!
//! ```text
//! magic "PWSRCKP1" | floor u64 LE | n_ops u64 LE |
//!   n_ops × [len u32 LE | op body]               |
//!   state hash [u8; 32] | crc32 u32 LE (all preceding bytes)
//! ```

use std::fmt;

use pwsr_core::monitor::{OnlineMonitor, Verdict, VerdictLevel};
use pwsr_core::op::Operation;

use crate::crc32::crc32;
use crate::sha256::Sha256;
use crate::wal::encode_op_into;

const MAGIC: &[u8; 8] = b"PWSRCKP1";

/// A 32-byte state digest, hex-printable.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateHash(pub [u8; 32]);

impl fmt::Debug for StateHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateHash({self})")
    }
}

impl fmt::Display for StateHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

fn level_rank(level: VerdictLevel) -> u8 {
    match level {
        VerdictLevel::Serializable => 0,
        VerdictLevel::DrPreserving => 1,
        VerdictLevel::Pwsr => 2,
        VerdictLevel::Violation => 3,
    }
}

fn hash_opt_index(h: &mut Sha256, idx: Option<pwsr_core::ids::OpIndex>) {
    h.update(&idx.map_or(u64::MAX, |p| p.0 as u64).to_le_bytes());
}

/// The canonical digest of a monitor's observable state: schedule
/// prefix (byte-exact op encoding), every `Verdict` field, and the
/// undo-log floor. Two monitors with equal state hashes agree on the
/// recorded schedule, the entire verdict ladder (level, serializable,
/// DR, all three first-failure positions, both lemma certificates),
/// and which prefix is permanent.
pub fn state_hash(monitor: &OnlineMonitor) -> StateHash {
    let mut h = Sha256::new();
    h.update(b"pwsr-state-v1\0");
    let ops = monitor.schedule().ops();
    h.update(&(ops.len() as u64).to_le_bytes());
    let mut buf = Vec::with_capacity(32);
    for op in ops {
        buf.clear();
        encode_op_into(&mut buf, op);
        h.update(&(buf.len() as u32).to_le_bytes());
        h.update(&buf);
    }
    let v: Verdict = monitor.verdict();
    h.update(&(v.len as u64).to_le_bytes());
    h.update(&[
        level_rank(v.level),
        v.serializable as u8,
        v.dr as u8,
        v.lemma2_certified as u8,
        v.lemma6_certified as u8,
    ]);
    hash_opt_index(&mut h, v.first_violation);
    hash_opt_index(&mut h, v.first_non_serializable);
    hash_opt_index(&mut h, v.first_non_dr);
    h.update(&(monitor.log_floor() as u64).to_le_bytes());
    StateHash(h.finalize())
}

/// A snapshot of the permanent prefix: the `floor` operations at or
/// below the retraction floor, plus the state hash of the monitor
/// state those operations reconstruct (floor raised to `floor`).
///
/// Scopes are *not* stored: a checkpoint is only meaningful to the
/// owner of the monitor configuration, which supplies them at
/// recovery — the hash then proves the combination is the right one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The retraction floor at capture time.
    pub floor: usize,
    /// The schedule prefix `[0, floor)`.
    pub ops: Vec<Operation>,
    /// State hash of the floor-prefix monitor (see [`state_hash`]).
    pub hash: StateHash,
}

/// Why a checkpoint failed to decode or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Shorter than its fixed framing.
    Truncated,
    /// The first 8 bytes are not `PWSRCKP1`.
    BadMagic,
    /// The trailing CRC-32 does not match.
    BadCrc,
    /// Structurally invalid (op count / lengths inconsistent).
    Malformed,
    /// Replaying the stored prefix produced a different state hash
    /// than the checkpoint claims (wrong scopes, or tampered file).
    HashMismatch {
        /// The hash the checkpoint file claims.
        expected: StateHash,
        /// The hash the replayed prefix actually produced.
        actual: StateHash,
    },
    /// The stored prefix is not even a valid schedule (§2.2).
    InvalidPrefix(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadCrc => write!(f, "checkpoint CRC mismatch"),
            CheckpointError::Malformed => write!(f, "malformed checkpoint"),
            CheckpointError::HashMismatch { expected, actual } => {
                write!(
                    f,
                    "checkpoint state-hash mismatch: stored {expected}, replayed {actual}"
                )
            }
            CheckpointError::InvalidPrefix(e) => write!(f, "invalid checkpoint prefix: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Capture the permanent prefix of `monitor`. The hash is computed
    /// by replaying the prefix into a fresh twin — O(floor), and
    /// self-validating: capture fails loudly (panics) if the prefix
    /// does not replay, which would indicate monitor corruption.
    ///
    /// # Panics
    ///
    /// If the monitor has already **compacted** part of its schedule
    /// away (`schedule().base() > 0`) the summarized operations no
    /// longer exist to snapshot; chain from the checkpoint that covers
    /// them with [`Checkpoint::capture_after`] instead.
    pub fn capture(monitor: &OnlineMonitor) -> Checkpoint {
        assert_eq!(
            monitor.schedule().base(),
            0,
            "monitor has compacted its prefix away; chain from the \
             previous checkpoint with Checkpoint::capture_after"
        );
        let floor = monitor.log_floor();
        let ops = monitor.schedule().ops()[..floor].to_vec();
        let twin = replay_prefix(monitor.scopes().to_vec(), &ops, floor)
            .expect("a monitor's own permanent prefix must replay");
        Checkpoint {
            floor,
            ops,
            hash: state_hash(&twin),
        }
    }

    /// Capture the permanent prefix of a monitor that may already have
    /// **compacted** ([`OnlineMonitor::compact`]) part of that prefix
    /// away, by chaining from the previous checkpoint: `prev` supplies
    /// the operations below its own floor (which by the frontier
    /// invariant covers everything the monitor summarized), and the
    /// monitor's live tail supplies the rest up to the current floor.
    /// The stored hash is, as in [`Checkpoint::capture`], that of the
    /// *uncompacted* floor-prefix twin — so recovery validates it the
    /// same way whether or not compaction ever ran.
    ///
    /// # Panics
    ///
    /// If `prev` does not reach the monitor's compaction point
    /// (`prev.floor < schedule().base()`), or the floor regressed
    /// below `prev.floor` — both impossible for checkpoints taken from
    /// this monitor in order.
    pub fn capture_after(prev: &Checkpoint, monitor: &OnlineMonitor) -> Checkpoint {
        let floor = monitor.log_floor();
        let base = monitor.schedule().base();
        assert!(
            prev.floor >= base,
            "previous checkpoint (floor {}) does not cover the \
             summarized prefix (base {base})",
            prev.floor
        );
        assert!(
            floor >= prev.floor,
            "retraction floor {floor} regressed below the previous \
             checkpoint's floor {}",
            prev.floor
        );
        let mut ops = prev.ops.clone();
        ops.extend_from_slice(&monitor.schedule().ops()[prev.floor - base..floor - base]);
        let twin = replay_prefix(monitor.scopes().to_vec(), &ops, floor)
            .expect("a monitor's own permanent prefix must replay");
        Checkpoint {
            floor,
            ops,
            hash: state_hash(&twin),
        }
    }

    /// Serialize to the `PWSRCKP1` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.ops.len() * 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.floor as u64).to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        let mut buf = Vec::with_capacity(32);
        for op in &self.ops {
            buf.clear();
            encode_op_into(&mut buf, op);
            out.extend_from_slice(&(buf.len() as u32).to_le_bytes());
            out.extend_from_slice(&buf);
        }
        out.extend_from_slice(&self.hash.0);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-validate (the hash is *not* replay-verified
    /// here; that happens at [`recover`](crate::recover::recover),
    /// which has the scopes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() + 8 + 8 + 32 + 4 {
            return Err(CheckpointError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != crc {
            return Err(CheckpointError::BadCrc);
        }
        let floor = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
        let n_ops = u64::from_le_bytes(body[16..24].try_into().unwrap()) as usize;
        let mut at = 24usize;
        let mut ops = Vec::with_capacity(n_ops.min(1 << 20));
        for _ in 0..n_ops {
            let len_raw = body.get(at..at + 4).ok_or(CheckpointError::Malformed)?;
            let len = u32::from_le_bytes(len_raw.try_into().unwrap()) as usize;
            at += 4;
            let op_bytes = body.get(at..at + len).ok_or(CheckpointError::Malformed)?;
            let rec = crate::wal::WalRecord::decode_op_body(op_bytes)
                .ok_or(CheckpointError::Malformed)?;
            ops.push(rec);
            at += len;
        }
        if at + 32 != body.len() {
            return Err(CheckpointError::Malformed);
        }
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&body[at..at + 32]);
        Ok(Checkpoint {
            floor,
            ops,
            hash: StateHash(hash),
        })
    }
}

/// Advance the shared durable frontier in one motion — the
/// checkpoint / WAL-truncation / compaction pairing PR 7 deferred:
///
/// 1. **Checkpoint** the permanent prefix (chained via
///    [`Checkpoint::capture_after`] when `prev` is supplied, so the
///    monitor may already be compacted);
/// 2. **Restart the WAL** ([`Wal::restart`](crate::wal::Wal::restart))
///    and re-journal the live tail above the floor, so
///    `checkpoint + WAL` still reconstructs the exact monitor state —
///    everything below the floor now lives only in the checkpoint;
/// 3. **Compact** the monitor's committed prefix
///    ([`OnlineMonitor::compact`]), reclaiming the structures the
///    checkpoint just made durable.
///
/// Returns the new checkpoint (persist it before trusting the
/// truncated WAL!) and the compaction stats. The caller must quiesce
/// the monitor for the duration — this is a maintenance operation,
/// not a concurrent one — and should note the WAL is truncated *in
/// place*: a crash between steps 2 and 3 with the checkpoint not yet
/// persisted loses the prefix, so persist-then-restart ordering is on
/// the caller when the WAL and checkpoint live on real storage.
///
/// Recovery after this call is `recover(scopes, Some(&ckp), wal)` —
/// it rebuilds the *uncompacted* state and may then re-run
/// `finish_txn`/`compact` to reach the same resident shape; verdicts
/// agree either way (the twin-harness property).
pub fn advance_frontier(
    monitor: &mut OnlineMonitor,
    wal: &crate::wal::SharedWal,
    prev: Option<&Checkpoint>,
) -> (Checkpoint, pwsr_core::monitor::CompactStats) {
    let ckp = match prev {
        Some(p) => Checkpoint::capture_after(p, monitor),
        None => Checkpoint::capture(monitor),
    };
    let base = monitor.schedule().base();
    let tail = &monitor.schedule().ops()[ckp.floor - base..];
    wal.with(|w| {
        w.restart();
        for op in tail {
            w.append_op(op);
        }
        w.sync();
    });
    let stats = monitor.compact();
    (ckp, stats)
}

/// Replay `ops` into a fresh monitor over `scopes` and raise the floor
/// to `floor` — the canonical "rebuild the checkpoint state" step.
pub(crate) fn replay_prefix(
    scopes: Vec<pwsr_core::state::ItemSet>,
    ops: &[Operation],
    floor: usize,
) -> Result<OnlineMonitor, pwsr_core::error::CoreError> {
    let mut m = OnlineMonitor::new(scopes);
    for op in ops {
        m.push_logged(op.clone())?;
    }
    m.checkpoint(floor);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::ids::{ItemId, TxnId};
    use pwsr_core::state::ItemSet;
    use pwsr_core::value::Value;

    fn scopes() -> Vec<ItemSet> {
        let mut a = ItemSet::new();
        a.insert(ItemId(0));
        a.insert(ItemId(1));
        let mut b = ItemSet::new();
        b.insert(ItemId(2));
        b.insert(ItemId(3));
        vec![a, b]
    }

    fn sample_monitor() -> OnlineMonitor {
        let mut m = OnlineMonitor::new(scopes());
        m.push_logged(Operation::write(TxnId(1), ItemId(0), Value::Int(5)))
            .unwrap();
        m.push_logged(Operation::read(TxnId(2), ItemId(0), Value::Int(5)))
            .unwrap();
        m.push_logged(Operation::write(TxnId(2), ItemId(2), Value::Int(9)))
            .unwrap();
        m.push_logged(Operation::read(TxnId(1), ItemId(3), Value::Int(0)))
            .unwrap();
        m.checkpoint(2);
        m
    }

    #[test]
    fn state_hash_is_deterministic_and_sensitive() {
        let m1 = sample_monitor();
        let m2 = sample_monitor();
        assert_eq!(state_hash(&m1), state_hash(&m2));
        let mut m3 = sample_monitor();
        m3.push_logged(Operation::write(TxnId(3), ItemId(1), Value::Int(1)))
            .unwrap();
        assert_ne!(state_hash(&m1), state_hash(&m3));
        // Floor alone changes the hash: same schedule, different
        // permanent prefix.
        let mut m4 = sample_monitor();
        m4.checkpoint(3);
        assert_ne!(state_hash(&m1), state_hash(&m4));
    }

    #[test]
    fn capture_roundtrip() {
        let m = sample_monitor();
        let ckp = Checkpoint::capture(&m);
        assert_eq!(ckp.floor, 2);
        assert_eq!(ckp.ops.len(), 2);
        let bytes = ckp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckp);
    }

    #[test]
    fn corruption_rejected() {
        let bytes = Checkpoint::capture(&sample_monitor()).to_bytes();
        assert_eq!(
            Checkpoint::from_bytes(&bytes[..10]),
            Err(CheckpointError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        );
        for i in 8..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert_eq!(
                Checkpoint::from_bytes(&flipped),
                Err(CheckpointError::BadCrc),
                "flip at byte {i} not caught by CRC"
            );
        }
    }
}
