//! View sets `VS(T_i, p, d, S)` — Lemma 2 and Lemma 6.
//!
//! The *view set* of transaction `T_i` before operation `p` with respect
//! to data set `d` over-approximates the items `T_i` may have read
//! before `p`:
//!
//! * **Lemma 2** (general schedules): before `p`, a transaction can
//!   read all items except those written *after* `p` by transactions
//!   serialized before it:
//!   `VS(T_1) = d`, `VS(T_i) = VS(T_{i-1}) − WS(after(T^d_{i-1}, p, S))`.
//! * **Lemma 6** (DR schedules): items written by *incomplete*
//!   predecessors are excluded outright, but items written by
//!   *completed* predecessors are added back:
//!   `VS(T_i) = VS(T_{i-1}) − WS(T^d_{i-1})` if `after(T_{i-1}, p, S) ≠ ε`,
//!   `VS(T_i) = VS(T_{i-1}) ∪ WS(T^d_{i-1})` otherwise.
//!
//! Both lemmas assert `RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S)`; the
//! inclusion checkers below let tests and benches verify this on every
//! schedule prefix, which is exactly how the paper's operation-indexed
//! induction uses them.

use crate::ids::{OpIndex, TxnId};
use crate::op;
use crate::schedule::Schedule;
use crate::state::ItemSet;

/// Lemma 2's view sets, one per transaction of `order` (a serialization
/// order of `S^d`), all relative to operation `p`.
pub fn view_sets_general(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    p: OpIndex,
) -> Vec<ItemSet> {
    let mut out = Vec::with_capacity(order.len());
    let mut current = d.clone();
    for (i, &t) in order.iter().enumerate() {
        if i > 0 {
            let prev = order[i - 1];
            let written_after = op::write_set(&schedule.after_txn_proj(prev, d, p));
            current = current.difference(&written_after);
        }
        out.push(current.clone());
        let _ = t;
    }
    out
}

/// Lemma 6's view sets for DR schedules.
pub fn view_sets_dr(schedule: &Schedule, d: &ItemSet, order: &[TxnId], p: OpIndex) -> Vec<ItemSet> {
    let mut out = Vec::with_capacity(order.len());
    let mut current = d.clone();
    for (i, &t) in order.iter().enumerate() {
        if i > 0 {
            let prev = order[i - 1];
            let ws_prev = op::write_set(&schedule.before_txn_proj(prev, d, p))
                .union(&op::write_set(&schedule.after_txn_proj(prev, d, p)));
            if schedule.txn_finished_by(prev, p) {
                // after(T_{i-1}, p, S) = ε: its writes become readable.
                current = current.union(&ws_prev);
            } else {
                current = current.difference(&ws_prev);
            }
        }
        out.push(current.clone());
        let _ = t;
    }
    out
}

/// Check Lemma 2's inclusion `RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S)`
/// for every transaction in `order`, at operation `p`.
pub fn lemma2_inclusion_holds(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    p: OpIndex,
) -> bool {
    let vs = view_sets_general(schedule, d, order, p);
    order
        .iter()
        .zip(&vs)
        .all(|(&t, v)| op::read_set(&schedule.before_txn_proj(t, d, p)).is_subset(v))
}

/// Check Lemma 6's inclusion for DR schedules at operation `p`.
pub fn lemma6_inclusion_holds(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    p: OpIndex,
) -> bool {
    let vs = view_sets_dr(schedule, d, order, p);
    order
        .iter()
        .zip(&vs)
        .all(|(&t, v)| op::read_set(&schedule.before_txn_proj(t, d, p)).is_subset(v))
}

/// Check a lemma's inclusion at **every** operation of the schedule —
/// the full sweep the induction performs.
pub fn inclusion_holds_everywhere(
    schedule: &Schedule,
    d: &ItemSet,
    order: &[TxnId],
    dr: bool,
) -> bool {
    schedule.positions().all(|p| {
        if dr {
            lemma6_inclusion_holds(schedule, d, order, p)
        } else {
            lemma2_inclusion_holds(schedule, d, order, p)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ItemId;
    use crate::op::Operation;
    use crate::pwsr::is_pwsr;
    use crate::serializability::serialization_order;
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    /// Example 2's schedule, d1 = {a,b} (items 0,1), d2 = {c} (item 2).
    fn example2() -> Schedule {
        Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ])
        .unwrap()
    }

    #[test]
    fn lemma2_base_case_is_d() {
        let s = example2();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let vs = view_sets_general(&s, &d, &[TxnId(1), TxnId(2)], OpIndex(0));
        assert_eq!(vs[0], d);
    }

    #[test]
    fn lemma2_excludes_items_written_after_p() {
        // d = {a, b}; serialization order of S^{d1} is T1, T2.
        // At p = position 0 (w1(a,1)): T1 writes nothing in d after p
        // (w1(a) is at p itself, `after` is strict) … so VS(T2) = d.
        let s = example2();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let vs = view_sets_general(&s, &d, &[TxnId(1), TxnId(2)], OpIndex(0));
        assert_eq!(vs[1], d);

        // For a variant where T1's write of a comes *after* p, VS(T2)
        // must exclude a.
        let s2 = Schedule::new(vec![
            rd(1, 2, 1), // p here
            wr(1, 0, 1), // T1 writes a after p
            rd(2, 0, 1),
            rd(2, 1, -1),
        ])
        .unwrap();
        let vs = view_sets_general(&s2, &d, &[TxnId(1), TxnId(2)], OpIndex(0));
        assert_eq!(vs[0], d);
        assert!(!vs[1].contains(ItemId(0)));
        assert!(vs[1].contains(ItemId(1)));
    }

    #[test]
    fn lemma2_inclusion_on_example2_projections() {
        // Lemma 2 holds per conjunct on Example 2's schedule (the lemma
        // is unconditional given serializability of the projection).
        use crate::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
        let (a, b, c) = (ItemId(0), ItemId(1), ItemId(2));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap();
        let s = example2();
        let report = is_pwsr(&s, &ic);
        assert!(report.ok());
        for (conj, verdict) in ic.conjuncts().iter().zip(&report.per_conjunct) {
            let order = verdict.order.clone().unwrap();
            assert!(inclusion_holds_everywhere(&s, conj.items(), &order, false));
        }
    }

    #[test]
    fn lemma6_completed_predecessor_items_are_added_back() {
        // DR schedule: T1 finishes, then T2 reads T1's write.
        let s = Schedule::new(vec![wr(1, 0, 1), rd(2, 0, 1), wr(2, 1, 2)]).unwrap();
        assert!(crate::dr::is_delayed_read(&s));
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let order = serialization_order(&s).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2)]);
        // At p = position 1 (the read), T1 is finished: VS(T2) ⊇ {a}.
        let vs = view_sets_dr(&s, &d, &order, OpIndex(1));
        assert!(vs[1].contains(ItemId(0)));
        assert!(lemma6_inclusion_holds(&s, &d, &order, OpIndex(1)));
    }

    #[test]
    fn lemma6_incomplete_predecessor_items_are_removed() {
        // T1 writes a but is NOT finished at p: VS(T2) excludes a.
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 1, 0), // p = here; T1 still has an op coming
            wr(1, 1, 9),
        ])
        .unwrap();
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let vs = view_sets_dr(&s, &d, &[TxnId(1), TxnId(2)], OpIndex(1));
        assert!(!vs[1].contains(ItemId(0)));
    }

    #[test]
    fn dr_viewset_at_least_general_after_completion() {
        // Once every earlier transaction has finished, Lemma 6's set is
        // a superset of Lemma 2's (writes get added back).
        let s = Schedule::new(vec![wr(1, 0, 1), rd(1, 1, 0), rd(2, 0, 1), wr(2, 1, 2)]).unwrap();
        assert!(crate::dr::is_delayed_read(&s));
        let d = ItemSet::from_iter([ItemId(0), ItemId(1)]);
        let order = vec![TxnId(1), TxnId(2)];
        let p = OpIndex(3);
        let gen = view_sets_general(&s, &d, &order, p);
        let drv = view_sets_dr(&s, &d, &order, p);
        for (g, v) in gen.iter().zip(&drv) {
            assert!(g.is_subset(v), "general {g:?} ⊄ dr {v:?}");
        }
    }

    #[test]
    fn inclusion_sweep_on_serial_schedule() {
        let s = Schedule::new(vec![wr(1, 0, 1), wr(2, 0, 2), rd(3, 0, 2)]).unwrap();
        let d = ItemSet::from_iter([ItemId(0)]);
        let order = serialization_order(&s).unwrap();
        assert!(inclusion_holds_everywhere(&s, &d, &order, false));
        assert!(inclusion_holds_everywhere(&s, &d, &order, true));
    }
}
