//! Access plans: predicted operation structures.
//!
//! Early per-conjunct lock release needs to know that a transaction
//! will not touch a conjunct again. For **fixed-structure** programs
//! (Definition 3) the operation structure is state-independent, so one
//! probe execution yields an *exact* plan; for anything else no sound
//! plan exists and the executor holds locks to transaction end. This is
//! a pleasing operational echo of Theorem 1: the programs whose locks
//! can be released early are exactly the programs for which PWSR is
//! safe.

use pwsr_core::catalog::Catalog;
use pwsr_core::op::OpStruct;
use pwsr_core::state::DbState;
use pwsr_tplang::analysis::{static_structure, structure_of};
use pwsr_tplang::ast::Program;

/// How plans are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMode {
    /// No plans: every policy holds locks to transaction end.
    None,
    /// Exact plans for programs the static prover certifies as
    /// fixed-structure; `None` for the rest.
    ExactIfFixed,
}

/// The access plan for `program`, per `mode`. A plan is the program's
/// (state-independent) operation structure.
pub fn access_plan(program: &Program, catalog: &Catalog, mode: PlanMode) -> Option<Vec<OpStruct>> {
    match mode {
        PlanMode::None => None,
        PlanMode::ExactIfFixed => {
            if !static_structure(program, catalog).is_fixed() {
                return None;
            }
            // Fixed structure: any total probe state gives the plan.
            let mut probe = DbState::new();
            for item in catalog.items() {
                probe.set(item, catalog.domain(item).any_value());
            }
            structure_of(program, catalog, &probe).ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::op::Action;
    use pwsr_core::value::Domain;
    use pwsr_tplang::parser::parse_program;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for n in ["a", "b", "c"] {
            cat.add_item(n, Domain::int_range(-5, 5));
        }
        cat
    }

    #[test]
    fn fixed_program_gets_exact_plan() {
        let cat = catalog();
        let p = parse_program("P", "b := c - 1;").unwrap();
        let plan = access_plan(&p, &cat, PlanMode::ExactIfFixed).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].action, Action::Read);
        assert_eq!(plan[1].action, Action::Write);
    }

    #[test]
    fn non_fixed_program_gets_none() {
        let cat = catalog();
        let p = parse_program("P", "if (c > 0) then b := 1;").unwrap();
        assert!(access_plan(&p, &cat, PlanMode::ExactIfFixed).is_none());
    }

    #[test]
    fn mode_none_disables_plans() {
        let cat = catalog();
        let p = parse_program("P", "b := 1;").unwrap();
        assert!(access_plan(&p, &cat, PlanMode::None).is_none());
    }

    #[test]
    fn plan_matches_every_state_for_fixed_programs() {
        // The plan equals the structure from *any* state.
        let cat = catalog();
        let p = parse_program("P", "if (c > 0) then { b := 1; } else { b := 2; }").unwrap();
        let plan = access_plan(&p, &cat, PlanMode::ExactIfFixed).unwrap();
        use pwsr_core::value::Value;
        for cv in [-2i64, 0, 2] {
            let st = DbState::from_pairs([
                (cat.lookup("c").unwrap(), Value::Int(cv)),
                (cat.lookup("b").unwrap(), Value::Int(0)),
            ]);
            assert_eq!(structure_of(&p, &cat, &st).unwrap(), plan);
        }
    }
}
