//! The data access graph `DAG(S, IC)` of §3.3.
//!
//! One node per conjunct; a directed edge `(C_i, C_j)`, `i ≠ j`, when
//! some transaction in `S` *reads* an item in `d_i` and *writes* an item
//! in `d_j`. Theorem 3: a PWSR schedule with an acyclic data access
//! graph is strongly correct — the topological order of conjuncts gives
//! the induction order for the proof, and an operational scheduler can
//! enforce it by ordering data accesses (see
//! `pwsr-scheduler::dag_order`).

use crate::constraint::IntegrityConstraint;
use crate::graph::{DiGraph, IncrementalDag};
use crate::ids::{ConjunctId, OpIndex};
use crate::schedule::Schedule;
use crate::state::ItemSet;

/// The data access graph over conjuncts.
#[derive(Clone, Debug)]
pub struct DataAccessGraph {
    graph: DiGraph,
}

impl DataAccessGraph {
    /// The underlying digraph (node `k` = conjunct `k` of the IC).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Is the graph acyclic (Theorem 3's hypothesis)?
    pub fn is_acyclic(&self) -> bool {
        !self.graph.has_cycle()
    }

    /// A topological ordering of the conjuncts, if acyclic. Theorem 3's
    /// proof: *"every transaction that updates a data item in d_k only
    /// reads data items belonging to conjuncts d_1 … d_k"* under this
    /// ordering.
    pub fn topological_order(&self) -> Option<Vec<ConjunctId>> {
        self.graph
            .topo_sort()
            .map(|o| o.into_iter().map(|k| ConjunctId(k as u32)).collect())
    }

    /// A cycle of conjuncts witnessing a Theorem 3 violation, if any.
    pub fn cycle(&self) -> Option<Vec<ConjunctId>> {
        self.graph
            .find_cycle()
            .map(|c| c.into_iter().map(|k| ConjunctId(k as u32)).collect())
    }

    /// Is the edge `C_i → C_j` present?
    pub fn has_edge(&self, i: ConjunctId, j: ConjunctId) -> bool {
        self.graph.has_edge(i.index(), j.index())
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Build `DAG(S, IC)`.
///
/// Note the definition ranges over *transactions*, not operations: the
/// edge `(C_i, C_j)` appears if one transaction both reads from `d_i`
/// and writes to `d_j` — regardless of the order of those two
/// operations inside the transaction.
///
/// Read/write sets are accumulated as bitsets in one pass over the
/// operation sequence (no per-transaction operation clones), and each
/// conjunct-overlap test is a word-wise disjointness check.
pub fn data_access_graph(schedule: &Schedule, ic: &IntegrityConstraint) -> DataAccessGraph {
    use crate::state::ItemSet;
    use std::collections::HashMap;

    let n_txns = schedule.txn_ids().len();
    let slot_of: HashMap<crate::ids::TxnId, usize> = schedule
        .txn_ids()
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i))
        .collect();
    let mut rs: Vec<ItemSet> = vec![ItemSet::new(); n_txns];
    let mut ws: Vec<ItemSet> = vec![ItemSet::new(); n_txns];
    for o in schedule.ops() {
        let k = slot_of[&o.txn];
        if o.is_read() {
            rs[k].insert(o.item);
        } else {
            ws[k].insert(o.item);
        }
    }
    let l = ic.len();
    let mut graph = DiGraph::new(l);
    for k in 0..n_txns {
        for (i, ci) in ic.conjuncts().iter().enumerate() {
            if rs[k].is_disjoint(ci.items()) {
                continue;
            }
            for (j, cj) in ic.conjuncts().iter().enumerate() {
                if i != j && !ws[k].is_disjoint(cj.items()) {
                    graph.add_edge(i, j);
                }
            }
        }
    }
    DataAccessGraph { graph }
}

/// The deltas one [`OnlineAccessDag::record_logged`] call applied —
/// enough to retract it exactly, in LIFO (journal) order.
#[derive(Clone, Debug, Default)]
pub struct AccessDagDelta {
    /// The entity's read- or write-unit bit was freshly set.
    fresh_bit: bool,
    /// Unit edges freshly inserted, in insertion order.
    edges: Vec<(u32, u32)>,
    /// This access froze the graph (first cycle observed here).
    froze: bool,
}

/// `DAG(S, IC)` maintained **incrementally**, one access at a time.
///
/// Nodes are `l` fixed *units* (conjuncts here; the scheduler reuses
/// this with guarded lock spaces as units). Per accessing entity
/// (transaction slot) the unit read/write sets are kept as bitsets;
/// a new access adds exactly the §3.3 edges it induces — read of unit
/// `i` by an entity that writes units `J` adds `i → j` for `j ∈ J`,
/// write of `j` by an entity that reads `I` adds `i → j` for `i ∈ I`
/// — into an [`IncrementalDag`], so Theorem 3's hypothesis is decided
/// per access instead of by an `O(n)` rebuild from the trace.
///
/// Two modes share the structure:
///
/// * **observational** ([`OnlineAccessDag::record`]): accesses are
///   always recorded; the first cycle-closing edge *freezes* the
///   graph (`DAG` cyclicity is monotone — edges are never removed by
///   forward execution) and pins [`OnlineAccessDag::first_cycle`];
/// * **preventive** ([`OnlineAccessDag::admits`]): a probe inserts
///   the candidate edges and retracts them LIFO, deciding whether the
///   access would keep the graph acyclic without committing it — the
///   scheduler's runtime Theorem-3 guard.
#[derive(Clone, Debug, Default)]
pub struct OnlineAccessDag {
    dag: IncrementalDag,
    /// Per entity: units it has read / written (as ItemSet bitsets
    /// over unit indices).
    rs: Vec<ItemSet>,
    ws: Vec<ItemSet>,
    /// Tag of the access that first made the graph cyclic.
    cyclic_at: Option<OpIndex>,
}

impl OnlineAccessDag {
    /// An access DAG over `l` units.
    pub fn new(l: usize) -> OnlineAccessDag {
        let mut dag = IncrementalDag::new();
        for _ in 0..l {
            dag.add_node();
        }
        OnlineAccessDag {
            dag,
            rs: Vec::new(),
            ws: Vec::new(),
            cyclic_at: None,
        }
    }

    /// Number of units.
    pub fn units(&self) -> usize {
        self.dag.len()
    }

    /// Is the maintained graph still acyclic?
    pub fn is_acyclic(&self) -> bool {
        self.cyclic_at.is_none()
    }

    /// Tag of the access that first closed a cycle, if any.
    pub fn first_cycle(&self) -> Option<OpIndex> {
        self.cyclic_at
    }

    /// A topological order of the units while acyclic (Theorem 3's
    /// induction order), `None` once cyclic.
    pub fn unit_order(&self) -> Option<Vec<ConjunctId>> {
        self.is_acyclic()
            .then(|| self.dag.order().iter().map(|&u| ConjunctId(u)).collect())
    }

    /// Drop all recorded accesses (the scheduler resyncs after an
    /// abort rewrote its trace).
    pub fn clear(&mut self) {
        *self = OnlineAccessDag::new(self.units());
    }

    /// Drop the per-entity unit-access rows of the first `s_cut`
    /// (summarized) transaction slots, shifting surviving entities
    /// down to match a compacted schedule's slot numbering. The unit
    /// DAG and its edges are untouched: §3.3 edges are facts of the
    /// permanent prefix and `DAG(S, IC)` cyclicity is monotone, so
    /// `admits`/`record` decisions for surviving entities are
    /// unchanged — a summarized transaction is finished and can never
    /// access again, so its rows can no longer induce new edges.
    pub fn compact_entities(&mut self, s_cut: usize) {
        let cut = s_cut.min(self.rs.len());
        self.rs.drain(..cut);
        self.ws.drain(..cut.min(self.ws.len()));
    }

    fn grow(&mut self, entity: usize) {
        if self.rs.len() <= entity {
            self.rs.resize_with(entity + 1, ItemSet::new);
            self.ws.resize_with(entity + 1, ItemSet::new);
        }
    }

    /// The edges a fresh `(entity, unit, is_write)` access would add.
    fn new_edges(&self, entity: usize, unit: u32, is_write: bool, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let (Some(rs), Some(ws)) = (self.rs.get(entity), self.ws.get(entity)) else {
            return;
        };
        let bit = crate::ids::ItemId(unit);
        if is_write {
            if ws.contains(bit) {
                return; // unit already written: edges already present
            }
            out.extend(
                rs.iter()
                    .map(|i| i.0)
                    .filter(|&i| i != unit)
                    .map(|i| (i, unit)),
            );
        } else {
            if rs.contains(bit) {
                return;
            }
            out.extend(
                ws.iter()
                    .map(|j| j.0)
                    .filter(|&j| j != unit)
                    .map(|j| (unit, j)),
            );
        }
    }

    /// Would recording this access keep the graph acyclic? The probe
    /// inserts the induced edges and retracts them in LIFO order —
    /// nothing is committed. `false` once the graph is frozen.
    pub fn admits(&mut self, entity: usize, unit: u32, is_write: bool) -> bool {
        if self.cyclic_at.is_some() {
            return false;
        }
        let mut candidate = Vec::new();
        self.new_edges(entity, unit, is_write, &mut candidate);
        let mut inserted: Vec<(u32, u32)> = Vec::new();
        let mut ok = true;
        for (u, v) in candidate {
            if self.dag.has_edge(u, v) {
                continue;
            }
            match self.dag.add_edge(u, v) {
                Ok(()) => inserted.push((u, v)),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        for &(u, v) in inserted.iter().rev() {
            self.dag.remove_edge(u, v);
        }
        ok
    }

    /// Record one access (observational mode): induced edges are
    /// inserted; the first cycle-closing edge freezes the graph with
    /// `tag` as the witness. Returns whether the graph is still
    /// acyclic afterwards.
    pub fn record(&mut self, entity: usize, unit: u32, is_write: bool, tag: OpIndex) -> bool {
        self.record_logged(entity, unit, is_write, tag);
        self.is_acyclic()
    }

    /// [`OnlineAccessDag::record`] returning the exact deltas applied,
    /// for LIFO retraction by [`OnlineAccessDag::undo`].
    pub fn record_logged(
        &mut self,
        entity: usize,
        unit: u32,
        is_write: bool,
        tag: OpIndex,
    ) -> AccessDagDelta {
        let mut delta = AccessDagDelta::default();
        if self.cyclic_at.is_some() {
            return delta; // frozen: cyclicity is monotone
        }
        let mut edges = Vec::new();
        self.new_edges(entity, unit, is_write, &mut edges);
        self.grow(entity);
        let set = if is_write {
            &mut self.ws[entity]
        } else {
            &mut self.rs[entity]
        };
        delta.fresh_bit = set.insert(crate::ids::ItemId(unit));
        for (u, v) in edges {
            if self.dag.has_edge(u, v) {
                continue;
            }
            match self.dag.add_edge(u, v) {
                Ok(()) => delta.edges.push((u, v)),
                Err(_) => {
                    self.cyclic_at = Some(tag);
                    delta.froze = true;
                    break;
                }
            }
        }
        delta
    }

    /// Retract one recorded access. Sound only in LIFO (journal)
    /// order relative to other `record_logged` calls.
    pub fn undo(&mut self, entity: usize, unit: u32, is_write: bool, delta: &AccessDagDelta) {
        if delta.froze {
            self.cyclic_at = None;
        }
        for &(u, v) in delta.edges.iter().rev() {
            self.dag.remove_edge(u, v);
        }
        if delta.fresh_bit {
            let set = if is_write {
                &mut self.ws[entity]
            } else {
                &mut self.rs[entity]
            };
            set.remove(crate::ids::ItemId(unit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Conjunct, Formula, Term};
    use crate::ids::{ItemId, TxnId};
    use crate::op::Operation;
    use crate::value::Value;

    fn rd(t: u32, i: u32, v: i64) -> Operation {
        Operation::read(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn wr(t: u32, i: u32, v: i64) -> Operation {
        Operation::write(TxnId(t), ItemId(i), Value::Int(v))
    }

    fn example2_ic() -> IntegrityConstraint {
        let (a, b, c) = (ItemId(0), ItemId(1), ItemId(2));
        IntegrityConstraint::new(vec![
            Conjunct::new(
                0,
                Formula::implies(
                    Formula::gt(Term::var(a), Term::int(0)),
                    Formula::gt(Term::var(b), Term::int(0)),
                ),
            ),
            Conjunct::new(1, Formula::gt(Term::var(c), Term::int(0))),
        ])
        .unwrap()
    }

    #[test]
    fn example2_dag_is_cyclic() {
        // §3.3: "T1 reads data item c from conjunct C2 and writes data
        // item a in conjunct C1, while T2 reads a from C1 and writes c
        // in C2 … in a cyclic fashion".
        let ic = example2_ic();
        let s = Schedule::new(vec![
            wr(1, 0, 1),
            rd(2, 0, 1),
            rd(2, 1, -1),
            wr(2, 2, -1),
            rd(1, 2, -1),
        ])
        .unwrap();
        let dag = data_access_graph(&s, &ic);
        assert!(dag.has_edge(ConjunctId(1), ConjunctId(0))); // T1: reads C2, writes C1
        assert!(dag.has_edge(ConjunctId(0), ConjunctId(1))); // T2: reads C1, writes C2
        assert!(!dag.is_acyclic());
        let cycle = dag.cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(dag.topological_order().is_none());
    }

    #[test]
    fn one_directional_access_is_acyclic() {
        // Both transactions read C1 and write C2 only: single edge.
        let ic = example2_ic();
        let s = Schedule::new(vec![rd(1, 0, 1), wr(1, 2, 1), rd(2, 1, 1), wr(2, 2, 2)]).unwrap();
        let dag = data_access_graph(&s, &ic);
        assert!(dag.is_acyclic());
        assert_eq!(dag.edge_count(), 1);
        let order = dag.topological_order().unwrap();
        assert_eq!(order, vec![ConjunctId(0), ConjunctId(1)]);
    }

    #[test]
    fn within_conjunct_access_adds_no_edge() {
        let ic = example2_ic();
        // T1 reads a and writes b — both in C1.
        let s = Schedule::new(vec![rd(1, 0, 1), wr(1, 1, 1)]).unwrap();
        let dag = data_access_graph(&s, &ic);
        assert_eq!(dag.edge_count(), 0);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn edge_ignores_intra_transaction_op_order() {
        let ic = example2_ic();
        // Write to C1 happens *before* the read of C2 — the edge
        // C2 → C1 exists regardless.
        let s = Schedule::new(vec![wr(1, 0, 1), rd(1, 2, 1)]).unwrap();
        let dag = data_access_graph(&s, &ic);
        assert!(dag.has_edge(ConjunctId(1), ConjunctId(0)));
    }

    #[test]
    fn unconstrained_items_do_not_contribute() {
        let ic = example2_ic();
        // Item 9 belongs to no conjunct: reading/writing it is edge-free.
        let s = Schedule::new(vec![rd(1, 9, 0), wr(1, 9, 1)]).unwrap();
        let dag = data_access_graph(&s, &ic);
        assert_eq!(dag.edge_count(), 0);
    }

    /// Replay `ops` through an [`OnlineAccessDag`] (entity = dense
    /// transaction slot, one record per containing conjunct).
    fn replay_online(ops: &[Operation], ic: &IntegrityConstraint) -> OnlineAccessDag {
        let mut online = OnlineAccessDag::new(ic.len());
        let mut slots: std::collections::HashMap<TxnId, usize> = std::collections::HashMap::new();
        for (p, o) in ops.iter().enumerate() {
            let next = slots.len();
            let slot = *slots.entry(o.txn).or_insert(next);
            for (k, c) in ic.conjuncts().iter().enumerate() {
                if c.items().contains(o.item) {
                    online.record(slot, k as u32, o.is_write(), crate::ids::OpIndex(p));
                }
            }
        }
        online
    }

    #[test]
    fn online_access_dag_matches_batch_at_every_prefix() {
        let ic = example2_ic();
        let runs = [
            // Example 2's cyclic pattern.
            vec![
                wr(1, 0, 1),
                rd(2, 0, 1),
                rd(2, 1, -1),
                wr(2, 2, -1),
                rd(1, 2, -1),
            ],
            // One-directional: stays acyclic.
            vec![rd(1, 0, 1), wr(1, 2, 1), rd(2, 1, 1), wr(2, 2, 2)],
            // Intra-transaction order irrelevant.
            vec![wr(1, 0, 1), rd(1, 2, 1), rd(2, 0, 1), wr(2, 2, 2)],
        ];
        for ops in runs {
            for k in 1..=ops.len() {
                let online = replay_online(&ops[..k], &ic);
                let prefix = Schedule::new(ops[..k].to_vec()).unwrap();
                let batch = data_access_graph(&prefix, &ic);
                assert_eq!(online.is_acyclic(), batch.is_acyclic(), "prefix {k}");
            }
        }
    }

    #[test]
    fn online_access_dag_pins_the_closing_access() {
        let ic = example2_ic();
        // T1 reads C2 then writes C1; T2 reads C1 then writes C2. The
        // DAG cycle closes at T2's write of c (position 3).
        let ops = vec![rd(1, 2, 1), wr(1, 0, 1), rd(2, 0, 1), wr(2, 2, 1)];
        let online = replay_online(&ops, &ic);
        assert!(!online.is_acyclic());
        assert_eq!(online.first_cycle(), Some(OpIndex(3)));
        assert!(online.unit_order().is_none());
    }

    #[test]
    fn online_access_dag_probe_is_exact_and_non_committing() {
        let ic = example2_ic();
        let ops = vec![rd(1, 2, 1), wr(1, 0, 1), rd(2, 0, 1)];
        let mut online = replay_online(&ops, &ic);
        // T2 (entity 1) writing c (unit 1) would close the cycle.
        assert!(!online.admits(1, 1, true));
        // The probe committed nothing: the same graph still admits
        // T2 writing into C1 (no new edge at all) and a third entity
        // writing anywhere.
        assert!(online.admits(1, 0, true));
        assert!(online.admits(2, 1, true));
        assert!(online.is_acyclic());
    }

    #[test]
    fn online_access_dag_undo_roundtrip() {
        let ic = example2_ic();
        let mut online = OnlineAccessDag::new(ic.len());
        online.record(0, 1, false, OpIndex(0)); // T1 reads C2
        online.record(0, 0, true, OpIndex(1)); // T1 writes C1 → edge 1→0
        let d2 = online.record_logged(1, 0, false, OpIndex(2)); // T2 reads C1
        let d3 = online.record_logged(1, 1, true, OpIndex(3)); // closes the cycle
        assert!(!online.is_acyclic());
        // LIFO retraction restores acyclicity and admissibility.
        online.undo(1, 1, true, &d3);
        online.undo(1, 0, false, &d2);
        assert!(online.is_acyclic());
        assert!(online.admits(1, 0, false));
        // Re-recording reproduces the cycle at the new tag.
        online.record(1, 0, false, OpIndex(7));
        online.record(1, 1, true, OpIndex(8));
        assert_eq!(online.first_cycle(), Some(OpIndex(8)));
    }
}
