//! Multi-thread scaling bench for the sharded monitor.
//!
//! `sharded_push/T` streams the 2488-op / 4-conjunct tier through a
//! [`ShardedMonitor`] from `T` pushing threads (transactions
//! partitioned round-robin, program order preserved per transaction) —
//! the wall time is the certified-throughput number the `mon2`
//! experiment reports. `single_writer/N` is the same stream through
//! an [`OnlineMonitor`] behind nothing at all (the 1-thread ideal),
//! and `single_writer_mutexed/N` through a `Mutex<OnlineMonitor>` —
//! what the pre-sharding threaded executor paid per operation even
//! with one thread.
//!
//! Scaling interpretation requires the host's parallelism: on a
//! multi-core box `sharded_push/4 ÷ sharded_push/1` is the speedup
//! the `monitor_mt` tier records; on a 1-core box every T > 1 number
//! only measures coordination overhead (the run prints the host's
//! `available_parallelism` for exactly this reason).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwsr_bench::monitor_exp::{partition_by_txn, tier_workload, MT_THREADS, TIERS};
use pwsr_core::monitor::sharded::ShardedMonitor;
use pwsr_core::monitor::OnlineMonitor;
use std::hint::black_box;

fn bench_monitor_mt(c: &mut Criterion) {
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("monitor_mt: available_parallelism = {parallelism}");
    let (target, conjuncts, seed_base) = TIERS[1];
    let (s, scopes) = tier_workload(target, conjuncts, seed_base).expect("workload executes");
    let n = s.len();

    let mut group = c.benchmark_group("monitor_mt");
    group.bench_with_input(BenchmarkId::new("single_writer", n), &s, |b, s| {
        b.iter(|| {
            let mut m = OnlineMonitor::new(scopes.clone());
            for op in s.ops() {
                black_box(m.push(op.clone()).expect("valid schedule"));
            }
            m.verdict()
        })
    });
    group.bench_with_input(BenchmarkId::new("single_writer_mutexed", n), &s, |b, s| {
        b.iter(|| {
            let m = parking_lot::Mutex::new(OnlineMonitor::new(scopes.clone()));
            for op in s.ops() {
                black_box(m.lock().push(op.clone()).expect("valid schedule"));
            }
            m.into_inner().verdict()
        })
    });
    for threads in MT_THREADS {
        let streams = partition_by_txn(&s, threads);
        group.bench_with_input(
            BenchmarkId::new("sharded_push", threads),
            &streams,
            |b, streams| {
                b.iter(|| {
                    let monitor = ShardedMonitor::new(scopes.clone());
                    std::thread::scope(|scope| {
                        for stream in streams.iter().filter(|s| !s.is_empty()) {
                            let monitor = &monitor;
                            scope.spawn(move || {
                                for op in stream {
                                    black_box(monitor.push(op.clone()).expect("valid stream"));
                                }
                            });
                        }
                    });
                    monitor.verdict()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_monitor_mt);
criterion_main!(benches);
