//! Regenerate every example, figure and theorem of the paper.
//!
//! ```text
//! experiments [all|examples|lemmas|theorems|perf|scale|base|bank|recovery|exhaustive|monitor|analysis|compact|chaos|<id>]
//!             [--trials N] [--smoke] [--json PATH]
//! ```
//!
//! `<id>` ∈ {ex1 … ex5, fig3, lemma1, viewsets, lemma3, lemma4, lemma7,
//! thm1, thm2, thm3, perf1 … perf5, scale1, scale2, base1, bank1, rec1,
//! rec2, exh1, mon1, mon2, mon3, mon4, an1, cmp1, cha1}.
//! Every experiment prints a paper-vs-measured table; the exit code is
//! nonzero if any run deviates from the paper's predicted shape.
//!
//! `--smoke` caps every per-experiment trial default at a small constant
//! so the full sweep finishes in a couple of seconds — the CI entry
//! point (`experiments all --smoke`) that keeps every experiment's code
//! path *and* its shape check exercised without paying for full
//! statistical power. An explicit `--trials` overrides the cap.
//!
//! `--json PATH` additionally writes a machine-readable record of the
//! sweep — schema `pwsr-experiments-v9`: one entry per selected
//! experiment with its verdict, wall-clock seconds, and (where the
//! experiment measures them) processed-operation counts and the online
//! monitor's per-op timings; a `monitor_mt` block recording the
//! sharded monitor's certified throughput at 1/2/4/8 pushing threads
//! (with the host's `available_parallelism`, without which scaling
//! numbers are uninterpretable, and the measured serial-stage ns per
//! op); and an `occ_mt` block recording the OCC-certified threaded
//! executor (threads, commits, aborts, retries, ns per committed op)
//! plus the sharded-retraction cost entries; and a `batch` block
//! recording the batched admission path (the singleton-push baseline
//! and `push_batch` throughput per (batch size, threads) tier with
//! the amortized serial-stage ns per op) so CI can gate batched
//! single-thread throughput strictly above the singleton baseline at
//! batch ≥ 8; and an `analysis` block
//! recording the static robustness analyzer's portfolio (programs
//! analyzed, Safe/Unsafe/Unknown verdict counts) and the certified
//! admission fast path's per-op cost against the monitored path — so
//! successive PRs can track the perf trajectory (`BENCH_*.json` at the
//! repo root) and CI can gate on the format, the monitors' per-op
//! cost, the retraction cost staying sub-linear, and the certified
//! skip staying strictly cheaper than runtime certification; and a
//! `recovery` block recording the REC-2 crash-injection sweep (crash
//! points injected — torn tails, bit flips, checkpoint+tail legs —
//! how many recovered byte-identically, WAL replay ns per record, and
//! the admission path's WAL-on vs WAL-off ns per op) so CI can fail
//! on any unrecovered crash point and gate the WAL's admission
//! overhead under 2×; and a `compact` block recording the CMP-1
//! committed-prefix-compaction stream (ops streamed, compaction
//! sweeps, ops reclaimed, the compacting twin's resident-byte
//! plateau pre/post sweep vs the uncompacted baseline's footprint,
//! and both paths' ns per op) so CI can gate the compacting path's
//! per-op overhead under 1.5× and the memory plateau staying far
//! below the uncompacted twin; and a `chaos` block recording the
//! CHA-1 deterministic fault sweep (seeded fault points injected
//! beneath the WAL sink and into the executor workers, how many were
//! contained per the error-policy contract, post-fault recovery
//! round-trips, fault-free-twin parity checks, and the zombie-reap /
//! contained-panic / timeout / WAL-error counters) so CI can fail on
//! any uncontained fault, any recovery or parity miss, or a sweep
//! that covers fewer than 128 points.

use pwsr_bench::analysis_exp::AnalysisStats;
use pwsr_bench::chaos_exp::ChaosStats;
use pwsr_bench::compact_exp::CompactExpStats;
use pwsr_bench::monitor_exp::{BatchStats, MonitorMtStats, MonitorStats, OccMtStats};
use pwsr_bench::recovery_exp::RecoveryStats;
use pwsr_bench::{
    analysis_exp, bank_exp, base_exp, chaos_exp, compact_exp, examples_exp, exhaustive_exp,
    lemmas_exp, monitor_exp, perf_exp, recovery_exp, scale_exp, theorems_exp,
};

struct Opts {
    what: String,
    trials: u64,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Opts {
    let mut what = "all".to_owned();
    let mut trials = 0u64; // 0 = per-experiment default
    let mut smoke = false;
    let mut json = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                trials = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--trials needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--json" => {
                json = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            other => {
                what = other.to_owned();
                i += 1;
            }
        }
    }
    Opts {
        what,
        trials,
        smoke,
        json,
    }
}

/// One experiment's outcome, as the registry consumes it.
struct ExpRun {
    ok: bool,
    text: String,
    /// Operations the experiment processed, when it counts them.
    ops: Option<u64>,
    /// The online monitor's worst amortized per-op cost, when measured.
    monitor_ns_per_op: Option<f64>,
    /// Full per-tier monitor stats (only `mon1` produces them); the
    /// registry lifts them into the JSON document's `monitor` block.
    monitor: Option<MonitorStats>,
    /// Sharded-monitor thread-scaling stats (only `mon2`); lifted into
    /// the JSON document's `monitor_mt` block.
    monitor_mt: Option<MonitorMtStats>,
    /// OCC-certified executor stats (only `mon3`); lifted into the
    /// JSON document's `occ_mt` block.
    occ_mt: Option<OccMtStats>,
    /// Batched-admission throughput stats (only `mon4`); lifted into
    /// the JSON document's `batch` block.
    batch: Option<BatchStats>,
    /// Static-analyzer portfolio stats (only `an1`); lifted into the
    /// JSON document's `analysis` block.
    analysis: Option<AnalysisStats>,
    /// Crash-recovery sweep stats (only `rec2`); lifted into the
    /// JSON document's `recovery` block.
    recovery: Option<RecoveryStats>,
    /// Committed-prefix-compaction stream stats (only `cmp1`); lifted
    /// into the JSON document's `compact` block.
    compact: Option<CompactExpStats>,
    /// Chaos-plane fault-sweep stats (only `cha1`); lifted into the
    /// JSON document's `chaos` block.
    chaos: Option<ChaosStats>,
}

impl From<(bool, String)> for ExpRun {
    fn from((ok, text): (bool, String)) -> ExpRun {
        ExpRun {
            ok,
            text,
            ops: None,
            monitor_ns_per_op: None,
            monitor: None,
            monitor_mt: None,
            occ_mt: None,
            batch: None,
            analysis: None,
            recovery: None,
            compact: None,
            chaos: None,
        }
    }
}

/// One experiment's machine-readable record.
struct JsonEntry {
    id: &'static str,
    group: &'static str,
    ok: bool,
    seconds: f64,
    ops: Option<u64>,
    monitor_ns_per_op: Option<f64>,
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_owned(), |x| x.to_string())
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or("null".to_owned(), |x| format!("{x:.1}"))
}

/// Render the sweep record as JSON (no external dependencies; every
/// value is a bare identifier, bool, number or null, so no escaping is
/// needed).
#[allow(clippy::too_many_arguments)]
fn render_json(
    opts: &Opts,
    all_ok: bool,
    entries: &[JsonEntry],
    monitor: &Option<MonitorStats>,
    monitor_mt: &Option<MonitorMtStats>,
    occ_mt: &Option<OccMtStats>,
    batch: &Option<BatchStats>,
    analysis: &Option<AnalysisStats>,
    recovery: &Option<RecoveryStats>,
    compact: &Option<CompactExpStats>,
    chaos: &Option<ChaosStats>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pwsr-experiments-v9\",\n");
    out.push_str(&format!("  \"selection\": \"{}\",\n", opts.what));
    out.push_str(&format!("  \"smoke\": {},\n", opts.smoke));
    out.push_str(&format!("  \"trials_override\": {},\n", opts.trials));
    out.push_str(&format!("  \"all_ok\": {all_ok},\n"));
    match monitor {
        Some(stats) => {
            out.push_str("  \"monitor\": {\"tiers\": [\n");
            for (k, t) in stats.tiers.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"ops\": {}, \"conjuncts\": {}, \"monitor_ns_per_op\": {:.1}, \
                     \"batch_ns_per_op\": {:.1}, \"speedup\": {:.2}}}{}\n",
                    t.ops,
                    t.conjuncts,
                    t.monitor_ns_per_op,
                    t.batch_ns_per_op,
                    t.speedup(),
                    if k + 1 < stats.tiers.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]},\n");
        }
        None => out.push_str("  \"monitor\": null,\n"),
    }
    match monitor_mt {
        Some(stats) => {
            out.push_str(&format!(
                "  \"monitor_mt\": {{\"parallelism\": {}, \"tiers\": [\n",
                stats.parallelism
            ));
            for (k, t) in stats.tiers.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"threads\": {}, \"ops\": {}, \"ops_per_s\": {:.1}, \
                     \"ns_per_op\": {:.1}, \"speedup\": {:.3}, \"serial_ns_per_op\": {:.1}}}{}\n",
                    t.threads,
                    t.ops,
                    t.ops_per_s,
                    t.ns_per_op(),
                    t.speedup,
                    t.serial_ns_per_op,
                    if k + 1 < stats.tiers.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]},\n");
        }
        None => out.push_str("  \"monitor_mt\": null,\n"),
    }
    match occ_mt {
        Some(stats) => {
            out.push_str(&format!(
                "  \"occ_mt\": {{\"parallelism\": {}, \"tiers\": [\n",
                stats.parallelism
            ));
            for (k, t) in stats.tiers.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"threads\": {}, \"commits\": {}, \"aborts\": {}, \"retries\": {}, \
                     \"ns_per_committed_op\": {:.1}}}{}\n",
                    t.threads,
                    t.commits,
                    t.aborts,
                    t.retries,
                    t.ns_per_committed_op,
                    if k + 1 < stats.tiers.len() { "," } else { "" }
                ));
            }
            out.push_str("  ], \"retraction\": [\n");
            for (k, t) in stats.retraction.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"ops\": {}, \"suffix_ops\": {}, \"ns_per_undone_op\": {:.1}}}{}\n",
                    t.ops,
                    t.suffix_ops,
                    t.ns_per_undone_op,
                    if k + 1 < stats.retraction.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            out.push_str("  ]},\n");
        }
        None => out.push_str("  \"occ_mt\": null,\n"),
    }
    match batch {
        Some(stats) => {
            out.push_str(&format!(
                "  \"batch\": {{\"parallelism\": {}, \"singleton_ops_per_s\": {:.1}, \
                 \"tiers\": [\n",
                stats.parallelism, stats.singleton_ops_per_s
            ));
            for (k, t) in stats.tiers.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"batch\": {}, \"threads\": {}, \"ops\": {}, \
                     \"ops_per_s\": {:.1}, \"speedup_vs_singleton\": {:.3}, \
                     \"serial_ns_per_op\": {:.1}}}{}\n",
                    t.batch,
                    t.threads,
                    t.ops,
                    t.ops_per_s,
                    t.speedup_vs_singleton,
                    t.serial_ns_per_op,
                    if k + 1 < stats.tiers.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]},\n");
        }
        None => out.push_str("  \"batch\": null,\n"),
    }
    match analysis {
        Some(stats) => {
            out.push_str(&format!(
                "  \"analysis\": {{\"programs\": {}, \"safe\": {}, \"unsafe\": {}, \
                 \"unknown\": {}, \"certified_ns_per_op\": {:.1}, \
                 \"monitored_ns_per_op\": {:.1}, \"speedup\": {:.2}}},\n",
                stats.programs,
                stats.safe,
                stats.unsafe_verdicts,
                stats.unknown,
                stats.certified_ns_per_op,
                stats.monitored_ns_per_op,
                stats.speedup(),
            ));
        }
        None => out.push_str("  \"analysis\": null,\n"),
    }
    match recovery {
        Some(stats) => {
            out.push_str(&format!(
                "  \"recovery\": {{\"crash_points\": {}, \"torn_tail_points\": {}, \
                 \"corrupt_checksum_points\": {}, \"checkpoint_points\": {}, \
                 \"recovered_ok\": {}, \"wal_records\": {}, \"replay_ns_per_op\": {:.1}, \
                 \"wal_on_ns_per_op\": {:.1}, \"wal_off_ns_per_op\": {:.1}}},\n",
                stats.crash_points,
                stats.torn_tail_points,
                stats.corrupt_checksum_points,
                stats.checkpoint_points,
                stats.recovered_ok,
                stats.wal_records,
                stats.replay_ns_per_op,
                stats.wal_on_ns_per_op,
                stats.wal_off_ns_per_op,
            ));
        }
        None => out.push_str("  \"recovery\": null,\n"),
    }
    match compact {
        Some(stats) => {
            out.push_str(&format!(
                "  \"compact\": {{\"ops\": {}, \"compactions\": {}, \"ops_reclaimed\": {}, \
                 \"resident_bytes_pre\": {}, \"resident_bytes_post\": {}, \
                 \"baseline_resident_bytes\": {}, \"compact_ns_per_op\": {:.1}, \
                 \"baseline_ns_per_op\": {:.1}, \"overhead\": {:.3}, \"memory_ratio\": {:.1}}},\n",
                stats.ops,
                stats.compactions,
                stats.ops_reclaimed,
                stats.resident_bytes_pre,
                stats.resident_bytes_post,
                stats.baseline_resident_bytes,
                stats.compact_ns_per_op,
                stats.baseline_ns_per_op,
                stats.overhead(),
                stats.memory_ratio(),
            ));
        }
        None => out.push_str("  \"compact\": null,\n"),
    }
    match chaos {
        Some(stats) => {
            out.push_str(&format!(
                "  \"chaos\": {{\"fault_points\": {}, \"contained\": {}, \
                 \"wal_fault_points\": {}, \"exec_fault_points\": {}, \
                 \"recover_checks\": {}, \"recover_ok\": {}, \
                 \"parity_checks\": {}, \"parity_ok\": {}, \
                 \"zombie_reaps\": {}, \"worker_panics\": {}, \
                 \"txn_timeouts\": {}, \"wal_io_errors\": {}, \
                 \"injected_faults\": {}}},\n",
                stats.fault_points,
                stats.contained,
                stats.wal_fault_points,
                stats.exec_fault_points,
                stats.recover_checks,
                stats.recover_ok,
                stats.parity_checks,
                stats.parity_ok,
                stats.zombie_reaps,
                stats.worker_panics,
                stats.txn_timeouts,
                stats.wal_io_errors,
                stats.injected_faults,
            ));
        }
        None => out.push_str("  \"chaos\": null,\n"),
    }
    out.push_str("  \"experiments\": [\n");
    for (k, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"group\": \"{}\", \"ok\": {}, \"seconds\": {:.6}, \
             \"ops\": {}, \"monitor_ns_per_op\": {}}}{}\n",
            e.id,
            e.group,
            e.ok,
            e.seconds,
            fmt_opt_u64(e.ops),
            fmt_opt_f64(e.monitor_ns_per_op),
            if k + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Trial cap applied by `--smoke` to every per-experiment default.
const SMOKE_TRIALS: u64 = 8;

fn main() {
    let opts = parse_args();
    let smoke = opts.smoke;
    let pick = move |n: u64, default: u64| -> u64 {
        if n != 0 {
            n
        } else if smoke {
            default.min(SMOKE_TRIALS)
        } else {
            default
        }
    };
    let mut all_ok = true;
    let mut matched = false;
    let mut entries: Vec<JsonEntry> = Vec::new();
    let mut monitor_stats: Option<MonitorStats> = None;
    let mut monitor_mt_stats: Option<MonitorMtStats> = None;
    let mut occ_mt_stats: Option<OccMtStats> = None;
    let mut batch_stats: Option<BatchStats> = None;
    let mut analysis_stats: Option<AnalysisStats> = None;
    let mut recovery_stats: Option<RecoveryStats> = None;
    let mut compact_stats: Option<CompactExpStats> = None;
    let mut chaos_stats: Option<ChaosStats> = None;
    {
        let monitor_out = &mut monitor_stats;
        let monitor_mt_out = &mut monitor_mt_stats;
        let occ_mt_out = &mut occ_mt_stats;
        let batch_out = &mut batch_stats;
        let analysis_out = &mut analysis_stats;
        let recovery_out = &mut recovery_stats;
        let compact_out = &mut compact_stats;
        let chaos_out = &mut chaos_stats;
        let mut run = |id: &'static str, f: &dyn Fn(u64) -> ExpRun| {
            let selected =
                matches!(opts.what.as_str(), "all") || opts.what == id || group_of(id) == opts.what;
            if selected {
                matched = true;
                let start = std::time::Instant::now();
                let r = f(opts.trials);
                let seconds = start.elapsed().as_secs_f64();
                println!("{}", r.text);
                if !r.ok {
                    eprintln!("!! {id}: deviation from the paper's predicted shape\n");
                }
                all_ok &= r.ok;
                entries.push(JsonEntry {
                    id,
                    group: group_of(id),
                    ok: r.ok,
                    seconds,
                    ops: r.ops,
                    monitor_ns_per_op: r.monitor_ns_per_op,
                });
                if r.monitor.is_some() {
                    *monitor_out = r.monitor;
                }
                if r.monitor_mt.is_some() {
                    *monitor_mt_out = r.monitor_mt;
                }
                if r.occ_mt.is_some() {
                    *occ_mt_out = r.occ_mt;
                }
                if r.batch.is_some() {
                    *batch_out = r.batch;
                }
                if r.analysis.is_some() {
                    *analysis_out = r.analysis;
                }
                if r.recovery.is_some() {
                    *recovery_out = r.recovery;
                }
                if r.compact.is_some() {
                    *compact_out = r.compact;
                }
                if r.chaos.is_some() {
                    *chaos_out = r.chaos;
                }
            }
        };

        run("ex1", &|_| examples_exp::ex1().into());
        run("ex2", &|_| examples_exp::ex2().into());
        run("ex3", &|_| examples_exp::ex3().into());
        run("ex4", &|_| examples_exp::ex4().into());
        run("ex5", &|_| examples_exp::ex5().into());
        run("fig3", &|_| examples_exp::fig3().into());

        run("lemma1", &|n| {
            let (o, t) = lemmas_exp::lemma1(pick(n, 2_000), 11);
            (o.clean(), t).into()
        });
        run("viewsets", &|n| {
            let (l2, l6, t) = lemmas_exp::viewset_lemmas(pick(n, 150), 12);
            (
                l2.clean() && l6.clean() && l2.checks > 0 && l6.checks > 0,
                t,
            )
                .into()
        });
        run("lemma3", &|n| {
            let (fixed, _ctrl, t) = lemmas_exp::lemma3(pick(n, 200), 13);
            (fixed.clean() && fixed.checks > 0, t).into()
        });
        run("lemma4", &|n| {
            let (l4, l8, t) = lemmas_exp::lemma4_and_8(pick(n, 60), 14);
            (
                l4.clean() && l8.clean() && l4.checks > 0 && l8.checks > 0,
                t,
            )
                .into()
        });
        run("lemma7", &|n| {
            let (o, t) = lemmas_exp::lemma7(pick(n, 500), 15);
            (o.clean() && o.checks > 0, t).into()
        });

        run("thm1", &|n| {
            let (o, t) = theorems_exp::theorem(1, pick(n, 30), 8, 101);
            (o.matches_paper(), t).into()
        });
        run("thm2", &|n| {
            let (o, t) = theorems_exp::theorem(2, pick(n, 30), 8, 102);
            (o.matches_paper(), t).into()
        });
        run("thm3", &|n| {
            let (o, t) = theorems_exp::theorem(3, pick(n, 30), 8, 103);
            (o.matches_paper(), t).into()
        });

        run("perf1", &|n| perf_exp::perf1(pick(n, 24), 400).into());
        run("perf2", &|_| perf_exp::perf2(401).into());
        run("perf3", &|n| perf_exp::perf3(pick(n, 5), 402).into());
        run("perf4", &|n| perf_exp::perf4(pick(n, 8), 403).into());
        run("perf5", &|n| perf_exp::perf5(pick(n, 10), 404).into());

        run("scale1", &|_| scale_exp::scale1(500).into());
        run("scale2", &|_| scale_exp::scale2(501).into());

        run("base1", &|n| base_exp::base1(pick(n, 80), 600).into());

        run("bank1", &|n| bank_exp::bank1(pick(n, 200), 700).into());
        run("rec1", &|n| recovery_exp::rec1(pick(n, 600), 800).into());
        run("rec2", &|n| {
            let (ok, text, stats) = recovery_exp::rec2(pick(n, 8), 801);
            ExpRun {
                ok,
                text,
                ops: Some(stats.wal_records),
                monitor_ns_per_op: None,
                monitor: None,
                monitor_mt: None,
                occ_mt: None,
                batch: None,
                analysis: None,
                recovery: Some(stats),
                compact: None,
                chaos: None,
            }
        });
        run("exh1", &|_| exhaustive_exp::exh1().into());

        run("mon1", &|n| {
            let (ok, text, stats) = monitor_exp::mon1(pick(n, 5), 900);
            ExpRun {
                ok,
                text,
                ops: Some(stats.total_ops()),
                monitor_ns_per_op: Some(stats.worst_monitor_ns_per_op()),
                monitor: Some(stats),
                monitor_mt: None,
                occ_mt: None,
                batch: None,
                analysis: None,
                recovery: None,
                compact: None,
                chaos: None,
            }
        });

        run("mon2", &|n| {
            let (ok, text, stats) = monitor_exp::mon2(pick(n, 5), 901);
            ExpRun {
                ok,
                text,
                ops: Some(stats.tiers.iter().map(|t| t.ops).sum()),
                monitor_ns_per_op: Some(stats.worst_ns_per_op()),
                monitor: None,
                monitor_mt: Some(stats),
                occ_mt: None,
                batch: None,
                analysis: None,
                recovery: None,
                compact: None,
                chaos: None,
            }
        });

        run("mon3", &|n| {
            let (ok, text, stats) = monitor_exp::mon3(pick(n, 5), 902);
            ExpRun {
                ok,
                text,
                ops: None,
                monitor_ns_per_op: Some(stats.worst_ns_per_committed_op()),
                monitor: None,
                monitor_mt: None,
                occ_mt: Some(stats),
                batch: None,
                analysis: None,
                recovery: None,
                compact: None,
                chaos: None,
            }
        });

        run("mon4", &|n| {
            let (ok, text, stats) = monitor_exp::mon4(pick(n, 5), 903);
            ExpRun {
                ok,
                text,
                ops: Some(stats.tiers.iter().map(|t| t.ops).sum()),
                monitor_ns_per_op: Some(stats.worst_ns_per_op()),
                monitor: None,
                monitor_mt: None,
                occ_mt: None,
                batch: Some(stats),
                analysis: None,
                recovery: None,
                compact: None,
                chaos: None,
            }
        });

        run("an1", &|n| {
            let (ok, text, stats) = analysis_exp::an1(pick(n, 5), 0xA11);
            ExpRun {
                ok,
                text,
                ops: None,
                monitor_ns_per_op: Some(stats.monitored_ns_per_op),
                monitor: None,
                monitor_mt: None,
                occ_mt: None,
                batch: None,
                analysis: Some(stats),
                recovery: None,
                compact: None,
                chaos: None,
            }
        });

        run("cmp1", &|n| {
            let (ok, text, stats) = compact_exp::cmp1(pick(n, 10), 0xC01);
            ExpRun {
                ok,
                text,
                ops: Some(stats.ops),
                monitor_ns_per_op: Some(stats.compact_ns_per_op),
                monitor: None,
                monitor_mt: None,
                occ_mt: None,
                batch: None,
                analysis: None,
                recovery: None,
                compact: Some(stats),
                chaos: None,
            }
        });

        run("cha1", &|n| {
            let (ok, text, stats) = chaos_exp::cha1(pick(n, 2), 0xC4A1);
            ExpRun {
                ok,
                text,
                ops: Some(stats.fault_points),
                monitor_ns_per_op: None,
                monitor: None,
                monitor_mt: None,
                occ_mt: None,
                batch: None,
                analysis: None,
                recovery: None,
                compact: None,
                chaos: Some(stats),
            }
        });
    }

    if !matched {
        eprintln!(
            "unknown experiment {:?}; try: all, examples, lemmas, theorems, perf, scale, base, \
             monitor, analysis, compact, chaos, or an id like ex2 / thm1 / perf2 / mon3 / an1 / \
             cmp1 / cha1",
            opts.what
        );
        std::process::exit(2);
    }
    if let Some(path) = &opts.json {
        let body = render_json(
            &opts,
            all_ok,
            &entries,
            &monitor_stats,
            &monitor_mt_stats,
            &occ_mt_stats,
            &batch_stats,
            &analysis_stats,
            &recovery_stats,
            &compact_stats,
            &chaos_stats,
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path} ({} experiments)", entries.len());
    }
    if !all_ok {
        std::process::exit(1);
    }
}

fn group_of(id: &str) -> &'static str {
    match id {
        "ex1" | "ex2" | "ex3" | "ex4" | "ex5" | "fig3" => "examples",
        "lemma1" | "viewsets" | "lemma3" | "lemma4" | "lemma7" => "lemmas",
        "thm1" | "thm2" | "thm3" => "theorems",
        "perf1" | "perf2" | "perf3" | "perf4" | "perf5" => "perf",
        "scale1" | "scale2" => "scale",
        "base1" => "base",
        "bank1" => "bank",
        "rec1" | "rec2" => "recovery",
        "exh1" => "exhaustive",
        "mon1" | "mon2" | "mon3" | "mon4" => "monitor",
        "an1" => "analysis",
        "cmp1" => "compact",
        "cha1" => "chaos",
        _ => "",
    }
}
