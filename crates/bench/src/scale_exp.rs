//! SCALE-1 / SCALE-2: checker and solver scalability.
//!
//! Coarse wall-clock sweeps for the experiment binary; the Criterion
//! benches under `benches/` repeat the same measurements with proper
//! statistics. Expected shapes: the precedence-graph checkers scale
//! quadratically in schedule length (pairwise conflict scan) and
//! linearly in conjunct count; the restriction solver scales linearly
//! in domain width for chain constraints.

use crate::report::Table;
use pwsr_core::dag::data_access_graph;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::pwsr::is_pwsr;
use pwsr_core::serializability::is_conflict_serializable;
use pwsr_core::solver::Solver;
use pwsr_core::state::DbState;
use pwsr_gen::chaos::random_execution;
use pwsr_gen::constraints::{random_ic, IcConfig};
use pwsr_gen::workloads::{random_workload, Workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A workload sized to produce a schedule of roughly `target_ops`
/// operations.
pub fn sized_workload(rng: &mut StdRng, target_ops: usize, conjuncts: usize) -> Workload {
    // Each background template contributes ~2–6 ops.
    let n_background = (target_ops / 4).max(2);
    random_workload(
        rng,
        &WorkloadConfig {
            conjuncts,
            items_per_conjunct: 3,
            n_background,
            cross_read_prob: 0.5,
            fixed_only: true,
            gadgets: 0,
            domain_width: 50,
        },
    )
}

fn micros<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// SCALE-1: checker cost vs schedule length.
pub fn scale1(seed: u64) -> (bool, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "SCALE-1  Checker cost vs schedule length (µs/run)",
        &["ops", "CSR", "PWSR", "DR", "DAG"],
    );
    let mut ok = true;
    for target in [50usize, 200, 800] {
        let w = sized_workload(&mut rng, target, 4);
        let Ok(s) = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng) else {
            continue;
        };
        ok &= !s.is_empty();
        let csr = micros(
            || {
                std::hint::black_box(is_conflict_serializable(&s));
            },
            10,
        );
        let pwsr = micros(
            || {
                std::hint::black_box(is_pwsr(&s, &w.ic).ok());
            },
            10,
        );
        let dr = micros(
            || {
                std::hint::black_box(is_delayed_read(&s));
            },
            10,
        );
        let dag = micros(
            || {
                std::hint::black_box(data_access_graph(&s, &w.ic).is_acyclic());
            },
            10,
        );
        t.row(&[
            s.len().to_string(),
            format!("{csr:.1}"),
            format!("{pwsr:.1}"),
            format!("{dr:.1}"),
            format!("{dag:.1}"),
        ]);
    }
    (ok, t.render())
}

/// SCALE-2: restriction-consistency solver cost vs domain width and
/// chain length.
pub fn scale2(seed: u64) -> (bool, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "SCALE-2  Restriction-consistency solver (µs/query)",
        &["chain len", "width 8", "width 64", "width 512"],
    );
    let mut ok = true;
    for chain in [2usize, 4, 8] {
        let mut cells = vec![chain.to_string()];
        for width in [8i64, 64, 512] {
            let g = random_ic(
                &mut rng,
                &IcConfig {
                    conjuncts: 2,
                    items_per_conjunct: chain,
                    domain_width: width,
                },
            );
            let solver = Solver::new(&g.catalog, &g.ic);
            // Query: a partial state assigning about half of the items.
            let mut partial = DbState::new();
            for (k, (item, v)) in g.initial.iter().enumerate() {
                if k % 2 == 0 {
                    partial.set(item, v.clone());
                }
            }
            ok &= solver.is_consistent(&partial);
            let us = micros(
                || {
                    std::hint::black_box(solver.is_consistent(&partial));
                },
                20,
            );
            cells.push(format!("{us:.1}"));
        }
        t.row(&cells);
    }
    let _ = rng.random_range(0..2); // keep rng used consistently
    (ok, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale1_runs() {
        let (ok, text) = scale1(500);
        assert!(ok, "{text}");
        assert!(text.contains("SCALE-1"));
    }

    #[test]
    fn scale2_runs() {
        let (ok, text) = scale2(501);
        assert!(ok, "{text}");
        assert!(text.contains("width 512"));
    }

    #[test]
    fn sized_workload_scales() {
        let mut rng = StdRng::seed_from_u64(502);
        let small = sized_workload(&mut rng, 40, 2);
        let large = sized_workload(&mut rng, 400, 2);
        assert!(large.programs.len() > small.programs.len());
    }
}
