//! # pwsr-bench — the experiment harness
//!
//! One module per experiment family from `EXPERIMENTS.md`'s index; each
//! experiment returns a structured result plus a printable table so the
//! `experiments` binary can regenerate every example, figure and
//! theorem of the paper (see `EXPERIMENTS.md` for the paper-vs-measured
//! record). Criterion benches under `benches/` time the hot checker and
//! scheduler paths.

/// Serializes the timing-sensitive smoke tests: `cmp1` gates a
/// wall-clock overhead ratio and `cha1` saturates the host with
/// worker pools and deliberate stalls, so letting the test harness
/// interleave them on a small CI box turns a real perf gate into a
/// coin flip.
#[cfg(test)]
pub(crate) static HEAVY_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

pub mod analysis_exp;
pub mod bank_exp;
pub mod base_exp;
pub mod chaos_exp;
pub mod compact_exp;
pub mod examples_exp;
pub mod exhaustive_exp;
pub mod lemmas_exp;
pub mod monitor_exp;
pub mod perf_exp;
pub mod recovery_exp;
pub mod report;
pub mod scale_exp;
pub mod theorems_exp;
