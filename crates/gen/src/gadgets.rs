//! Violation gadgets: program pairs that are correct in isolation but
//! can violate consistency under a PWSR interleaving.
//!
//! The canonical gadget is the paper's Example 2, parameterized over
//! fresh item names so many instances can be embedded in one workload:
//! conjuncts `(p>0 → q>0)` and `(r>0)`, programs
//! `G1: p := 1; if (r>0) then q := abs(q)+1;` and
//! `G2: if (p>0) then r := q;`, initial `(−1, −1, 1)`. Under the
//! interleaving `w1(p) r2(p) r2(q) w2(r) r1(r)` the schedule is PWSR
//! yet ends in an inconsistent state — the control arm for every
//! theorem experiment.

use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::Conjunct;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::state::DbState;
use pwsr_core::value::{Domain, Value};
use pwsr_tplang::ast::Program;
use pwsr_tplang::parser::parse_program;

/// One instantiated Example-2 gadget.
#[derive(Clone, Debug)]
pub struct Example2Gadget {
    /// The antecedent item `p`.
    pub p: ItemId,
    /// The consequent item `q`.
    pub q: ItemId,
    /// The trigger item `r`.
    pub r: ItemId,
    /// `TP1`-analogue.
    pub g1: Program,
    /// `TP2`-analogue.
    pub g2: Program,
    /// The two conjuncts to append to the workload's constraint.
    pub conjuncts: Vec<Conjunct>,
}

/// Instantiate the Example 2 gadget with fresh items named
/// `p{tag}`, `q{tag}`, `r{tag}`; extends `catalog` and `initial`
/// in place. `next_conjunct` numbers the two new conjuncts.
pub fn example2_gadget(
    catalog: &mut Catalog,
    initial: &mut DbState,
    tag: &str,
    next_conjunct: u32,
) -> Example2Gadget {
    use pwsr_core::constraint::{Formula, Term};
    let p = catalog.add_item(&format!("p{tag}"), Domain::int_range(-100, 100));
    let q = catalog.add_item(&format!("q{tag}"), Domain::int_range(-100, 100));
    let r = catalog.add_item(&format!("r{tag}"), Domain::int_range(-100, 100));
    initial.set(p, Value::Int(-1));
    initial.set(q, Value::Int(-1));
    initial.set(r, Value::Int(1));
    let g1 = parse_program(
        &format!("G1{tag}"),
        &format!("p{tag} := 1; if (r{tag} > 0) then q{tag} := abs(q{tag}) + 1;"),
    )
    .expect("gadget text parses");
    let g2 = parse_program(
        &format!("G2{tag}"),
        &format!("if (p{tag} > 0) then r{tag} := q{tag};"),
    )
    .expect("gadget text parses");
    let conjuncts = vec![
        Conjunct::new(
            next_conjunct,
            Formula::implies(
                Formula::gt(Term::var(p), Term::int(0)),
                Formula::gt(Term::var(q), Term::int(0)),
            ),
        ),
        Conjunct::new(next_conjunct + 1, Formula::gt(Term::var(r), Term::int(0))),
    ];
    Example2Gadget {
        p,
        q,
        r,
        g1,
        g2,
        conjuncts,
    }
}

/// The paper's violating interleaving for a gadget run as transactions
/// `(t1, t2)`: the pick sequence `[t1, t2, t2, t2, t1]`.
pub fn violating_picks(t1: TxnId, t2: TxnId) -> Vec<TxnId> {
    vec![t1, t2, t2, t2, t1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::execute_with_picks;
    use pwsr_core::constraint::IntegrityConstraint;
    use pwsr_core::pwsr::is_pwsr;
    use pwsr_core::solver::Solver;
    use pwsr_core::strong::check_strong_correctness;

    #[test]
    fn gadget_reproduces_example2_violation() {
        let mut catalog = Catalog::new();
        let mut initial = DbState::new();
        let g = example2_gadget(&mut catalog, &mut initial, "_0", 0);
        let ic = IntegrityConstraint::new(g.conjuncts.clone()).unwrap();
        let solver = Solver::new(&catalog, &ic);
        assert!(solver.is_consistent_total(&initial).unwrap());

        let programs = [g.g1.clone(), g.g2.clone()];
        let picks = violating_picks(TxnId(1), TxnId(2));
        let schedule = execute_with_picks(&programs, &catalog, &initial, &picks).unwrap();
        assert!(is_pwsr(&schedule, &ic).ok());
        let report = check_strong_correctness(&schedule, &solver, &initial);
        assert!(report.violation(), "{report:?}");
    }

    #[test]
    fn gadget_is_correct_serially() {
        let mut catalog = Catalog::new();
        let mut initial = DbState::new();
        let g = example2_gadget(&mut catalog, &mut initial, "_0", 0);
        let ic = IntegrityConstraint::new(g.conjuncts.clone()).unwrap();
        let solver = Solver::new(&catalog, &ic);
        // Serial either way: consistent.
        for order in [[0usize, 1], [1, 0]] {
            let mut state = initial.clone();
            for (k, &pi) in order.iter().enumerate() {
                let p = if pi == 0 { &g.g1 } else { &g.g2 };
                let (_, out) = pwsr_tplang::interp::execute_and_apply(
                    p,
                    &catalog,
                    TxnId(k as u32 + 1),
                    &state,
                )
                .unwrap();
                state = out;
            }
            assert!(solver.is_consistent(&state), "order {order:?}: {state:?}");
        }
    }

    #[test]
    fn multiple_gadgets_coexist() {
        let mut catalog = Catalog::new();
        let mut initial = DbState::new();
        let a = example2_gadget(&mut catalog, &mut initial, "_a", 0);
        let b = example2_gadget(&mut catalog, &mut initial, "_b", 2);
        let mut conjuncts = a.conjuncts.clone();
        conjuncts.extend(b.conjuncts.clone());
        let ic = IntegrityConstraint::new(conjuncts).unwrap();
        assert!(ic.is_disjoint());
        assert_eq!(catalog.len(), 6);
        let solver = Solver::new(&catalog, &ic);
        assert!(solver.is_consistent_total(&initial).unwrap());
    }
}
