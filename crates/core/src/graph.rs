//! A small directed-graph utility.
//!
//! Used for precedence graphs ([`crate::serializability`]), data access
//! graphs ([`crate::dag`]) and the scheduler's waits-for graphs. Nodes
//! are dense `usize` indices; callers keep their own node↔entity maps.

use std::collections::BTreeSet;

/// A directed graph over nodes `0..n` with deduplicated edges.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    /// `succ[u]` = ordered successor set of `u`.
    succ: Vec<BTreeSet<usize>>,
}

impl DiGraph {
    /// A graph with `n` isolated nodes.
    pub fn new(n: usize) -> DiGraph {
        DiGraph {
            succ: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Is the graph empty (no nodes)?
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Add the edge `u → v` (self-loops allowed; duplicates ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.succ[u].insert(v);
    }

    /// Is `u → v` present?
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ[u].contains(&v)
    }

    /// Successors of `u` in ascending order.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ[u].iter().copied()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(|s| s.len()).sum()
    }

    /// All edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Does the graph contain a directed cycle?
    pub fn has_cycle(&self) -> bool {
        self.topo_sort().is_none()
    }

    /// One topological order (smallest-index-first, i.e. deterministic),
    /// or `None` if the graph is cyclic.
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        // BTreeSet as a priority queue keeps the order deterministic.
        let mut ready: BTreeSet<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&u) = ready.iter().next() {
            ready.remove(&u);
            out.push(u);
            for v in self.successors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.insert(v);
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// All topological orders, up to `cap` of them (the count can be
    /// factorial). Returns `None` if cyclic.
    pub fn all_topo_sorts(&self, cap: usize) -> Option<Vec<Vec<usize>>> {
        if self.has_cycle() {
            return None;
        }
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.topo_rec(&mut indeg, &mut used, &mut current, &mut out, cap);
        Some(out)
    }

    fn topo_rec(
        &self,
        indeg: &mut Vec<usize>,
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if current.len() == self.len() {
            out.push(current.clone());
            return;
        }
        for u in 0..self.len() {
            if !used[u] && indeg[u] == 0 {
                used[u] = true;
                current.push(u);
                for v in self.successors(u) {
                    indeg[v] -= 1;
                }
                self.topo_rec(indeg, used, current, out, cap);
                for v in self.successors(u) {
                    indeg[v] += 1;
                }
                current.pop();
                used[u] = false;
            }
        }
    }

    /// One directed cycle as a node list `[v0, v1, …, vk]` with
    /// `v0 = vk`'s successor closing the loop, if any exists.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let n = self.len();
        let mut mark = vec![Mark::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if mark[start] != Mark::White {
                continue;
            }
            // Iterative DFS with explicit stack of (node, successor iter pos).
            let mut stack = vec![(start, self.succ[start].iter())];
            mark[start] = Mark::Gray;
            while let Some((u, it)) = stack.last_mut() {
                let u = *u;
                match it.next() {
                    Some(&v) => match mark[v] {
                        Mark::White => {
                            parent[v] = u;
                            mark[v] = Mark::Gray;
                            stack.push((v, self.succ[v].iter()));
                        }
                        Mark::Gray => {
                            // Found a back edge u → v: unwind the cycle.
                            let mut cycle = vec![u];
                            let mut w = u;
                            while w != v {
                                w = parent[w];
                                cycle.push(w);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Mark::Black => {}
                    },
                    None => {
                        mark[u] = Mark::Black;
                        stack.pop();
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_topo() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        assert!(!g.has_cycle());
        let order = g.topo_sort().unwrap();
        let pos = |u: usize| order.iter().position(|&x| x == u).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2) && pos(0) < pos(3));
    }

    #[test]
    fn cycle_detected_and_found() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(g.has_cycle());
        assert!(g.topo_sort().is_none());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        // Every consecutive pair (and the closing pair) is an edge.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 1);
        assert!(g.has_cycle());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle, vec![1]);
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn all_topo_sorts_of_antichain() {
        let g = DiGraph::new(3);
        let all = g.all_topo_sorts(100).unwrap();
        assert_eq!(all.len(), 6); // 3! orders of an antichain
    }

    #[test]
    fn all_topo_sorts_capped() {
        let g = DiGraph::new(5);
        let all = g.all_topo_sorts(10).unwrap();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn all_topo_sorts_respects_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 2);
        let all = g.all_topo_sorts(100).unwrap();
        assert_eq!(all.len(), 3); // 0 before 2, 1 anywhere
        for order in &all {
            let pos = |u: usize| order.iter().position(|&x| x == u).unwrap();
            assert!(pos(0) < pos(2));
        }
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.topo_sort().unwrap(), Vec::<usize>::new());
        assert!(g.find_cycle().is_none());
    }
}
