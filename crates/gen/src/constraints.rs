//! Random integrity constraints in the paper's normal form.
//!
//! Every generated constraint is `C_1 ∧ … ∧ C_l` with pairwise-disjoint
//! conjunct scopes (§2.1's standing assumption). The workhorse shape is
//! the **chain** `x_0 ≤ x_1 ≤ … ≤ x_k` — the shape of capacity
//! ledgers, min/max watermarks and interval bounds — because a rich
//! family of provably-correct transaction templates exists for it
//! (see [`crate::templates`]).

use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
use pwsr_core::ids::ItemId;
use pwsr_core::state::DbState;
use pwsr_core::value::{Domain, Value};
use rand::Rng;

/// The shape of one generated conjunct (drives template selection).
#[derive(Clone, Debug)]
pub enum ConjunctShape {
    /// `items[0] ≤ items[1] ≤ … ≤ items[k]`.
    Chain {
        /// The chained items, low to high.
        items: Vec<ItemId>,
    },
    /// `p > 0 → q > 0` (the Example 2 shape).
    Implication {
        /// Antecedent item.
        p: ItemId,
        /// Consequent item.
        q: ItemId,
    },
    /// `item > 0` (the Example 2 second conjunct).
    Positive {
        /// The constrained item.
        item: ItemId,
    },
    /// `items[0] + items[1] + … = total` — the banking invariant
    /// (conserved sum of account balances).
    ConservedSum {
        /// The accounts.
        items: Vec<ItemId>,
        /// The invariant total.
        total: i64,
    },
}

impl ConjunctShape {
    /// The items of the shape (the conjunct's scope).
    pub fn items(&self) -> Vec<ItemId> {
        match self {
            ConjunctShape::Chain { items } => items.clone(),
            ConjunctShape::Implication { p, q } => vec![*p, *q],
            ConjunctShape::Positive { item } => vec![*item],
            ConjunctShape::ConservedSum { items, .. } => items.clone(),
        }
    }

    /// The shape's formula.
    pub fn formula(&self) -> Formula {
        match self {
            ConjunctShape::Chain { items } => Formula::And(
                items
                    .windows(2)
                    .map(|w| Formula::le(Term::var(w[0]), Term::var(w[1])))
                    .collect(),
            ),
            ConjunctShape::Implication { p, q } => Formula::implies(
                Formula::gt(Term::var(*p), Term::int(0)),
                Formula::gt(Term::var(*q), Term::int(0)),
            ),
            ConjunctShape::Positive { item } => Formula::gt(Term::var(*item), Term::int(0)),
            ConjunctShape::ConservedSum { items, total } => {
                let sum = items
                    .iter()
                    .skip(1)
                    .fold(Term::var(items[0]), |acc, &i| acc.add(Term::var(i)));
                Formula::eq(sum, Term::int(*total))
            }
        }
    }
}

/// Parameters for [`banking_ic`].
#[derive(Clone, Debug)]
pub struct BankConfig {
    /// Number of branches (one conserved-sum conjunct each).
    pub branches: usize,
    /// Accounts per branch (≥ 2 so transfers are possible).
    pub accounts_per_branch: usize,
    /// Initial balance per account.
    pub opening_balance: i64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            branches: 2,
            accounts_per_branch: 3,
            opening_balance: 100,
        }
    }
}

/// Generate a banking constraint: one conserved-sum conjunct per
/// branch over its accounts, all opening at `opening_balance`.
pub fn banking_ic(cfg: &BankConfig) -> GeneratedIc {
    assert!(cfg.accounts_per_branch >= 2, "transfers need two accounts");
    let mut catalog = Catalog::new();
    let mut shapes = Vec::with_capacity(cfg.branches);
    let mut conjuncts = Vec::with_capacity(cfg.branches);
    let mut initial = DbState::new();
    for b in 0..cfg.branches {
        let items: Vec<ItemId> = (0..cfg.accounts_per_branch)
            .map(|i| catalog.add_item(&format!("acct{b}_{i}"), Domain::int_range(-10_000, 10_000)))
            .collect();
        for &item in &items {
            initial.set(item, Value::Int(cfg.opening_balance));
        }
        let total = cfg.opening_balance * cfg.accounts_per_branch as i64;
        let shape = ConjunctShape::ConservedSum {
            items: items.clone(),
            total,
        };
        conjuncts.push(Conjunct::new(b as u32, shape.formula()));
        shapes.push(shape);
    }
    let ic = IntegrityConstraint::new(conjuncts).expect("branch scopes are disjoint");
    GeneratedIc {
        catalog,
        ic,
        shapes,
        initial,
    }
}

/// Parameters for [`random_ic`].
#[derive(Clone, Debug)]
pub struct IcConfig {
    /// Number of conjuncts `l`.
    pub conjuncts: usize,
    /// Chain length per conjunct (items per conjunct), ≥ 1.
    pub items_per_conjunct: usize,
    /// Item domain half-width: domains are `[-width, width]`.
    pub domain_width: i64,
}

impl Default for IcConfig {
    fn default() -> Self {
        IcConfig {
            conjuncts: 3,
            items_per_conjunct: 3,
            domain_width: 1_000,
        }
    }
}

/// A generated constraint with its catalog, shapes and a consistent
/// initial state.
#[derive(Clone, Debug)]
pub struct GeneratedIc {
    /// Items and domains.
    pub catalog: Catalog,
    /// The constraint (disjoint by construction).
    pub ic: IntegrityConstraint,
    /// Per-conjunct shape (index-aligned with `ic.conjuncts()`).
    pub shapes: Vec<ConjunctShape>,
    /// A consistent initial state assigning every item.
    pub initial: DbState,
}

/// Generate a chain-shaped constraint: `cfg.conjuncts` chains of
/// `cfg.items_per_conjunct` items each, with an ascending consistent
/// initial state.
pub fn random_ic<R: Rng>(rng: &mut R, cfg: &IcConfig) -> GeneratedIc {
    let mut catalog = Catalog::new();
    let mut shapes = Vec::with_capacity(cfg.conjuncts);
    let mut conjuncts = Vec::with_capacity(cfg.conjuncts);
    let mut initial = DbState::new();
    for c in 0..cfg.conjuncts {
        let items: Vec<ItemId> = (0..cfg.items_per_conjunct)
            .map(|i| {
                catalog.add_item(
                    &format!("x{c}_{i}"),
                    Domain::int_range(-cfg.domain_width, cfg.domain_width),
                )
            })
            .collect();
        // Ascending initial values with random gaps.
        let mut v = rng.random_range(-8..=0);
        for &item in &items {
            initial.set(item, Value::Int(v));
            v += rng.random_range(0i64..=4);
        }
        let shape = ConjunctShape::Chain {
            items: items.clone(),
        };
        conjuncts.push(Conjunct::new(c as u32, shape.formula()));
        shapes.push(shape);
    }
    let ic = IntegrityConstraint::new(conjuncts).expect("generated scopes are disjoint");
    GeneratedIc {
        catalog,
        ic,
        shapes,
        initial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::solver::Solver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_ic_is_disjoint_and_satisfiable() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let g = random_ic(&mut rng, &IcConfig::default());
            assert!(g.ic.is_disjoint());
            assert_eq!(g.ic.len(), 3);
            let solver = Solver::new(&g.catalog, &g.ic);
            assert!(solver.is_consistent_total(&g.initial).unwrap());
        }
    }

    #[test]
    fn shapes_align_with_conjuncts() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts: 4,
                items_per_conjunct: 2,
                domain_width: 50,
            },
        );
        assert_eq!(g.shapes.len(), g.ic.len());
        for (shape, conj) in g.shapes.iter().zip(g.ic.conjuncts()) {
            let shape_items: pwsr_core::state::ItemSet = shape.items().into_iter().collect();
            assert_eq!(&shape_items, conj.items());
        }
    }

    #[test]
    fn singleton_chains_are_unconstrained_but_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts: 2,
                items_per_conjunct: 1,
                domain_width: 10,
            },
        );
        // A 1-item chain has an empty And ⇒ trivially true.
        let solver = Solver::new(&g.catalog, &g.ic);
        assert!(solver.is_consistent(&DbState::new()));
    }

    #[test]
    fn implication_and_positive_shapes() {
        let mut catalog = Catalog::new();
        let p = catalog.add_item("p", Domain::int_range(-5, 5));
        let q = catalog.add_item("q", Domain::int_range(-5, 5));
        let imp = ConjunctShape::Implication { p, q };
        let pos = ConjunctShape::Positive { item: p };
        assert_eq!(imp.items(), vec![p, q]);
        assert_eq!(pos.items(), vec![p]);
        let st = DbState::from_pairs([(p, Value::Int(1)), (q, Value::Int(-1))]);
        assert!(!imp.formula().eval(&st).unwrap());
        assert!(pos.formula().eval(&st).unwrap());
    }
}
