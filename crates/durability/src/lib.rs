//! # `pwsr_durability` — WAL, hashed checkpoints, crash recovery
//!
//! The durability layer behind the online monitors: every admitted
//! operation (and every retraction) streams into an append-only,
//! length-prefixed, CRC-32-checksummed **write-ahead log** via the
//! [`MonitorJournal`](pwsr_core::monitor::journal::MonitorJournal)
//! hook; periodic **hashed checkpoints** snapshot the permanent
//! prefix below the retraction floor under a SHA-256 state digest;
//! and **recovery** rebuilds a byte-identical monitor from
//! `checkpoint + WAL tail`, truncating (never replaying) torn or
//! bit-flipped tails.
//!
//! The crate is dependency-free by design (the container is offline):
//! CRC-32 and SHA-256 are implemented here, against published test
//! vectors.
//!
//! | module | contents |
//! |---|---|
//! | [`wal`] | frame format, [`Wal`]/[`SharedWal`], sync/error policies, corruption-detecting scan |
//! | [`checkpoint`] | [`state_hash`], the `PWSRCKP1` checkpoint format |
//! | [`mod@recover`] | [`recover`](recover::recover): checkpoint replay + tail replay |
//! | [`fault`] | the deterministic chaos plane: [`FaultPlan`] and its fault points |
//! | [`crc32`], [`sha256`] | the hand-rolled checksums |

#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc32;
pub mod fault;
pub mod recover;
pub mod sha256;
pub mod wal;

pub use checkpoint::{advance_frontier, state_hash, Checkpoint, CheckpointError, StateHash};
pub use fault::{ExecFault, FaultHandle, FaultPlan, WalFault, WalSite};
pub use recover::{recover, RecoverError, Recovered};
pub use wal::{
    scan, SharedWal, SyncPolicy, Wal, WalCorruption, WalErrorPolicy, WalRecord, WalScan, WalStats,
};
