//! End-to-end durability: executors journal their admission stream
//! into a WAL, and `pwsr_durability::recover` rebuilds the monitored
//! trace byte-identically from that log alone — across the lock-based
//! executor, the certified threaded executor, and the OCC threaded
//! executor (whose abort retractions exercise the `Truncate` records).

use pwsr_core::catalog::Catalog;
use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
use pwsr_core::ids::TxnId;
use pwsr_core::monitor::{AdmissionLevel, OnlineMonitor};
use pwsr_core::state::{DbState, ItemSet};
use pwsr_core::value::{Domain, Value};
use pwsr_durability::checkpoint::state_hash;
use pwsr_durability::recover::recover;
use pwsr_durability::wal::{SharedWal, SyncPolicy, Wal};
use pwsr_scheduler::concurrent::{run_threaded_certified, run_threaded_occ_tuned, OccTuning};
use pwsr_scheduler::exec::{run_workload, ExecConfig};
use pwsr_scheduler::policy::{MonitorSpec, PolicySpec};
use pwsr_tplang::ast::Program;
use pwsr_tplang::parser::parse_program;
use std::path::PathBuf;

fn setup() -> (Catalog, IntegrityConstraint, DbState) {
    let mut cat = Catalog::new();
    let a0 = cat.add_item("a0", Domain::int_range(-1000, 1000));
    let b0 = cat.add_item("b0", Domain::int_range(-1000, 1000));
    let a1 = cat.add_item("a1", Domain::int_range(-1000, 1000));
    let b1 = cat.add_item("b1", Domain::int_range(-1000, 1000));
    let ic = IntegrityConstraint::new(vec![
        Conjunct::new(0, Formula::le(Term::var(a0), Term::var(b0))),
        Conjunct::new(1, Formula::le(Term::var(a1), Term::var(b1))),
    ])
    .unwrap();
    let initial = DbState::from_pairs([
        (a0, Value::Int(0)),
        (b0, Value::Int(100)),
        (a1, Value::Int(0)),
        (b1, Value::Int(100)),
    ]);
    (cat, ic, initial)
}

fn scopes_of(ic: &IntegrityConstraint) -> Vec<ItemSet> {
    ic.conjuncts().iter().map(|c| c.items().clone()).collect()
}

fn programs() -> Vec<Program> {
    vec![
        parse_program("T1", "a0 := a0 + 1; a1 := a1 + 1;").unwrap(),
        parse_program("T2", "b0 := b0 + 1;").unwrap(),
        parse_program("T3", "b1 := b1 + 1; a1 := a1 + 2;").unwrap(),
        parse_program("T4", "a0 := a0 + 3;").unwrap(),
    ]
}

/// A file-backed shared WAL in the OS temp dir — the executors here
/// journal through real file I/O (buffered writes, fsync, a reopened
/// read for recovery), not a `Vec<u8>` stand-in.
fn file_wal(name: &str, policy: SyncPolicy) -> (SharedWal, PathBuf) {
    let path = std::env::temp_dir().join(format!("pwsr_sched_{}_{name}.wal", std::process::id()));
    let wal = SharedWal::new(Wal::create(&path, policy).expect("create WAL file"));
    (wal, path)
}

/// Recover from `wal`'s bytes and assert the rebuilt monitor is
/// byte-identical (state hash) to a twin built by replaying `ops`
/// directly and raising the floor to `floor`.
fn assert_recovery_matches(
    scopes: Vec<ItemSet>,
    wal: &SharedWal,
    ops: &[pwsr_core::op::Operation],
    floor: usize,
) {
    let bytes = wal.dump_bytes().expect("dump WAL bytes");
    let rec = recover(scopes.clone(), None, &bytes).expect("recovery must succeed");
    assert!(rec.corruption.is_none(), "clean log: {:?}", rec.corruption);
    assert_eq!(rec.monitor.schedule().ops(), ops, "recovered schedule");
    assert_eq!(rec.monitor.log_floor(), floor, "recovered floor");

    let mut twin = OnlineMonitor::new(scopes);
    for op in ops {
        twin.push_logged(op.clone()).expect("twin replay");
    }
    twin.checkpoint(floor);
    assert_eq!(rec.monitor.verdict(), twin.verdict(), "recovered verdict");
    assert_eq!(
        state_hash(&rec.monitor),
        state_hash(&twin),
        "recovered state hash"
    );
}

/// The lock-based executor journals every admitted operation (and its
/// per-step checkpoint floor raises); replaying the log alone rebuilds
/// the monitored trace, verdict, and floor.
#[test]
fn exec_wal_recovers_monitored_trace() {
    let (cat, ic, initial) = setup();
    let (wal, path) = file_wal("exec", SyncPolicy::PerRecord);
    let policy = PolicySpec::predicate_wise_2pl(&ic)
        .monitor_admission(&ic, AdmissionLevel::Pwsr)
        .durable(wal.clone());
    assert!(policy.name.contains("+WAL"));
    let out = run_workload(&programs(), &cat, &initial, &policy, &ExecConfig::default()).unwrap();
    assert!(out.metrics.wal_appends >= out.metrics.committed_ops);
    assert!(out.metrics.wal_bytes > 0);
    assert!(out.metrics.wal_fsyncs > 0);
    assert_eq!(out.metrics.wal_io_errors, 0, "healthy file WAL");
    assert_recovery_matches(
        scopes_of(&ic),
        &wal,
        out.schedule.ops(),
        out.metrics.monitor_log_floor as usize,
    );
    // The on-disk bytes themselves (not the dump) must also replay.
    wal.sync();
    let disk = std::fs::read(&path).expect("read WAL file");
    let rec = recover(scopes_of(&ic), None, &disk).expect("recover from disk bytes");
    assert_eq!(rec.monitor.schedule().ops(), out.schedule.ops());
    let _ = std::fs::remove_file(&path);
}

/// The certified threaded executor journals under the monitor's
/// sequence mutex, so WAL order is claimed schedule order even under
/// real thread interleaving.
#[test]
fn threaded_certified_wal_recovers_monitored_trace() {
    let (cat, ic, initial) = setup();
    for round in 0..5 {
        let (wal, path) = file_wal(&format!("cert{round}"), SyncPolicy::Batched(8));
        let policy = PolicySpec::predicate_wise_2pl(&ic)
            .monitor_admission(&ic, AdmissionLevel::Pwsr)
            .durable(wal.clone());
        let (schedule, _, _) =
            run_threaded_certified(&programs(), &cat, &initial, &policy, scopes_of(&ic)).unwrap();
        // Batched admission journals one framed multi-op record per
        // transaction; the WAL's batch counters must say exactly that.
        let ws = wal.stats();
        assert_eq!(ws.batch_pushes, 4, "one OpBatch record per transaction");
        assert_eq!(ws.batched_ops, schedule.len() as u64);
        assert_eq!(ws.max_batch, 4, "T1/T3 carry four operations each");
        assert_recovery_matches(scopes_of(&ic), &wal, schedule.ops(), 0);
        let _ = std::fs::remove_file(&path);
    }
}

/// The OCC executor under contention: aborts retract journaled
/// suffixes (`Truncate` records) and re-append on retry, and the
/// aggressive tuning (near-zero spin budget) pushes every dirty wait
/// onto the condvar parking path — no update and no wakeup may be
/// lost, and the WAL must still replay to the committed trace.
#[test]
fn occ_tuned_parking_and_wal_survive_contention() {
    let (cat, ic, initial) = setup();
    let hot: Vec<Program> = (0..6)
        .map(|k| parse_program(&format!("H{k}"), "a0 := a0 + 1;").unwrap())
        .collect();
    let tuning = OccTuning {
        dirty_spin: 1,
        park_budget: 256,
        park_timeout_us: 50,
        backoff_cap: 4,
        ..OccTuning::default()
    };
    for round in 0..10 {
        let (wal, path) = file_wal(&format!("occ{round}"), SyncPolicy::Off);
        let spec = MonitorSpec {
            scopes: scopes_of(&ic),
            level: AdmissionLevel::Pwsr,
            certificate: None,
            wal: Some(wal.clone()),
            compact_every: 0,
        };
        let out = run_threaded_occ_tuned(&hot, &cat, &initial, &spec, 4, 10_000, &tuning).unwrap();
        out.schedule.check_read_coherence(&initial).unwrap();
        assert_eq!(
            out.final_state.get(cat.lookup("a0").unwrap()),
            Some(&Value::Int(6)),
            "all six increments must survive parking: {}",
            out.schedule
        );
        // Every committed op travelled inside a batch record (the OCC
        // path defers writes and flushes reads with them), and abort
        // retries only add batches — never singleton op records.
        assert!(out.metrics.batch_pushes > 0);
        assert!(out.metrics.batched_ops as usize >= out.schedule.len());
        let ws = wal.stats();
        assert!(ws.batch_pushes > 0);
        assert!(ws.batched_ops >= out.schedule.len() as u64);
        assert!(ws.max_batch >= 1);
        assert_recovery_matches(scopes_of(&ic), &wal, out.schedule.ops(), 0);
        let _ = std::fs::remove_file(&path);
    }
}

/// The backoff cap bounds the yield storm: a restart chain under a
/// tiny cap still terminates with nothing lost (the knob changes
/// pacing, never outcomes).
#[test]
fn occ_backoff_cap_preserves_outcomes() {
    let (cat, ic, initial) = setup();
    let hot: Vec<Program> = (0..8)
        .map(|k| parse_program(&format!("H{k}"), "a0 := a0 + 1; b0 := b0 + 1;").unwrap())
        .collect();
    for cap in [0, 1, 24] {
        let tuning = OccTuning {
            backoff_cap: cap,
            ..OccTuning::default()
        };
        let spec = MonitorSpec {
            scopes: scopes_of(&ic),
            level: AdmissionLevel::Pwsr,
            certificate: None,
            wal: None,
            compact_every: 0,
        };
        let out = run_threaded_occ_tuned(&hot, &cat, &initial, &spec, 4, 10_000, &tuning).unwrap();
        assert_eq!(
            out.final_state.get(cat.lookup("a0").unwrap()),
            Some(&Value::Int(8)),
            "cap={cap}"
        );
        assert_eq!(
            out.final_state.get(cat.lookup("b0").unwrap()),
            Some(&Value::Int(108)),
            "cap={cap}"
        );
    }
    // TxnId feeds the backoff phase, so distinct ids stay staggered.
    assert_ne!(TxnId(1), TxnId(2));
}
