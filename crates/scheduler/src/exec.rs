//! The deterministic discrete-event executor.
//!
//! Drives a set of transaction programs against one database under a
//! [`PolicySpec`]: each step, a seeded RNG picks a runnable transaction
//! and attempts its next operation (via
//! [`ProgramSession`]); lock
//! conflicts and delayed-read conflicts block; blocking triggers
//! waits-for deadlock detection; deadlock victims are aborted with
//! transitive *cascading* aborts (any transaction that read from an
//! aborted write), rolled back by trace filtering, and restarted after
//! a backoff. The output is the **committed** schedule — a valid
//! [`Schedule`] in the paper's sense — plus execution metrics.
//!
//! The executor is fully deterministic for a fixed seed, making every
//! experiment reproducible.

use crate::error::{Result, SchedError};
use crate::lock::{LockMode, LockTable, SpaceId};
use crate::metrics::Metrics;
use crate::plan::{access_plan, PlanMode};
use crate::policy::{MonitorAdmission, PolicySpec};
use pwsr_core::catalog::Catalog;
use pwsr_core::dag::OnlineAccessDag;
use pwsr_core::graph::DiGraph;
use pwsr_core::ids::{ItemId, OpIndex, TxnId};
use pwsr_core::op::{OpStruct, Operation};
use pwsr_core::schedule::Schedule;
use pwsr_core::state::DbState;
use pwsr_tplang::ast::Program;
use pwsr_tplang::session::{Pending, ProgramSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

/// How the executor deals with waits-for cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// Let transactions wait; detect cycles in the waits-for graph and
    /// abort a victim (default).
    Detect,
    /// *Wait-die* prevention: a requester may wait only for a younger
    /// holder; a younger requester dies (aborts itself) immediately.
    /// Timestamps survive restarts, so every transaction eventually
    /// becomes oldest and completes.
    WaitDie,
    /// *Wound-wait* prevention: an older requester wounds (aborts)
    /// younger holders; a younger requester waits.
    WoundWait,
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// RNG seed: same seed ⇒ identical execution.
    pub seed: u64,
    /// Step budget (livelock guard).
    pub max_steps: u64,
    /// Access-plan production (enables early release when the policy
    /// asks for it).
    pub plan_mode: PlanMode,
    /// Per-transaction restart cap (starvation guard).
    pub max_restarts: u32,
    /// Deadlock handling: detection or prevention.
    pub deadlock: DeadlockPolicy,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            seed: 0xC0FFEE,
            max_steps: 1_000_000,
            plan_mode: PlanMode::ExactIfFixed,
            max_restarts: 64,
            deadlock: DeadlockPolicy::Detect,
        }
    }
}

/// The result of one workload execution.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The committed schedule (aborted work removed).
    pub schedule: Schedule,
    /// The final database state.
    pub final_state: DbState,
    /// Counters.
    pub metrics: Metrics,
    /// Transactions permanently rejected by the runtime DAG guard
    /// (Theorem 3 admission); empty unless `PolicySpec::dag_guard`.
    pub rejected: Vec<TxnId>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Block {
    Lock {
        space: SpaceId,
        item: ItemId,
        mode: LockMode,
    },
    Dirty {
        writer: TxnId,
    },
}

struct TxnRt<'a> {
    txn: TxnId,
    program: &'a Program,
    catalog: &'a Catalog,
    session: ProgramSession<'a>,
    plan: Option<Vec<OpStruct>>,
    done: bool,
    blocked: Option<Block>,
    restarts: u32,
    backoff: u32,
}

/// Execute `programs` (program `k` runs as transaction `k+1`) from
/// `initial` under `policy`.
pub fn run_workload(
    programs: &[Program],
    catalog: &Catalog,
    initial: &DbState,
    policy: &PolicySpec,
    cfg: &ExecConfig,
) -> Result<ExecOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rts: Vec<TxnRt<'_>> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let txn = TxnId(k as u32 + 1);
            TxnRt {
                txn,
                program: p,
                catalog,
                session: ProgramSession::new(p, catalog, txn),
                plan: access_plan(p, catalog, cfg.plan_mode),
                done: false,
                blocked: None,
                restarts: 0,
                backoff: 0,
            }
        })
        .collect();
    let mut locks = LockTable::new();
    let mut db = initial.clone();
    let mut trace: Vec<Operation> = Vec::new();
    let mut dirty: HashMap<ItemId, TxnId> = HashMap::new();
    let mut metrics = Metrics::default();
    let mut rejected: Vec<TxnId> = Vec::new();
    let mut admission: Option<MonitorAdmission> = policy.monitor.as_ref().map(|m| m.admission());
    let mut dag_guard: Option<DagGuard> = policy.dag_guard.map(DagGuard::new);

    loop {
        if rts.iter().all(|rt| rt.done) {
            break;
        }
        if metrics.steps >= cfg.max_steps {
            return Err(SchedError::StepBudgetExhausted {
                max_steps: cfg.max_steps,
                pending: rts.iter().filter(|rt| !rt.done).map(|rt| rt.txn).collect(),
            });
        }
        let runnable: Vec<usize> = rts
            .iter()
            .enumerate()
            .filter(|(_, rt)| !rt.done && rt.blocked.is_none() && rt.backoff == 0)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            // Let backoffs tick down first.
            let mut ticked = false;
            for rt in rts.iter_mut() {
                if rt.backoff > 0 {
                    rt.backoff -= 1;
                    ticked = true;
                }
            }
            if ticked {
                continue;
            }
            // Everyone live is blocked: there must be a cycle.
            let resolved = resolve_deadlock(
                &mut rts,
                &mut locks,
                &mut trace,
                &mut dirty,
                &mut db,
                initial,
                &mut metrics,
                cfg,
            )?;
            if !resolved {
                return Err(SchedError::Stalled);
            }
            continue;
        }
        let pick = runnable[rng.random_range(0..runnable.len())];
        metrics.steps += 1;
        step(
            pick,
            policy,
            &mut rts,
            &mut locks,
            &mut db,
            &mut trace,
            &mut dirty,
            &mut metrics,
            initial,
            cfg,
            &mut rejected,
            &mut admission,
            &mut dag_guard,
        )?;
        metrics.lock_acquisitions = locks.acquisitions();
        // Bound the admission log's memory: ops before every live
        // transaction's first operation can never be rewritten by an
        // abort, so their undo deltas are dropped. (A cascade that
        // aborts an already-finished transaction is the rare case the
        // sync fallback rebuild covers.)
        if let Some(mon) = admission.as_mut() {
            mon.checkpoint(rts.iter().filter(|rt| !rt.done).map(|rt| rt.txn));
        }
    }

    if let Some(mon) = admission.as_mut() {
        metrics.monitor_resyncs = mon.resyncs();
        metrics.monitor_undone_ops = mon.undone_ops();
        metrics.monitor_log_floor = mon.log_floor() as u64;
        metrics.monitor_skipped_ops = mon.skipped_ops();
        if let Some(wal) = mon.wal() {
            // Make the tail durable before reporting: a crash after
            // this point loses nothing.
            wal.sync();
            let ws = wal.stats();
            metrics.wal_appends = ws.appends;
            metrics.wal_bytes = ws.bytes;
            metrics.wal_fsyncs = ws.fsyncs;
            metrics.wal_io_errors = ws.io_errors;
            metrics.injected_faults = ws.injected_faults;
        }
        // A sticky (unhealed) WAL error means durable history is
        // incomplete: refuse to report the run as successful. Healed
        // incidents (retry/degrade policies) pass through with only
        // `wal_io_errors` raised.
        if let Some(error) = mon.take_wal_error() {
            return Err(SchedError::WalFailed {
                error: error.to_string(),
            });
        }
    }
    metrics.committed_ops = trace.len() as u64;
    let schedule = Schedule::new(trace)?;
    Ok(ExecOutcome {
        schedule,
        final_state: db,
        metrics,
        rejected,
    })
}

/// The runtime Theorem-3 guard, incremental: the conjunct access
/// graph (`DAG(S, IC)` with lock spaces `0..l` as units) rides
/// [`OnlineAccessDag`] instead of being rebuilt from the trace on
/// every step — `O(new ops)` catch-up per step, a probe per intent,
/// and a full replay only when an abort rewrote the trace.
struct DagGuard {
    l: u32,
    dag: OnlineAccessDag,
    /// Transaction → dense entity slot for the access DAG.
    slots: HashMap<TxnId, usize>,
    /// Trace length already folded into the graph.
    synced: usize,
}

impl DagGuard {
    fn new(l: u32) -> DagGuard {
        DagGuard {
            l,
            dag: OnlineAccessDag::new(l as usize),
            slots: HashMap::new(),
            synced: 0,
        }
    }

    fn slot(&mut self, txn: TxnId) -> usize {
        let next = self.slots.len();
        *self.slots.entry(txn).or_insert(next)
    }

    /// Fold trace growth into the graph; a shrunken trace (abort) is
    /// the only case that replays from scratch. Every append in the
    /// executor is preceded by a guard consultation in the same step,
    /// so a rewrite can never masquerade as pure growth.
    fn sync(&mut self, trace: &[Operation], policy: &PolicySpec) {
        if trace.len() < self.synced {
            self.dag.clear();
            self.slots.clear();
            self.synced = 0;
        }
        for (k, op) in trace.iter().enumerate().skip(self.synced) {
            let sp = policy.space_of(op.item).0;
            if sp < self.l {
                let slot = self.slot(op.txn);
                self.dag.record(slot, sp, op.is_write(), OpIndex(k));
            }
        }
        self.synced = trace.len();
    }

    /// Would this access close a conjunct cycle? (Read-only in
    /// effect: the probe retracts its tentative edges.)
    fn rejects(&mut self, txn: TxnId, space: u32, is_write: bool) -> bool {
        let slot = self.slot(txn);
        !self.dag.admits(slot, space, is_write)
    }
}

#[allow(clippy::too_many_arguments)]
fn step(
    pick: usize,
    policy: &PolicySpec,
    rts: &mut Vec<TxnRt<'_>>,
    locks: &mut LockTable,
    db: &mut DbState,
    trace: &mut Vec<Operation>,
    dirty: &mut HashMap<ItemId, TxnId>,
    metrics: &mut Metrics,
    initial: &DbState,
    cfg: &ExecConfig,
    rejected: &mut Vec<TxnId>,
    admission: &mut Option<MonitorAdmission>,
    dag_guard: &mut Option<DagGuard>,
) -> Result<()> {
    let txn = rts[pick].txn;
    let pending = rts[pick].session.pending()?;
    // Online verdict-monitor admission: reject (abort for restart) an
    // operation whose admission would sink the verdict below the
    // policy's configured level. The speculative test never mutates;
    // `sync` walks the undo-log back only when an abort rewrote the
    // trace.
    if let Some(mon) = admission.as_mut() {
        // Statically-certified transactions take the zero-cost fast
        // path: no sync, no speculative test — the certificate proves
        // every interleaving of their component safe.
        if !mon.covers(txn) {
            mon.sync(trace);
            let intent = match &pending {
                Pending::NeedRead(item) => Some((*item, false)),
                Pending::Write(op) => Some((op.item, true)),
                Pending::Done => None,
            };
            if let Some((item, is_write)) = intent {
                if !mon.would_admit(txn, item, is_write) {
                    metrics.monitor_rejections += 1;
                    abort_cascading(pick, rts, locks, trace, dirty, db, initial, metrics, cfg)?;
                    return Ok(());
                }
            }
        }
    }
    // Runtime Theorem-3 guard: refuse the access that would close a
    // conjunct cycle, rejecting the transaction outright (a retry
    // could never commit — committed edges persist in DAG(S, IC)).
    // Incremental: the guard folds trace growth into a live access
    // DAG and answers with a retracting probe — no per-step rebuild.
    if let Some(guard) = dag_guard.as_mut() {
        guard.sync(trace, policy);
        let intent = match &pending {
            Pending::NeedRead(item) => Some((*item, false)),
            Pending::Write(op) => Some((op.item, true)),
            Pending::Done => None,
        };
        if let Some((item, is_write)) = intent {
            let space = policy.space_of(item).0;
            if space < guard.l && guard.rejects(txn, space, is_write) {
                abort_cascading(pick, rts, locks, trace, dirty, db, initial, metrics, cfg)?;
                rts[pick].done = true;
                rejected.push(txn);
                return Ok(());
            }
        }
    }
    match pending {
        Pending::Done => {
            // Commit: release everything, clean the dirty map.
            locks.release_all(txn);
            dirty.retain(|_, w| *w != txn);
            rts[pick].done = true;
            clear_blocks(rts);
            Ok(())
        }
        Pending::NeedRead(item) => {
            if policy.dr_block {
                if let Some(&writer) = dirty.get(&item) {
                    if writer != txn {
                        block(
                            pick,
                            Block::Dirty { writer },
                            rts,
                            locks,
                            trace,
                            dirty,
                            db,
                            initial,
                            metrics,
                            cfg,
                        )?;
                        return Ok(());
                    }
                }
            }
            let space = policy.space_of(item);
            if let Err(_holders) = locks.try_acquire(txn, space, item, LockMode::Shared) {
                block(
                    pick,
                    Block::Lock {
                        space,
                        item,
                        mode: LockMode::Shared,
                    },
                    rts,
                    locks,
                    trace,
                    dirty,
                    db,
                    initial,
                    metrics,
                    cfg,
                )?;
                return Ok(());
            }
            let value = db.require(item)?.clone();
            let op = rts[pick].session.feed_read(value)?;
            if let Some(mon) = admission.as_mut() {
                mon.observe(&op);
            }
            trace.push(op);
            after_op(pick, policy, rts, locks);
            Ok(())
        }
        Pending::Write(op) => {
            let space = policy.space_of(op.item);
            if let Err(_holders) = locks.try_acquire(txn, space, op.item, LockMode::Exclusive) {
                block(
                    pick,
                    Block::Lock {
                        space,
                        item: op.item,
                        mode: LockMode::Exclusive,
                    },
                    rts,
                    locks,
                    trace,
                    dirty,
                    db,
                    initial,
                    metrics,
                    cfg,
                )?;
                return Ok(());
            }
            db.set(op.item, op.value.clone());
            dirty.insert(op.item, txn);
            rts[pick].session.advance_write()?;
            if let Some(mon) = admission.as_mut() {
                mon.observe(&op);
            }
            trace.push(op);
            after_op(pick, policy, rts, locks);
            Ok(())
        }
    }
}

/// Post-operation hooks: early per-space lock release driven by the
/// access plan.
fn after_op(pick: usize, policy: &PolicySpec, rts: &mut Vec<TxnRt<'_>>, locks: &mut LockTable) {
    if !policy.early_release {
        return;
    }
    let rt = &mut rts[pick];
    let Some(plan) = &rt.plan else {
        return; // no plan ⇒ hold to end
    };
    let emitted = rt.session.emitted();
    if emitted > plan.len() {
        // Plan deviation (defensive; cannot happen for certified
        // fixed-structure programs): disable early release.
        rt.plan = None;
        return;
    }
    let remaining_spaces: BTreeSet<SpaceId> = plan[emitted..]
        .iter()
        .map(|o| policy.space_of(o.item))
        .collect();
    let txn = rt.txn;
    let mut released = false;
    for space in locks.spaces_held(txn) {
        if !remaining_spaces.contains(&space) {
            locks.release_space(txn, space);
            released = true;
        }
    }
    if released {
        clear_blocks(rts);
    }
}

#[allow(clippy::too_many_arguments)]
fn block(
    pick: usize,
    why: Block,
    rts: &mut Vec<TxnRt<'_>>,
    locks: &mut LockTable,
    trace: &mut Vec<Operation>,
    dirty: &mut HashMap<ItemId, TxnId>,
    db: &mut DbState,
    initial: &DbState,
    metrics: &mut Metrics,
    cfg: &ExecConfig,
) -> Result<()> {
    metrics.waits += 1;
    // Who stands in the way right now?
    let index: HashMap<TxnId, usize> = rts.iter().enumerate().map(|(i, rt)| (rt.txn, i)).collect();
    let opponents: Vec<usize> = match &why {
        Block::Lock { space, item, mode } => locks
            .conflicting_holders(rts[pick].txn, *space, *item, *mode)
            .into_iter()
            .filter_map(|t| index.get(&t).copied())
            .filter(|&j| !rts[j].done)
            .collect(),
        Block::Dirty { writer } => index
            .get(writer)
            .copied()
            .filter(|&j| !rts[j].done)
            .into_iter()
            .collect(),
    };
    match cfg.deadlock {
        DeadlockPolicy::Detect => {
            rts[pick].blocked = Some(why);
            // A new edge appeared: look for a cycle right away.
            let _ = resolve_deadlock(rts, locks, trace, dirty, db, initial, metrics, cfg)?;
        }
        DeadlockPolicy::WaitDie => {
            // Wait only for younger opponents (requester older = smaller
            // timestamp); otherwise die. Timestamps = original TxnId,
            // stable across restarts.
            let me = rts[pick].txn;
            if opponents.iter().all(|&j| me < rts[j].txn) {
                rts[pick].blocked = Some(why);
            } else {
                // Prevention: the requester dies; no cycle can ever form.
                abort_cascading(pick, rts, locks, trace, dirty, db, initial, metrics, cfg)?;
            }
        }
        DeadlockPolicy::WoundWait => {
            let me = rts[pick].txn;
            let younger: Vec<usize> = opponents
                .iter()
                .copied()
                .filter(|&j| me < rts[j].txn)
                .collect();
            if younger.is_empty() {
                // All opponents are older: wait politely.
                rts[pick].blocked = Some(why);
            } else {
                // Wound every younger holder; retry the operation on a
                // later step.
                for j in younger {
                    if !rts[j].done {
                        abort_cascading(j, rts, locks, trace, dirty, db, initial, metrics, cfg)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Build the waits-for graph from the current blocks and resolve one
/// cycle if present. Returns whether a cycle was resolved.
#[allow(clippy::too_many_arguments)]
fn resolve_deadlock(
    rts: &mut Vec<TxnRt<'_>>,
    locks: &mut LockTable,
    trace: &mut Vec<Operation>,
    dirty: &mut HashMap<ItemId, TxnId>,
    db: &mut DbState,
    initial: &DbState,
    metrics: &mut Metrics,
    cfg: &ExecConfig,
) -> Result<bool> {
    let index: HashMap<TxnId, usize> = rts.iter().enumerate().map(|(i, rt)| (rt.txn, i)).collect();
    let mut graph = DiGraph::new(rts.len());
    for (i, rt) in rts.iter().enumerate() {
        match &rt.blocked {
            Some(Block::Lock { space, item, mode }) => {
                for holder in locks.conflicting_holders(rt.txn, *space, *item, *mode) {
                    if let Some(&j) = index.get(&holder) {
                        if !rts[j].done {
                            graph.add_edge(i, j);
                        }
                    }
                }
            }
            Some(Block::Dirty { writer }) => {
                if let Some(&j) = index.get(writer) {
                    if !rts[j].done {
                        graph.add_edge(i, j);
                    }
                }
            }
            None => {}
        }
    }
    let Some(cycle) = graph.find_cycle() else {
        return Ok(false);
    };
    metrics.deadlocks += 1;
    // Victim: the cycle member with the fewest emitted operations
    // (cheapest to redo); ties broken by the larger transaction id.
    let &victim = cycle
        .iter()
        .min_by_key(|&&i| (rts[i].session.emitted(), std::cmp::Reverse(rts[i].txn)))
        .expect("cycles are non-empty");
    abort_cascading(victim, rts, locks, trace, dirty, db, initial, metrics, cfg)?;
    Ok(true)
}

/// Abort `victim` plus every transaction that (transitively) read one
/// of an aborted transaction's writes; roll back by filtering the trace
/// and replaying, then restart the aborted transactions with backoff.
#[allow(clippy::too_many_arguments)]
fn abort_cascading(
    victim: usize,
    rts: &mut Vec<TxnRt<'_>>,
    locks: &mut LockTable,
    trace: &mut Vec<Operation>,
    dirty: &mut HashMap<ItemId, TxnId>,
    db: &mut DbState,
    initial: &DbState,
    metrics: &mut Metrics,
    cfg: &ExecConfig,
) -> Result<()> {
    // Transitive closure of dirty readers.
    let mut aborted: BTreeSet<TxnId> = BTreeSet::new();
    aborted.insert(rts[victim].txn);
    loop {
        let mut grew = false;
        for (i, op) in trace.iter().enumerate() {
            if !op.is_read() || aborted.contains(&op.txn) {
                continue;
            }
            let writer = trace[..i]
                .iter()
                .rev()
                .find(|w| w.is_write() && w.item == op.item)
                .map(|w| w.txn);
            if let Some(w) = writer {
                if aborted.contains(&w) && aborted.insert(op.txn) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Roll back: drop aborted ops, replay the rest.
    trace.retain(|op| !aborted.contains(&op.txn));
    *db = initial.clone();
    for op in trace.iter() {
        if op.is_write() {
            db.set(op.item, op.value.clone());
        }
    }
    // Rebuild the dirty map from the filtered trace.
    dirty.clear();
    let done_set: BTreeSet<TxnId> = rts.iter().filter(|rt| rt.done).map(|rt| rt.txn).collect();
    for op in trace.iter() {
        if op.is_write() {
            if done_set.contains(&op.txn) {
                dirty.remove(&op.item);
            } else {
                dirty.insert(op.item, op.txn);
            }
        }
    }
    // Reset the aborted transactions.
    metrics.aborts += aborted.len() as u64;
    for rt in rts.iter_mut() {
        if aborted.contains(&rt.txn) {
            locks.release_all(rt.txn);
            rt.session = ProgramSession::new(rt.program, rt.catalog, rt.txn);
            rt.restarts += 1;
            metrics.restarts += 1;
            if rt.restarts > cfg.max_restarts {
                return Err(SchedError::RestartLimit {
                    txn: rt.txn,
                    restarts: rt.restarts,
                });
            }
            rt.backoff = rt.restarts;
            rt.blocked = None;
            rt.done = false;
        }
    }
    clear_blocks(rts);
    Ok(())
}

/// Unblock everyone: blocks are re-derived on the next attempt. Cheap
/// revalidation after any lock/dirty state change.
fn clear_blocks(rts: &mut [TxnRt<'_>]) {
    for rt in rts.iter_mut() {
        rt.blocked = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwsr_core::constraint::{Conjunct, Formula, IntegrityConstraint, Term};
    use pwsr_core::pwsr::is_pwsr;
    use pwsr_core::serializability::is_conflict_serializable;
    use pwsr_core::value::{Domain, Value};
    use pwsr_tplang::parser::parse_program;

    /// Two conjuncts: C0 over {a0, b0}, C1 over {a1, b1}.
    fn setup() -> (Catalog, IntegrityConstraint, DbState) {
        let mut cat = Catalog::new();
        let a0 = cat.add_item("a0", Domain::int_range(-100, 100));
        let b0 = cat.add_item("b0", Domain::int_range(-100, 100));
        let a1 = cat.add_item("a1", Domain::int_range(-100, 100));
        let b1 = cat.add_item("b1", Domain::int_range(-100, 100));
        let ic = IntegrityConstraint::new(vec![
            Conjunct::new(0, Formula::le(Term::var(a0), Term::var(b0))),
            Conjunct::new(1, Formula::le(Term::var(a1), Term::var(b1))),
        ])
        .unwrap();
        let initial = DbState::from_pairs([
            (a0, Value::Int(0)),
            (b0, Value::Int(10)),
            (a1, Value::Int(0)),
            (b1, Value::Int(10)),
        ]);
        (cat, ic, initial)
    }

    fn cross_conjunct_programs() -> Vec<Program> {
        vec![
            parse_program("T1", "a0 := a0 + 1; a1 := a1 + 1;").unwrap(),
            parse_program("T2", "b1 := b1 + 1; b0 := b0 + 1;").unwrap(),
            parse_program("T3", "a0 := a0 + 2;").unwrap(),
        ]
    }

    #[test]
    fn global_2pl_produces_serializable_schedules() {
        let (cat, _ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..20 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out =
                run_workload(&programs, &cat, &initial, &PolicySpec::global_2pl(), &cfg).unwrap();
            assert!(
                is_conflict_serializable(&out.schedule),
                "seed {seed}: {}",
                out.schedule
            );
            out.schedule.check_read_coherence(&initial).unwrap();
        }
    }

    #[test]
    fn pw_2pl_produces_pwsr_schedules() {
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..20 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let policy = PolicySpec::predicate_wise_2pl_early(&ic);
            let out = run_workload(&programs, &cat, &initial, &policy, &cfg).unwrap();
            assert!(is_pwsr(&out.schedule, &ic).ok(), "seed {seed}");
            out.schedule.check_read_coherence(&initial).unwrap();
        }
    }

    #[test]
    fn final_state_accumulates_all_writes() {
        let (cat, _ic, initial) = setup();
        let programs = vec![
            parse_program("T1", "a0 := a0 + 1;").unwrap(),
            parse_program("T2", "a0 := a0 + 1;").unwrap(),
        ];
        let out = run_workload(
            &programs,
            &cat,
            &initial,
            &PolicySpec::global_2pl(),
            &ExecConfig::default(),
        )
        .unwrap();
        // Both increments applied (lost updates prevented by locking).
        assert_eq!(
            out.final_state.get(cat.lookup("a0").unwrap()),
            Some(&Value::Int(2))
        );
        assert_eq!(out.metrics.committed_ops, 4);
    }

    #[test]
    fn deadlock_detected_and_resolved() {
        // Opposite lock orders on x and y force a deadlock for some
        // schedule draws; the run must nonetheless complete.
        let mut cat = Catalog::new();
        cat.add_item("x", Domain::int_range(-100, 100));
        cat.add_item("y", Domain::int_range(-100, 100));
        let initial = DbState::from_pairs([
            (cat.lookup("x").unwrap(), Value::Int(0)),
            (cat.lookup("y").unwrap(), Value::Int(0)),
        ]);
        let programs = vec![
            parse_program("T1", "x := x + 1; y := y + 1;").unwrap(),
            parse_program("T2", "y := y + 10; x := x + 10;").unwrap(),
        ];
        let mut saw_deadlock = false;
        for seed in 0..40 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out =
                run_workload(&programs, &cat, &initial, &PolicySpec::global_2pl(), &cfg).unwrap();
            saw_deadlock |= out.metrics.deadlocks > 0;
            // Both increments survive restarts: x = y = 11 always.
            assert_eq!(
                out.final_state.get(cat.lookup("x").unwrap()),
                Some(&Value::Int(11)),
                "seed {seed}"
            );
            assert_eq!(
                out.final_state.get(cat.lookup("y").unwrap()),
                Some(&Value::Int(11))
            );
            assert!(is_conflict_serializable(&out.schedule));
            out.schedule.check_read_coherence(&initial).unwrap();
        }
        assert!(saw_deadlock, "expected at least one seed to deadlock");
    }

    #[test]
    fn early_release_never_waits_more_than_hold_to_end() {
        let (cat, ic, initial) = setup();
        // A long transaction touching both conjuncts, plus short ones
        // contending on each conjunct.
        let programs = vec![
            parse_program(
                "LONG",
                "a0 := a0 + 1; b0 := b0 + 1; a1 := a1 + 1; b1 := b1 + 1;",
            )
            .unwrap(),
            parse_program("S0", "a0 := a0 + 1;").unwrap(),
            parse_program("S1", "a1 := a1 + 1;").unwrap(),
        ];
        let mut hold_waits = 0u64;
        let mut early_waits = 0u64;
        for seed in 0..30 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let hold = run_workload(
                &programs,
                &cat,
                &initial,
                &PolicySpec::predicate_wise_2pl(&ic),
                &cfg,
            )
            .unwrap();
            let early = run_workload(
                &programs,
                &cat,
                &initial,
                &PolicySpec::predicate_wise_2pl_early(&ic),
                &cfg,
            )
            .unwrap();
            hold_waits += hold.metrics.waits;
            early_waits += early.metrics.waits;
            assert!(is_pwsr(&early.schedule, &ic).ok());
        }
        assert!(
            early_waits <= hold_waits,
            "early release should not increase waiting ({early_waits} vs {hold_waits})"
        );
    }

    #[test]
    fn dr_blocking_yields_delayed_read_schedules() {
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..20 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let policy = PolicySpec::predicate_wise_2pl_early(&ic).dr_blocking();
            let out = run_workload(&programs, &cat, &initial, &policy, &cfg).unwrap();
            assert!(
                pwsr_core::dr::is_delayed_read(&out.schedule),
                "seed {seed}: {}",
                out.schedule
            );
        }
    }

    #[test]
    fn hold_to_end_pw2pl_is_dr_by_construction() {
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..10 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out = run_workload(
                &programs,
                &cat,
                &initial,
                &PolicySpec::predicate_wise_2pl(&ic),
                &cfg,
            )
            .unwrap();
            assert!(pwsr_core::dr::is_delayed_read(&out.schedule));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        let cfg = ExecConfig {
            seed: 42,
            ..ExecConfig::default()
        };
        let policy = PolicySpec::predicate_wise_2pl_early(&ic);
        let a = run_workload(&programs, &cat, &initial, &policy, &cfg).unwrap();
        let b = run_workload(&programs, &cat, &initial, &policy, &cfg).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn empty_workload() {
        let (cat, _ic, initial) = setup();
        let out = run_workload(
            &[],
            &cat,
            &initial,
            &PolicySpec::global_2pl(),
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(out.schedule.is_empty());
        assert_eq!(out.final_state, initial);
    }

    #[test]
    fn prevention_policies_complete_deadlock_prone_workloads() {
        // The opposite-lock-order workload that deadlocks under
        // detection must also complete under wait-die and wound-wait,
        // with zero detected cycles (prevention forbids them).
        let mut cat = Catalog::new();
        cat.add_item("x", Domain::int_range(-100, 100));
        cat.add_item("y", Domain::int_range(-100, 100));
        let initial = DbState::from_pairs([
            (cat.lookup("x").unwrap(), Value::Int(0)),
            (cat.lookup("y").unwrap(), Value::Int(0)),
        ]);
        let programs = vec![
            parse_program("T1", "x := x + 1; y := y + 1;").unwrap(),
            parse_program("T2", "y := y + 10; x := x + 10;").unwrap(),
            parse_program("T3", "x := x + 100; y := y + 100;").unwrap(),
        ];
        for policy in [DeadlockPolicy::WaitDie, DeadlockPolicy::WoundWait] {
            let mut restarts = 0;
            for seed in 0..30 {
                let cfg = ExecConfig {
                    seed,
                    deadlock: policy,
                    ..ExecConfig::default()
                };
                let out = run_workload(&programs, &cat, &initial, &PolicySpec::global_2pl(), &cfg)
                    .unwrap();
                assert_eq!(
                    out.metrics.deadlocks, 0,
                    "{policy:?} must not detect cycles"
                );
                restarts += out.metrics.restarts;
                assert_eq!(
                    out.final_state.get(cat.lookup("x").unwrap()),
                    Some(&Value::Int(111)),
                    "{policy:?} seed {seed}"
                );
                assert_eq!(
                    out.final_state.get(cat.lookup("y").unwrap()),
                    Some(&Value::Int(111))
                );
                assert!(is_conflict_serializable(&out.schedule));
                out.schedule.check_read_coherence(&initial).unwrap();
            }
            assert!(restarts > 0, "{policy:?}: contention should cause restarts");
        }
    }

    #[test]
    fn dag_guard_rejects_cyclic_access_and_stays_correct() {
        // The Example-2 program pair accesses the two conjuncts in a
        // cyclic pattern; under the guarded policy one of the pair is
        // rejected and the committed schedule always has an acyclic
        // DAG (and, per Theorem 3, stays strongly correct).
        use pwsr_core::dag::data_access_graph;
        use pwsr_core::solver::Solver;
        use pwsr_core::strong::check_strong_correctness;
        use pwsr_tplang::programs::example2;
        let sc = example2();
        let policy = PolicySpec::predicate_wise_2pl_early(&sc.ic).dag_guarded(&sc.ic);
        let solver = Solver::new(&sc.catalog, &sc.ic);
        let mut rejections = 0u32;
        for seed in 0..30 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out = run_workload(&sc.programs, &sc.catalog, &sc.initial, &policy, &cfg).unwrap();
            let dag = data_access_graph(&out.schedule, &sc.ic);
            assert!(
                dag.is_acyclic(),
                "seed {seed}: guard must keep the DAG acyclic"
            );
            assert!(is_pwsr(&out.schedule, &sc.ic).ok());
            let report = check_strong_correctness(&out.schedule, &solver, &sc.initial);
            assert!(report.ok(), "seed {seed}: {report:?}");
            rejections += out.rejected.len() as u32;
        }
        assert!(rejections > 0, "the cyclic pair must trigger rejections");
    }

    #[test]
    fn dag_guard_admits_acyclic_mixes_untouched() {
        use pwsr_tplang::programs::example2;
        let sc = example2();
        // Both programs read conjunct 0 and write conjunct 1 only.
        let mix = vec![
            parse_program("P1", "c := max(a, 1);").unwrap(),
            parse_program("P2", "c := abs(b) + 1;").unwrap(),
        ];
        let policy = PolicySpec::predicate_wise_2pl_early(&sc.ic).dag_guarded(&sc.ic);
        for seed in 0..20 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out = run_workload(&mix, &sc.catalog, &sc.initial, &policy, &cfg).unwrap();
            assert!(out.rejected.is_empty(), "seed {seed}");
            assert_eq!(out.schedule.txn_ids().len(), 2);
        }
    }

    #[test]
    fn monitor_admission_keeps_weak_policies_serializable() {
        // Per-item lock spaces with early release are NOT two-phase
        // globally: anomalies commit. The online monitor at level
        // Serializable is then the only guard — it must reject the
        // cycle-closing operations and keep every committed schedule
        // conflict-serializable.
        use pwsr_core::monitor::AdmissionLevel;
        let (cat, ic, initial) = setup();
        let programs = vec![
            parse_program("T1", "a0 := b0 + 1;").unwrap(),
            parse_program("T2", "b0 := a0 + 1;").unwrap(),
            parse_program("T3", "a0 := a0 + 1;").unwrap(),
        ];
        let weak = || {
            let mut p = PolicySpec::from_table("item-2PL", HashMap::new(), 0);
            p.early_release = true;
            p
        };
        let mut anomalies = 0u64;
        let mut rejections = 0u64;
        for seed in 0..30 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let out = run_workload(&programs, &cat, &initial, &weak(), &cfg).unwrap();
            anomalies += u64::from(!is_conflict_serializable(&out.schedule));
            let guarded = weak().monitor_admission(&ic, AdmissionLevel::Serializable);
            let out = run_workload(&programs, &cat, &initial, &guarded, &cfg).unwrap();
            assert!(
                is_conflict_serializable(&out.schedule),
                "seed {seed}: {}",
                out.schedule
            );
            out.schedule.check_read_coherence(&initial).unwrap();
            rejections += out.metrics.monitor_rejections;
        }
        assert!(anomalies > 0, "the weak policy must exhibit anomalies");
        assert!(rejections > 0, "the monitor must have intervened");
    }

    #[test]
    fn monitor_admission_is_transparent_under_hold_to_end_pw_2pl() {
        // Hold-to-end PW-2PL already commits PWSR + DR schedules: the
        // live certifier rides along without a single rejection.
        use pwsr_core::monitor::AdmissionLevel;
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..15 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let policy =
                PolicySpec::predicate_wise_2pl(&ic).monitor_admission(&ic, AdmissionLevel::PwsrDr);
            let out = run_workload(&programs, &cat, &initial, &policy, &cfg).unwrap();
            assert_eq!(out.metrics.monitor_rejections, 0, "seed {seed}");
            assert!(is_pwsr(&out.schedule, &ic).ok());
            assert!(pwsr_core::dr::is_delayed_read(&out.schedule));
        }
    }

    #[test]
    fn monitor_admission_enforces_dr_with_early_release() {
        // PW-2PL-early can commit non-DR schedules; the PwsrDr floor
        // must forbid them while keeping the workload completable.
        use pwsr_core::monitor::AdmissionLevel;
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..15 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let policy = PolicySpec::predicate_wise_2pl_early(&ic)
                .monitor_admission(&ic, AdmissionLevel::PwsrDr);
            let out = run_workload(&programs, &cat, &initial, &policy, &cfg).unwrap();
            assert!(
                pwsr_core::dr::is_delayed_read(&out.schedule),
                "seed {seed}: {}",
                out.schedule
            );
            assert!(is_pwsr(&out.schedule, &ic).ok());
        }
    }

    /// A static certificate turns monitor admission into a no-op for
    /// covered transactions: identical committed outcomes, zero
    /// rejections, and `monitor_skipped_ops` accounting for every
    /// certified operation — the zero-cost fast path, end to end
    /// through the discrete-event executor.
    #[test]
    fn monitor_admission_certificate_is_transparent_and_skips() {
        use crate::policy::StaticCertificate;
        use pwsr_core::monitor::AdmissionLevel;
        let (cat, ic, initial) = setup();
        let programs = cross_conjunct_programs();
        for seed in 0..15 {
            let cfg = ExecConfig {
                seed,
                ..ExecConfig::default()
            };
            let monitored =
                PolicySpec::predicate_wise_2pl(&ic).monitor_admission(&ic, AdmissionLevel::Pwsr);
            let certified = monitored.clone().certified(StaticCertificate::full(
                AdmissionLevel::Pwsr,
                programs.len(),
            ));
            let base = run_workload(&programs, &cat, &initial, &monitored, &cfg).unwrap();
            let fast = run_workload(&programs, &cat, &initial, &certified, &cfg).unwrap();
            // Same deterministic interleaving, same commits — the
            // certificate changes cost, not behaviour (PW-2PL already
            // commits only PWSR schedules, so skipping is sound here).
            assert_eq!(base.schedule, fast.schedule, "seed {seed}");
            assert_eq!(base.final_state, fast.final_state);
            assert_eq!(fast.metrics.monitor_rejections, 0);
            assert_eq!(base.metrics.monitor_skipped_ops, 0);
            // Every committed op rode the fast path (aborted attempts
            // may have skipped a few more before their trace rewrite).
            assert!(
                fast.metrics.monitor_skipped_ops >= fast.metrics.committed_ops,
                "seed {seed}: {} < {}",
                fast.metrics.monitor_skipped_ops,
                fast.metrics.committed_ops
            );
            assert!(is_pwsr(&fast.schedule, &ic).ok());
        }
    }

    #[test]
    fn wound_wait_favors_elders() {
        // Under wound-wait, the oldest transaction is never aborted.
        let mut cat = Catalog::new();
        cat.add_item("x", Domain::int_range(-100, 100));
        cat.add_item("y", Domain::int_range(-100, 100));
        let initial = DbState::from_pairs([
            (cat.lookup("x").unwrap(), Value::Int(0)),
            (cat.lookup("y").unwrap(), Value::Int(0)),
        ]);
        let programs = vec![
            parse_program("OLD", "x := x + 1; y := y + 1;").unwrap(),
            parse_program("YOUNG", "y := y + 10; x := x + 10;").unwrap(),
        ];
        for seed in 0..30 {
            let cfg = ExecConfig {
                seed,
                deadlock: DeadlockPolicy::WoundWait,
                ..ExecConfig::default()
            };
            let out =
                run_workload(&programs, &cat, &initial, &PolicySpec::global_2pl(), &cfg).unwrap();
            // Both effects present; T1 (older) may wound T2 but both
            // finish.
            assert_eq!(
                out.final_state.get(cat.lookup("x").unwrap()),
                Some(&Value::Int(11))
            );
        }
    }
}
