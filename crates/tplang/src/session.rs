//! Incremental program execution for schedulers.
//!
//! A [`ProgramSession`] lets a concurrency-control scheduler drive one
//! program operation-by-operation against an evolving database:
//!
//! ```text
//! loop {
//!     match session.pending()? {
//!         Pending::NeedRead(item) => {            // next op is a read
//!             let v = db.get(item);               // scheduler decides *when*
//!             let op = session.feed_read(v);      // logs value, returns r-op
//!             schedule.push(op);
//!         }
//!         Pending::Write(op) => {                 // next op is a write
//!             db.set(op.item, op.value.clone());
//!             schedule.push(op);
//!             session.advance_write()?;
//!         }
//!         Pending::Done => break,
//!     }
//! }
//! ```
//!
//! Internally each call replays the program against the accumulated
//! read log ([`crate::interp::run_with_reads`]); programs are
//! deterministic, so the replay always reaches the same frontier.

use crate::ast::Program;
use crate::error::{Result, TpError};
use crate::interp::{run_with_reads, RunOutcome};
use pwsr_core::catalog::Catalog;
use pwsr_core::ids::{ItemId, TxnId};
use pwsr_core::op::Operation;
use pwsr_core::value::Value;

/// What the program will do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pending {
    /// The next operation is a read of this item; the scheduler must
    /// supply the current value via [`ProgramSession::feed_read`].
    NeedRead(ItemId),
    /// The next operation is this write; apply it and call
    /// [`ProgramSession::advance_write`].
    Write(Operation),
    /// The program has no further operations.
    Done,
}

/// A resumable execution of one program as one transaction.
#[derive(Clone, Debug)]
pub struct ProgramSession<'p> {
    program: &'p Program,
    catalog: &'p Catalog,
    txn: TxnId,
    reads: Vec<Value>,
    /// Operations already handed to the scheduler.
    emitted: usize,
}

impl<'p> ProgramSession<'p> {
    /// Start a session for `program` running as transaction `txn`.
    pub fn new(program: &'p Program, catalog: &'p Catalog, txn: TxnId) -> ProgramSession<'p> {
        ProgramSession {
            program,
            catalog,
            txn,
            reads: Vec::new(),
            emitted: 0,
        }
    }

    /// The transaction id this session runs under.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Number of operations already emitted to the scheduler.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// What happens next?
    pub fn pending(&self) -> Result<Pending> {
        match run_with_reads(self.program, self.catalog, self.txn, &self.reads)? {
            RunOutcome::Complete { ops } => {
                if self.emitted < ops.len() {
                    Ok(Pending::Write(ops[self.emitted].clone()))
                } else {
                    Ok(Pending::Done)
                }
            }
            RunOutcome::NeedsRead { item, ops } => {
                if self.emitted < ops.len() {
                    Ok(Pending::Write(ops[self.emitted].clone()))
                } else {
                    Ok(Pending::NeedRead(item))
                }
            }
        }
    }

    /// Supply the value for the pending read; returns the read
    /// operation to append to the schedule.
    ///
    /// Must only be called when [`ProgramSession::pending`] returned
    /// [`Pending::NeedRead`].
    pub fn feed_read(&mut self, value: Value) -> Result<Operation> {
        let Pending::NeedRead(item) = self.pending()? else {
            return Err(TpError::Parse {
                at: 0,
                msg: "feed_read called while no read is pending".into(),
            });
        };
        self.reads.push(value.clone());
        self.emitted += 1;
        Ok(Operation::read(self.txn, item, value))
    }

    /// Acknowledge the pending write (after applying it to the store).
    pub fn advance_write(&mut self) -> Result<()> {
        match self.pending()? {
            Pending::Write(_) => {
                self.emitted += 1;
                Ok(())
            }
            other => Err(TpError::Parse {
                at: 0,
                msg: format!("advance_write called while pending is {other:?}"),
            }),
        }
    }

    /// Has the program emitted all of its operations?
    pub fn is_done(&self) -> Result<bool> {
        Ok(matches!(self.pending()?, Pending::Done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use pwsr_core::state::DbState;
    use pwsr_core::value::Domain;

    fn catalog_abc() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.add_item(name, Domain::int_range(-100, 100));
        }
        cat
    }

    /// Drive a session to completion against a mutable state, returning
    /// the operations in emission order.
    fn drive(session: &mut ProgramSession<'_>, db: &mut DbState) -> Vec<Operation> {
        let mut ops = Vec::new();
        loop {
            match session.pending().unwrap() {
                Pending::NeedRead(item) => {
                    let v = db.get(item).unwrap().clone();
                    ops.push(session.feed_read(v).unwrap());
                }
                Pending::Write(op) => {
                    db.set(op.item, op.value.clone());
                    ops.push(op);
                    session.advance_write().unwrap();
                }
                Pending::Done => return ops,
            }
        }
    }

    #[test]
    fn session_matches_isolated_execution() {
        let cat = catalog_abc();
        let p = parse_program("P", "a := 1; if (c > 0) then b := abs(b) + 1;").unwrap();
        let initial = DbState::from_pairs([
            (cat.lookup("a").unwrap(), Value::Int(-1)),
            (cat.lookup("b").unwrap(), Value::Int(-1)),
            (cat.lookup("c").unwrap(), Value::Int(1)),
        ]);
        let isolated = crate::interp::execute(&p, &cat, TxnId(1), &initial).unwrap();
        let mut db = initial.clone();
        let mut session = ProgramSession::new(&p, &cat, TxnId(1));
        let ops = drive(&mut session, &mut db);
        assert_eq!(ops, isolated.ops().to_vec());
        assert!(session.is_done().unwrap());
    }

    #[test]
    fn session_sees_intervening_writes() {
        // Two sessions interleaved: T2 reads a *after* T1 writes it.
        let cat = catalog_abc();
        let p1 = parse_program("TP1", "a := 1;").unwrap();
        let p2 = parse_program("TP2", "c := a;").unwrap();
        let a = cat.lookup("a").unwrap();
        let mut db = DbState::from_pairs([(a, Value::Int(-1))]);
        let mut s1 = ProgramSession::new(&p1, &cat, TxnId(1));
        let mut s2 = ProgramSession::new(&p2, &cat, TxnId(2));
        // T1's write first.
        let Pending::Write(w) = s1.pending().unwrap() else {
            panic!()
        };
        db.set(w.item, w.value.clone());
        s1.advance_write().unwrap();
        // Now T2 reads a = 1 (T1's value), not −1.
        let Pending::NeedRead(item) = s2.pending().unwrap() else {
            panic!()
        };
        assert_eq!(item, a);
        let op = s2.feed_read(db.get(a).unwrap().clone()).unwrap();
        assert_eq!(op.value, Value::Int(1));
    }

    #[test]
    fn misuse_is_rejected() {
        let cat = catalog_abc();
        let p = parse_program("P", "a := 1;").unwrap();
        let mut s = ProgramSession::new(&p, &cat, TxnId(1));
        // Pending is a write; feeding a read is an error.
        assert!(s.feed_read(Value::Int(0)).is_err());
        s.advance_write().unwrap();
        // Done; advancing again is an error.
        assert!(s.advance_write().is_err());
        assert!(s.is_done().unwrap());
    }

    #[test]
    fn empty_program_is_immediately_done() {
        let cat = catalog_abc();
        let p = parse_program("P", "").unwrap();
        let s = ProgramSession::new(&p, &cat, TxnId(1));
        assert_eq!(s.pending().unwrap(), Pending::Done);
    }
}
