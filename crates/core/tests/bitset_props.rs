//! Property tests for the dense-bitset [`ItemSet`] (against a
//! `BTreeSet` reference model) and for the indexed lemma checkers
//! (against the naive projection-based recomputation the paper's
//! recurrences read as).

use proptest::prelude::*;
use pwsr_core::ids::{ItemId, OpIndex, TxnId};
use pwsr_core::index::ScheduleIndex;
use pwsr_core::op::{self, Operation};
use pwsr_core::schedule::Schedule;
use pwsr_core::state::ItemSet;
use pwsr_core::txn::Transaction;
use pwsr_core::value::Value;
use pwsr_core::viewset::{
    lemma2_inclusion_holds, lemma6_inclusion_holds, view_sets_dr, view_sets_general,
};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// ItemSet vs BTreeSet model
// ---------------------------------------------------------------------

/// A scripted mutation against both representations.
#[derive(Clone, Debug)]
enum SetOp {
    Insert(u32),
    Remove(u32),
    Union(Vec<u32>),
    Difference(Vec<u32>),
    Intersection(Vec<u32>),
}

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    // Mix of ids below and above the 64-bit inline boundary so the
    // spill path is exercised.
    proptest::collection::vec(prop_oneof![0u32..40, 50u32..200], 0..8)
}

fn arb_set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u32..200).prop_map(SetOp::Insert),
        (0u32..200).prop_map(SetOp::Remove),
        arb_ids().prop_map(SetOp::Union),
        arb_ids().prop_map(SetOp::Difference),
        arb_ids().prop_map(SetOp::Intersection),
    ]
}

fn model_set(ids: &[u32]) -> BTreeSet<u32> {
    ids.iter().copied().collect()
}

fn item_set(ids: &[u32]) -> ItemSet {
    ItemSet::from_iter(ids.iter().map(|&i| ItemId(i)))
}

proptest! {
    /// Every scripted operation leaves the bitset agreeing with the
    /// BTreeSet model: membership, length, ascending iteration order,
    /// and equality/canonical form.
    #[test]
    fn itemset_matches_btreeset_model(script in proptest::collection::vec(arb_set_op(), 0..24)) {
        let mut model: BTreeSet<u32> = BTreeSet::new();
        let mut set = ItemSet::new();
        for step in script {
            match step {
                SetOp::Insert(i) => {
                    prop_assert_eq!(set.insert(ItemId(i)), model.insert(i));
                }
                SetOp::Remove(i) => {
                    prop_assert_eq!(set.remove(ItemId(i)), model.remove(&i));
                }
                SetOp::Union(ids) => {
                    set = set.union(&item_set(&ids));
                    model = model.union(&model_set(&ids)).copied().collect();
                }
                SetOp::Difference(ids) => {
                    set = set.difference(&item_set(&ids));
                    model = model.difference(&model_set(&ids)).copied().collect();
                }
                SetOp::Intersection(ids) => {
                    set = set.intersection(&item_set(&ids));
                    model = model.intersection(&model_set(&ids)).copied().collect();
                }
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            // Iteration in ascending id order, exactly the model's.
            let got: Vec<u32> = set.iter().map(|i| i.0).collect();
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
            // Canonical form: rebuilding from the elements compares equal.
            let rebuilt = ItemSet::from_iter(model.iter().map(|&i| ItemId(i)));
            prop_assert_eq!(&set, &rebuilt);
        }
    }

    /// The relational queries agree with the model on arbitrary pairs.
    #[test]
    fn itemset_relations_match_model(a in arb_ids(), b in arb_ids(), mask in arb_ids()) {
        let (sa, sb, sm) = (item_set(&a), item_set(&b), item_set(&mask));
        let (ma, mb, mm) = (model_set(&a), model_set(&b), model_set(&mask));
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
        prop_assert_eq!(
            sa.common_item(&sb).is_some(),
            !ma.is_disjoint(&mb)
        );
        for &i in &a {
            prop_assert!(sa.contains(ItemId(i)));
        }
        // masked_subset(a, mask, b) ⟺ (a ∩ mask) ⊆ b.
        let inter: BTreeSet<u32> = ma.intersection(&mm).copied().collect();
        prop_assert_eq!(sa.masked_subset(&sm, &sb), inter.is_subset(&mb));
        // Fused in-place ops match their composed counterparts.
        let mut fused = sa.clone();
        fused.union_with_masked(&sb, &sm);
        prop_assert_eq!(fused, sa.union(&sb.intersection(&sm)));
        let mut fused = sa.clone();
        fused.difference_with_masked(&sb, &sm);
        prop_assert_eq!(fused, sa.difference(&sb.intersection(&sm)));
        let mut fused = sa.clone();
        fused.difference_with_masked_diff(&sb, &sm, &sm);
        prop_assert_eq!(
            fused,
            sa.difference(&sb.difference(&sm).intersection(&sm))
        );
    }
}

// ---------------------------------------------------------------------
// Indexed lemma checkers vs naive projection-based recomputation
// ---------------------------------------------------------------------

fn arb_transactions(n_txns: u32, max_items: u32) -> impl Strategy<Value = Vec<Transaction>> {
    let per_txn = proptest::collection::btree_map(
        0..max_items,
        (any::<bool>(), any::<bool>(), -20i64..20),
        1..=max_items as usize,
    );
    proptest::collection::vec(per_txn, n_txns as usize).prop_map(move |txn_specs| {
        txn_specs
            .into_iter()
            .enumerate()
            .map(|(k, spec)| {
                let txn = TxnId(k as u32 + 1);
                let mut ops = Vec::new();
                for (item, (do_read, do_write, v)) in spec {
                    if do_read {
                        ops.push(Operation::read(txn, ItemId(item), Value::Int(v)));
                    }
                    if do_write || !do_read {
                        ops.push(Operation::write(txn, ItemId(item), Value::Int(v + 1)));
                    }
                }
                Transaction::new(txn, ops).expect("construction respects §2.2")
            })
            .collect()
    })
}

fn interleave_random(txns: &[Transaction], mix: &[u8]) -> Schedule {
    let mut cursors: Vec<usize> = vec![0; txns.len()];
    let mut ops = Vec::new();
    let total: usize = txns.iter().map(Transaction::len).sum();
    let mut mi = 0;
    while ops.len() < total {
        let pick = (mix.get(mi).copied().unwrap_or(0) as usize) % txns.len();
        mi += 1;
        for off in 0..txns.len() {
            let k = (pick + off) % txns.len();
            if cursors[k] < txns[k].len() {
                ops.push(txns[k].ops()[cursors[k]].clone());
                cursors[k] += 1;
                break;
            }
        }
    }
    Schedule::new(ops).expect("interleaving of valid transactions is valid")
}

/// Lemma 2's view sets computed exactly as the recurrence reads —
/// `Vec<Operation>` projections and all. The reference the fast paths
/// must match.
fn naive_view_sets_general(s: &Schedule, d: &ItemSet, order: &[TxnId], p: OpIndex) -> Vec<ItemSet> {
    let mut out = Vec::new();
    let mut current = d.clone();
    for (i, _) in order.iter().enumerate() {
        if i > 0 {
            let written_after = op::write_set(&s.after_txn_proj(order[i - 1], d, p));
            current = current.difference(&written_after);
        }
        out.push(current.clone());
    }
    out
}

/// Lemma 6's view sets, same style.
fn naive_view_sets_dr(s: &Schedule, d: &ItemSet, order: &[TxnId], p: OpIndex) -> Vec<ItemSet> {
    let mut out = Vec::new();
    let mut current = d.clone();
    for (i, _) in order.iter().enumerate() {
        if i > 0 {
            let prev = order[i - 1];
            let ws_prev = op::write_set(&s.before_txn_proj(prev, d, p))
                .union(&op::write_set(&s.after_txn_proj(prev, d, p)));
            if s.txn_finished_by(prev, p) {
                current = current.union(&ws_prev);
            } else {
                current = current.difference(&ws_prev);
            }
        }
        out.push(current.clone());
    }
    out
}

fn naive_inclusion(s: &Schedule, d: &ItemSet, order: &[TxnId], p: OpIndex, dr: bool) -> bool {
    let vs = if dr {
        naive_view_sets_dr(s, d, order, p)
    } else {
        naive_view_sets_general(s, d, order, p)
    };
    order
        .iter()
        .zip(&vs)
        .all(|(&t, v)| op::read_set(&s.before_txn_proj(t, d, p)).is_subset(v))
}

proptest! {
    /// The scan-based free functions, the [`ScheduleIndex`] queries and
    /// the naive recomputation all agree on random schedules, data
    /// sets, orders (any permutation — the computation is defined for
    /// arbitrary orders) and positions.
    #[test]
    fn indexed_checkers_match_naive_recomputation(
        txns in arb_transactions(3, 5),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        d_bits in 0u32..32,
        rot in 0usize..3,
    ) {
        let s = interleave_random(&txns, &mix);
        let d: ItemSet = (0..5).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        // An arbitrary transaction order (rotation of the schedule's).
        let mut order: Vec<TxnId> = s.txn_ids().to_vec();
        let shift = rot.min(order.len().saturating_sub(1));
        order.rotate_left(shift);
        let ix = ScheduleIndex::new(&s);
        for p in s.positions() {
            let naive_gen = naive_view_sets_general(&s, &d, &order, p);
            let naive_dr = naive_view_sets_dr(&s, &d, &order, p);
            prop_assert_eq!(&view_sets_general(&s, &d, &order, p), &naive_gen);
            prop_assert_eq!(&view_sets_dr(&s, &d, &order, p), &naive_dr);
            prop_assert_eq!(&ix.view_sets_general(&d, &order, p), &naive_gen);
            prop_assert_eq!(&ix.view_sets_dr(&d, &order, p), &naive_dr);
            prop_assert_eq!(
                lemma2_inclusion_holds(&s, &d, &order, p),
                naive_inclusion(&s, &d, &order, p, false)
            );
            prop_assert_eq!(
                lemma6_inclusion_holds(&s, &d, &order, p),
                naive_inclusion(&s, &d, &order, p, true)
            );
            prop_assert_eq!(
                ix.lemma2_inclusion_holds(&d, &order, p),
                naive_inclusion(&s, &d, &order, p, false)
            );
            prop_assert_eq!(
                ix.lemma6_inclusion_holds(&d, &order, p),
                naive_inclusion(&s, &d, &order, p, true)
            );
        }
    }

    /// The incremental full sweep agrees with checking every position
    /// one by one (naively).
    #[test]
    fn incremental_sweep_matches_naive_sweep(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
        d_bits in 0u32..16,
        dr in any::<bool>(),
    ) {
        use pwsr_core::viewset::inclusion_holds_everywhere;
        let s = interleave_random(&txns, &mix);
        let d: ItemSet = (0..4).filter(|i| d_bits & (1 << i) != 0).map(ItemId).collect();
        let order: Vec<TxnId> = s.txn_ids().to_vec();
        let naive = s.positions().all(|p| naive_inclusion(&s, &d, &order, p, dr));
        prop_assert_eq!(inclusion_holds_everywhere(&s, &d, &order, dr), naive);
    }

    /// The positional tables baked into `Schedule` agree with direct
    /// scans of the operation sequence.
    #[test]
    fn schedule_tables_match_scans(
        txns in arb_transactions(3, 4),
        mix in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let s = interleave_random(&txns, &mix);
        for &t in s.txn_ids() {
            let scan_last = s.ops().iter().rposition(|o| o.txn == t);
            prop_assert_eq!(s.last_op_of(t), scan_last.map(OpIndex));
            for p in s.positions() {
                let scan_finished = !s.ops()[p.0 + 1..].iter().any(|o| o.txn == t);
                prop_assert_eq!(s.txn_finished_by(t, p), scan_finished);
            }
        }
        for p in s.positions() {
            prop_assert_eq!(s.txn_ids()[s.slot_of_op(p)], s.op(p).txn);
        }
    }
}
