//! Provably-correct transaction templates for chain conjuncts.
//!
//! Each template, executed in isolation from any consistent state,
//! preserves `x_0 ≤ x_1 ≤ … ≤ x_k` (and touches nothing else, so by
//! Lemma 1 the full constraint is preserved). Cross-conjunct variants
//! read a foreign item but only feed it through order-safe functions
//! (`min(abs(z), d)`), so correctness is unconditional. Conditional
//! variants come in a *balanced* (fixed-structure) and an *unbalanced*
//! (non-fixed) form — the knob the THM-1 experiment turns.

use crate::constraints::ConjunctShape;
use pwsr_core::catalog::Catalog;
use pwsr_core::ids::ItemId;
use pwsr_tplang::ast::Program;
use pwsr_tplang::parser::parse_program;
use rand::Rng;

/// The correct-template families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemplateKind {
    /// Add the same delta to every chain item (order-preserving).
    Shift,
    /// `x_i := x_{i+1}` — collapse one link upward.
    Tighten,
    /// `x_k := x_k + min(abs(z), d)` — grow the top by a bounded
    /// non-negative amount (z may be a foreign item).
    GrowTop,
    /// `x_0 := x_0 − min(abs(z), d)` — shrink the bottom.
    ShrinkBottom,
    /// `if (z > 0) then x_k := x_k + min(z, d);` — conditional grow,
    /// **unbalanced** (not fixed-structure).
    CondGrowUnbalanced,
    /// The balanced version with an `else x_k := x_k;` arm —
    /// fixed-structure.
    CondGrowBalanced,
}

impl TemplateKind {
    /// Every kind, for sweeps.
    pub const ALL: [TemplateKind; 6] = [
        TemplateKind::Shift,
        TemplateKind::Tighten,
        TemplateKind::GrowTop,
        TemplateKind::ShrinkBottom,
        TemplateKind::CondGrowUnbalanced,
        TemplateKind::CondGrowBalanced,
    ];

    /// Kinds that always produce fixed-structure programs.
    pub fn is_fixed_structure(self) -> bool {
        !matches!(self, TemplateKind::CondGrowUnbalanced)
    }
}

/// Instantiate `kind` against a chain conjunct. `cross` optionally
/// names a foreign item to read (for GrowTop/ShrinkBottom/CondGrow*;
/// ignored by Shift/Tighten). `name` is the program name.
pub fn correct_chain_program<R: Rng>(
    rng: &mut R,
    catalog: &Catalog,
    shape: &ConjunctShape,
    kind: TemplateKind,
    cross: Option<ItemId>,
    name: &str,
) -> Program {
    let ConjunctShape::Chain { items } = shape else {
        panic!("correct_chain_program requires a chain shape");
    };
    assert!(!items.is_empty(), "chains are non-empty");
    let n = |id: ItemId| catalog.name(id).to_owned();
    let d = rng.random_range(1..=3);
    let src = match kind {
        TemplateKind::Shift | TemplateKind::Tighten => String::new(),
        _ => match cross {
            Some(z) => n(z),
            None => format!("{}", rng.random_range(1..=5)),
        },
    };
    let text = match kind {
        TemplateKind::Shift => {
            let delta = rng.random_range(-3i64..=3);
            items
                .iter()
                .map(|&x| format!("{} := {} + {};", n(x), n(x), delta))
                .collect::<Vec<_>>()
                .join(" ")
        }
        TemplateKind::Tighten => {
            if items.len() < 2 {
                // Degenerate chain: identity write is the only safe move.
                format!("{} := {};", n(items[0]), n(items[0]))
            } else {
                let i = rng.random_range(0..items.len() - 1);
                format!("{} := {};", n(items[i]), n(items[i + 1]))
            }
        }
        TemplateKind::GrowTop => {
            let top = n(*items.last().expect("non-empty"));
            format!("{top} := {top} + min(abs({src}), {d});")
        }
        TemplateKind::ShrinkBottom => {
            let bot = n(items[0]);
            format!("{bot} := {bot} - min(abs({src}), {d});")
        }
        TemplateKind::CondGrowUnbalanced => {
            let top = n(*items.last().expect("non-empty"));
            format!("if ({src} > 0) then {top} := {top} + min({src}, {d});")
        }
        TemplateKind::CondGrowBalanced => {
            let top = n(*items.last().expect("non-empty"));
            format!(
                "if ({src} > 0) then {{ {top} := {top} + min({src}, {d}); }} \
                 else {{ {top} := {top}; }}"
            )
        }
    };
    parse_program(name, &text).expect("template text always parses")
}

/// Instantiate a transfer over a conserved-sum (banking) conjunct:
/// move a random amount between two distinct accounts. `guarded`
/// selects the overdraft-checked variant (`if (src >= d) …`), which is
/// correct but **not** fixed-structure unless `balanced` pads the else
/// branch with identity writes.
pub fn transfer_program<R: Rng>(
    rng: &mut R,
    catalog: &Catalog,
    shape: &ConjunctShape,
    guarded: bool,
    balanced: bool,
    name: &str,
) -> Program {
    let ConjunctShape::ConservedSum { items, .. } = shape else {
        panic!("transfer_program requires a conserved-sum shape");
    };
    assert!(items.len() >= 2, "transfers need two accounts");
    let i = rng.random_range(0..items.len());
    let mut j = rng.random_range(0..items.len());
    if j == i {
        j = (j + 1) % items.len();
    }
    let src = catalog.name(items[i]).to_owned();
    let dst = catalog.name(items[j]).to_owned();
    let d = rng.random_range(1..=10);
    let text = if !guarded {
        format!("{src} := {src} - {d}; {dst} := {dst} + {d};")
    } else if balanced {
        format!(
            "if ({src} >= {d}) then {{ {src} := {src} - {d}; {dst} := {dst} + {d}; }} \
             else {{ {src} := {src}; {dst} := {dst}; }}"
        )
    } else {
        format!("if ({src} >= {d}) then {{ {src} := {src} - {d}; {dst} := {dst} + {d}; }}")
    };
    parse_program(name, &text).expect("transfer text parses")
}

/// A read-only audit of a conserved-sum conjunct: sums every account
/// into a local (no writes — useful for read-heavy mixes).
pub fn audit_program(catalog: &Catalog, shape: &ConjunctShape, name: &str) -> Program {
    let ConjunctShape::ConservedSum { items, .. } = shape else {
        panic!("audit_program requires a conserved-sum shape");
    };
    let sum = items
        .iter()
        .map(|&i| catalog.name(i).to_owned())
        .collect::<Vec<_>>()
        .join(" + ");
    parse_program(name, &format!("audit_total := {sum};")).expect("audit text parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Execute a program in isolation (test helper).
    pub(crate) fn tests_support_execute(
        p: &Program,
        catalog: &Catalog,
        state: &pwsr_core::state::DbState,
    ) -> pwsr_core::txn::Transaction {
        pwsr_tplang::interp::execute(p, catalog, TxnId(1), state).unwrap()
    }
    use crate::constraints::{random_ic, IcConfig};
    use pwsr_core::ids::TxnId;
    use pwsr_core::solver::Solver;
    use pwsr_tplang::analysis::static_structure;
    use pwsr_tplang::interp::execute_and_apply;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every template, instantiated over random chains with random
    /// cross-reads, preserves consistency in isolation.
    #[test]
    fn all_templates_are_correct_in_isolation() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..40 {
            let g = random_ic(&mut rng, &IcConfig::default());
            let solver = Solver::new(&g.catalog, &g.ic);
            for (ci, shape) in g.shapes.iter().enumerate() {
                for kind in TemplateKind::ALL {
                    // Cross item from a different conjunct.
                    let other = (ci + 1) % g.shapes.len();
                    let cross = g.shapes[other].items().first().copied();
                    let p = correct_chain_program(&mut rng, &g.catalog, shape, kind, cross, "T");
                    let (_, out) = execute_and_apply(&p, &g.catalog, TxnId(1), &g.initial).unwrap();
                    assert!(
                        solver.is_consistent(&out),
                        "trial {trial}, conjunct {ci}, {kind:?}: {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixedness_matches_declaration() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_ic(&mut rng, &IcConfig::default());
        let cross = g.shapes[1].items().first().copied();
        for kind in TemplateKind::ALL {
            let p = correct_chain_program(&mut rng, &g.catalog, &g.shapes[0], kind, cross, "T");
            let proven_fixed = static_structure(&p, &g.catalog).is_fixed();
            if kind.is_fixed_structure() {
                assert!(proven_fixed, "{kind:?} should be fixed: {p}");
            } else {
                assert!(!proven_fixed, "{kind:?} should not be provably fixed: {p}");
            }
        }
    }

    #[test]
    fn cross_reads_actually_cross() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_ic(&mut rng, &IcConfig::default());
        let z = g.shapes[1].items()[0];
        let p = correct_chain_program(
            &mut rng,
            &g.catalog,
            &g.shapes[0],
            TemplateKind::GrowTop,
            Some(z),
            "T",
        );
        let (reads, writes) = pwsr_scheduler::dag_admission::may_access_sets(&p, &g.catalog);
        assert!(reads.contains(z));
        let c0_items: pwsr_core::state::ItemSet = g.shapes[0].items().into_iter().collect();
        assert!(!writes.intersection(&c0_items).is_empty());
    }

    #[test]
    fn transfers_preserve_the_sum_from_any_state() {
        use crate::constraints::{banking_ic, BankConfig};
        let mut rng = StdRng::seed_from_u64(77);
        let g = banking_ic(&BankConfig::default());
        let solver = Solver::new(&g.catalog, &g.ic);
        for trial in 0..30 {
            for (guarded, balanced) in [(false, false), (true, false), (true, true)] {
                let p =
                    transfer_program(&mut rng, &g.catalog, &g.shapes[0], guarded, balanced, "T");
                let (_, out) = execute_and_apply(&p, &g.catalog, TxnId(1), &g.initial).unwrap();
                assert!(
                    solver.is_consistent(&out),
                    "trial {trial} guarded={guarded} balanced={balanced}: {p}"
                );
            }
        }
    }

    #[test]
    fn transfer_fixedness_matches_variant() {
        use crate::constraints::{banking_ic, BankConfig};
        let mut rng = StdRng::seed_from_u64(78);
        let g = banking_ic(&BankConfig::default());
        let plain = transfer_program(&mut rng, &g.catalog, &g.shapes[0], false, false, "T");
        assert!(static_structure(&plain, &g.catalog).is_fixed());
        let guarded = transfer_program(&mut rng, &g.catalog, &g.shapes[0], true, false, "T");
        assert!(!static_structure(&guarded, &g.catalog).is_fixed());
        let balanced = transfer_program(&mut rng, &g.catalog, &g.shapes[0], true, true, "T");
        assert!(static_structure(&balanced, &g.catalog).is_fixed());
    }

    #[test]
    fn audit_is_read_only() {
        use crate::constraints::{banking_ic, BankConfig};
        let g = banking_ic(&BankConfig::default());
        let p = audit_program(&g.catalog, &g.shapes[1], "A");
        let t = tests_support_execute(&p, &g.catalog, &g.initial);
        assert!(t.write_set().is_empty());
        assert_eq!(t.read_set().len(), 3);
    }

    #[test]
    fn singleton_chain_templates_work() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts: 2,
                items_per_conjunct: 1,
                domain_width: 100,
            },
        );
        for kind in TemplateKind::ALL {
            let p = correct_chain_program(&mut rng, &g.catalog, &g.shapes[0], kind, None, "T");
            let (_, out) = execute_and_apply(&p, &g.catalog, TxnId(1), &g.initial).unwrap();
            let solver = Solver::new(&g.catalog, &g.ic);
            assert!(solver.is_consistent(&out), "{kind:?}");
        }
    }
}
