//! EXH-1: exhaustive model-checking of the theorems on a finite
//! universe.
//!
//! Statistical validation (THM-1/2/3) samples; this experiment *proves
//! by enumeration*. Over Example 2's programs with domains narrowed to
//! `[-2, 2]`: every consistent initial state × every interleaving of
//! the two programs is executed and checked. The verified claims:
//!
//! * every execution where PWSR holds **and** some theorem hypothesis
//!   holds (DR, acyclic DAG — fixed structure is false for TP1) is
//!   strongly correct — *no exceptions*;
//! * violations exist, and **every** violation is a PWSR-or-worse
//!   execution with *all three* hypotheses false;
//! * swapping TP1 for the repaired TP1′ (fixed-structure) eliminates
//!   every violation among PWSR executions across the whole universe.

use crate::report::Table;
use pwsr_core::catalog::Catalog;
use pwsr_core::dag::data_access_graph;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::pwsr::is_pwsr;
use pwsr_core::solver::Solver;
use pwsr_core::strong::check_strong_correctness;
use pwsr_core::value::Domain;
use pwsr_gen::chaos::enumerate_executions;
use pwsr_tplang::analysis::static_structure;
use pwsr_tplang::programs::{example2, example2_with_tp1_prime};

/// Tallies from one exhaustive sweep.
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveOutcome {
    /// Consistent initial states enumerated.
    pub states: u64,
    /// Total executions checked.
    pub executions: u64,
    /// Executions that were PWSR.
    pub pwsr: u64,
    /// Strong-correctness violations found.
    pub violations: u64,
    /// PWSR executions with ≥ 1 theorem hypothesis that were violated
    /// (**must be 0** — this is the theorems' claim).
    pub covered_violations: u64,
    /// Violations whose three hypotheses were all false (must equal
    /// `violations`).
    pub uncovered_violations: u64,
}

fn narrowed_catalog(catalog: &Catalog) -> Catalog {
    let mut out = Catalog::new();
    for item in catalog.items() {
        out.add_item(catalog.name(item), Domain::int_range(-2, 2));
    }
    out
}

fn sweep(
    programs: &[pwsr_tplang::ast::Program],
    base: &pwsr_tplang::programs::PaperScenario,
) -> ExhaustiveOutcome {
    let catalog = narrowed_catalog(&base.catalog);
    let solver = Solver::new(&catalog, &base.ic);
    let all_fixed = programs
        .iter()
        .all(|p| static_structure(p, &catalog).is_fixed());
    let mut out = ExhaustiveOutcome::default();
    for initial in solver.enumerate_consistent(100_000) {
        out.states += 1;
        let Ok(Some(executions)) = enumerate_executions(programs, &catalog, &initial, 100_000)
        else {
            continue;
        };
        for s in executions {
            out.executions += 1;
            let pwsr = is_pwsr(&s, &base.ic).ok();
            out.pwsr += u64::from(pwsr);
            let violated = check_strong_correctness(&s, &solver, &initial).violation();
            if !violated {
                continue;
            }
            out.violations += 1;
            let hypothesis = pwsr
                && (all_fixed
                    || is_delayed_read(&s)
                    || data_access_graph(&s, &base.ic).is_acyclic());
            if hypothesis {
                out.covered_violations += 1;
            } else {
                out.uncovered_violations += 1;
            }
        }
    }
    out
}

/// Run the exhaustive sweep for the original and repaired program pair.
pub fn exh1() -> (bool, String) {
    let base = example2();
    let orig = sweep(&base.programs, &base);
    let prime_sc = example2_with_tp1_prime();
    let repaired = sweep(&prime_sc.programs, &base);

    // The original pair: violations exist, none covered by a theorem.
    let ok_orig = orig.violations > 0
        && orig.covered_violations == 0
        && orig.uncovered_violations == orig.violations;
    // The repaired pair is all-fixed: every PWSR execution is covered
    // by Theorem 1, so zero violations anywhere PWSR holds. (Non-PWSR
    // interleavings may still violate — the theorems say nothing about
    // them, and e.g. a dirty read of `a` between TP1′'s two writes is
    // a genuine inconsistent read.)
    let ok_rep =
        repaired.covered_violations == 0 && repaired.uncovered_violations == repaired.violations;
    let ok = ok_orig && ok_rep && orig.states > 0;

    let mut t = Table::new(
        "EXH-1  Exhaustive model-check (domains [-2,2], all states × all interleavings)",
        &[
            "program pair",
            "states",
            "executions",
            "PWSR",
            "violations",
            "covered violations",
        ],
    );
    t.row(&[
        "TP1, TP2 (original)".into(),
        orig.states.to_string(),
        orig.executions.to_string(),
        orig.pwsr.to_string(),
        orig.violations.to_string(),
        format!("{} (must be 0)", orig.covered_violations),
    ]);
    t.row(&[
        "TP1', TP2 (repaired)".into(),
        repaired.states.to_string(),
        repaired.executions.to_string(),
        repaired.pwsr.to_string(),
        repaired.violations.to_string(),
        format!("{} (must be 0)", repaired.covered_violations),
    ]);
    (ok, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_model_check_holds() {
        let (ok, text) = exh1();
        assert!(ok, "{text}");
    }
}
