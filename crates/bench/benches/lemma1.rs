//! FIG-1 bench: Lemma 1's decomposition — the cost of deciding
//! consistency per conjunct vs jointly, as the conjunct count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwsr_core::solver::Solver;
use pwsr_core::state::DbState;
use pwsr_gen::constraints::{random_ic, IcConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lemma1(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma1");
    for l in [1usize, 4, 16, 64] {
        let mut rng = StdRng::seed_from_u64(0x11 + l as u64);
        let g = random_ic(
            &mut rng,
            &IcConfig {
                conjuncts: l,
                items_per_conjunct: 3,
                domain_width: 50,
            },
        );
        let solver = Solver::new(&g.catalog, &g.ic);
        // A half-assigned restriction.
        let mut partial = DbState::new();
        for (k, (item, v)) in g.initial.iter().enumerate() {
            if k % 2 == 0 {
                partial.set(item, v.clone());
            }
        }
        group.bench_with_input(BenchmarkId::new("joint", l), &partial, |b, p| {
            b.iter(|| black_box(solver.is_consistent(p)))
        });
        group.bench_with_input(BenchmarkId::new("per_conjunct", l), &partial, |b, p| {
            b.iter(|| {
                let mut all = true;
                for conj in g.ic.conjuncts() {
                    all &= solver.is_consistent(&p.restrict(conj.items()));
                }
                black_box(all)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lemma1);
criterion_main!(benches);
