//! SCALE-1 bench: checker cost vs schedule length and conjunct count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwsr_bench::scale_exp::sized_workload;
use pwsr_core::dag::data_access_graph;
use pwsr_core::dr::is_delayed_read;
use pwsr_core::pwsr::is_pwsr;
use pwsr_core::serializability::is_conflict_serializable;
use pwsr_gen::chaos::random_execution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    for target in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(0xBEEF + target as u64);
        let w = sized_workload(&mut rng, target, 4);
        let s = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng)
            .expect("workload executes");
        let ops = s.len();
        group.bench_with_input(BenchmarkId::new("csr", ops), &s, |b, s| {
            b.iter(|| black_box(is_conflict_serializable(s)))
        });
        group.bench_with_input(BenchmarkId::new("pwsr", ops), &s, |b, s| {
            b.iter(|| black_box(is_pwsr(s, &w.ic).ok()))
        });
        group.bench_with_input(BenchmarkId::new("dr", ops), &s, |b, s| {
            b.iter(|| black_box(is_delayed_read(s)))
        });
        group.bench_with_input(BenchmarkId::new("dag", ops), &s, |b, s| {
            b.iter(|| black_box(data_access_graph(s, &w.ic).is_acyclic()))
        });
    }
    group.finish();

    // Conjunct-count sweep at fixed size.
    let mut group = c.benchmark_group("checkers_conjuncts");
    for conjuncts in [1usize, 4, 16] {
        let mut rng = StdRng::seed_from_u64(0xFACE + conjuncts as u64);
        let w = sized_workload(&mut rng, 200, conjuncts);
        let s = random_execution(&w.programs, &w.catalog, &w.initial, &mut rng)
            .expect("workload executes");
        group.bench_with_input(BenchmarkId::new("pwsr", conjuncts), &s, |b, s| {
            b.iter(|| black_box(is_pwsr(s, &w.ic).ok()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
